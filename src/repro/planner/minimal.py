"""The minimal-rewiring planner (the ROADMAP's open item).

Given the same compaction demand as the legacy loop, it produces a
:class:`RewirePlan` whose switch-op sequences are **directed-edge
deltas**: only the switches whose state actually differs between the old
and new assignment are written, and only the freshly-chained edges ship
a config-stream flit.  It never pays the legacy loop's put-back overhead
because planning is a pure function of the snapshot — nothing is
released just to widen a search.

Three modes:

* ``greedy`` — keep the legacy move *schedule* (so the final layout is
  byte-identical to what ``compact_until_stable`` produces) but execute
  each move as a delta rewire.  Scales to any chip.
* ``exact``  — branch-and-bound over single-relocation schedules
  (:mod:`repro.planner.exact`), seeded with the greedy plan so the
  result is greedy-or-better always.  Exponential in the worst case,
  bounded by a node budget.
* ``auto``   — ``exact`` when at most ``exact_limit`` regions are
  movable (the ISSUE's ≤16-region regime), ``greedy`` beyond that.

The planner also serves the scaling paths: :meth:`plan_grow` relocates a
processor onto the cheapest fold run that fits its grown size when no
adjacent extension exists, and :meth:`plan_shrink` prices a tail drop so
the service layer can report what delta rewiring saves.
"""

from __future__ import annotations

from typing import Collection, List, Optional, Set, Tuple

from repro.core.states import ProcessorState
from repro.core.vlsi_processor import ProcessorInstance, VLSIProcessor
from repro.errors import PlannerError
from repro.planner.cost import diff_regions, naive_move_cost, ops_cost
from repro.planner.exact import build_plan, exact_plan_meta, search_exact
from repro.planner.naive import plan_from_sim
from repro.planner.plan import RegionMove, RewirePlan
from repro.planner.simulate import simulate_compaction
from repro.topology.folding import serpentine_unfold
from repro.topology.regions import Region, path_region

__all__ = ["MinimalPlanner"]

Coord = Tuple[int, int]

MODES = ("auto", "greedy", "exact")


class MinimalPlanner:
    """Plans delta rewirings instead of release-then-reconfigure."""

    def __init__(
        self,
        mode: str = "auto",
        exact_limit: int = 16,
        node_budget: int = 50_000,
    ) -> None:
        if mode not in MODES:
            raise PlannerError(
                f"unknown planner mode {mode!r}; pick one of {MODES}"
            )
        self.mode = mode
        self.exact_limit = exact_limit
        self.node_budget = node_budget

    # -- compaction ---------------------------------------------------------

    def plan_compaction(
        self, vlsi: VLSIProcessor, max_passes: int = 8
    ) -> RewirePlan:
        """Plan the compaction the legacy loop would perform, minimally."""
        sim = simulate_compaction(vlsi, max_passes=max_passes)
        naive = plan_from_sim(sim)

        greedy_moves: List[RegionMove] = []
        for sim_move in sim.moves:
            ops = diff_regions(sim_move.old, sim_move.new)
            greedy_moves.append(
                RegionMove(
                    name=sim_move.name,
                    old=sim_move.old,
                    new=sim_move.new,
                    ops=ops,
                    cost=ops_cost(ops),
                    naive_cost=naive_move_cost(sim_move.old, sim_move.new),
                )
            )
        greedy = build_plan(
            tuple(greedy_moves), naive.cost, "greedy",
            meta={"passes": sim.passes, "putbacks_avoided": len(sim.putbacks)},
        )
        if self.mode == "greedy":
            return greedy

        movable = {
            name: instance.region
            for name, instance in vlsi.processors.items()
            if instance.state.state is ProcessorState.INACTIVE
        }
        if self.mode == "auto" and len(movable) > self.exact_limit:
            return greedy

        fabric = vlsi.fabric
        order = list(fabric.linear_order())
        fold = {c: serpentine_unfold(c, fabric.cols) for c in order}
        pool: Set[Coord] = {
            c for c in order if fabric.cluster(c).is_free
        }
        for region in movable.values():
            pool.update(region.path)
        occupied_final: Set[Coord] = set()
        for region in sim.final.values():
            occupied_final.update(region.path)
        quality_floor = _largest_run_of(order, pool - occupied_final)
        result = search_exact(
            order, pool, movable, fold,
            quality_floor=quality_floor,
            seed_cost=greedy.cost.total,
            node_budget=self.node_budget,
        )
        meta = dict(greedy.meta)
        meta.update(exact_plan_meta(result))
        if result.moves is None:
            # nothing beat the greedy seed: the greedy schedule *is* the
            # exact answer (or the budget ran out and greedy is the bound)
            return build_plan(greedy.moves, naive.cost, "exact", meta=meta)
        return build_plan(result.moves, naive.cost, "exact", meta=meta)

    # -- scaling ------------------------------------------------------------

    def plan_grow(
        self,
        vlsi: VLSIProcessor,
        instance: ProcessorInstance,
        extra_clusters: int,
        within: Optional[Collection[Coord]] = None,
    ) -> Optional[RegionMove]:
        """Relocate ``instance`` onto a fold run of its grown size.

        Considered when no free adjacent extension exists: every
        contiguous fold-order run of ``n + extra`` eligible clusters
        (free, or the processor's own) is a candidate; the cheapest
        delta rewire wins, ties broken by earliest start.  Returns
        ``None`` when the shard holds no such run.
        """
        fabric = vlsi.fabric
        scope: Optional[Set[Coord]] = None if within is None else set(within)
        own = set(instance.region.path)
        size = len(instance.region) + extra_clusters

        best: Optional[RegionMove] = None
        best_key: Optional[Tuple[int, int]] = None
        run: List[Coord] = []
        index = 0
        for coord in fabric.linear_order():
            eligible = (
                (scope is None or coord in scope)
                and (fabric.cluster(coord).is_free or coord in own)
            )
            if eligible:
                run.append(coord)
            else:
                run = []
            if len(run) >= size:
                window = run[-size:]
                candidate = path_region(window)
                ops = diff_regions(instance.region, candidate)
                cost = ops_cost(ops)
                key = (cost.total, index - size + 1)
                if best_key is None or key < best_key:
                    best_key = key
                    best = RegionMove(
                        name=instance.name,
                        old=instance.region,
                        new=candidate,
                        ops=ops,
                        cost=cost,
                        naive_cost=naive_move_cost(instance.region, candidate),
                    )
            index += 1
        return best

    def plan_shrink(
        self, instance: ProcessorInstance, drop_clusters: int
    ) -> RegionMove:
        """Price dropping ``drop_clusters`` off the tail as a delta.

        The legacy ``down_scale`` already unchains only the junction and
        the dropped sub-path, so the delta ops merely make that explicit;
        the naive baseline is what release-then-reconfigure would pay.
        """
        if not 0 < drop_clusters < len(instance.region):
            raise PlannerError(
                f"cannot drop {drop_clusters} of "
                f"{len(instance.region)} clusters"
            )
        old = instance.region
        new = Region(old.path[:-drop_clusters])
        ops = diff_regions(old, new)
        return RegionMove(
            name=instance.name,
            old=old,
            new=new,
            ops=ops,
            cost=ops_cost(ops),
            naive_cost=naive_move_cost(old, new),
        )


def _largest_run_of(order: List[Coord], free: Set[Coord]) -> int:
    best = current = 0
    for coord in order:
        if coord in free:
            current += 1
            best = max(best, current)
        else:
            current = 0
    return best
