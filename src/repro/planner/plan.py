"""Rewire plans: the data a reconfiguration planner produces.

A :class:`RewirePlan` is an ordered list of :class:`RegionMove`\\ s, each
carrying the exact programmable-switch operations (:class:`SwitchOp`)
that morph one processor's region into its target, plus the predicted
:class:`RewireCost` of executing them.  The executor
(:func:`repro.planner.execute.execute_plan`) replays the moves in plan
order; the cost model (:mod:`repro.planner.cost`) guarantees the
prediction matches what the fabric actually pays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

from repro.topology.regions import Region

__all__ = ["SwitchOp", "RewireCost", "RegionMove", "RewirePlan"]

Coord = Tuple[int, int]


@dataclass(frozen=True)
class SwitchOp:
    """One programmable-switch operation on the directed edge ``a -> b``.

    ``kind`` is ``"chain"`` or ``"unchain"``.  Every op programs both
    the bidirectional chain switch and the unidirectional stack-shift
    switch of the edge — two register writes (section 3.2/3.3).
    """

    kind: str
    a: Coord
    b: Coord

    #: Register writes per op: the chain switch plus the shift switch.
    WRITES = 2

    def __post_init__(self) -> None:
        if self.kind not in ("chain", "unchain"):
            raise ValueError(f"unknown switch op kind {self.kind!r}")


@dataclass(frozen=True)
class RewireCost:
    """Predicted price of a rewiring, in the two §3.3 currencies.

    Attributes
    ----------
    switch_writes:
        Programming-register stores (chain + shift switch per edge op).
    config_flits:
        Configuration-stream flits the wormhole worm must carry — one
        per *chain* instruction.  Unchaining "clear[s] active state"
        directly and ships no flit.
    """

    switch_writes: int = 0
    config_flits: int = 0

    @property
    def total(self) -> int:
        """The planner's objective: writes plus flits."""
        return self.switch_writes + self.config_flits

    @property
    def downtime_cycles(self) -> int:
        """Modelled reconfiguration downtime: one cycle per register
        write plus one per delivered flit (the linear model DESIGN.md
        documents; with a router network attached the measured worm
        latency replaces the flit term)."""
        return self.switch_writes + self.config_flits

    def __add__(self, other: "RewireCost") -> "RewireCost":
        return RewireCost(
            self.switch_writes + other.switch_writes,
            self.config_flits + other.config_flits,
        )

    def as_dict(self) -> Dict[str, int]:
        return {
            "switch_writes": self.switch_writes,
            "config_flits": self.config_flits,
            "downtime_cycles": self.downtime_cycles,
        }


@dataclass(frozen=True)
class RegionMove:
    """One planned relocation: ``name``'s region morphs ``old -> new``.

    ``ops`` are the switch operations in apply order; ``cost`` is their
    predicted price and ``naive_cost`` what the release-then-reconfigure
    path would pay for the same relocation.
    """

    name: str
    old: Region
    new: Region
    ops: Tuple[SwitchOp, ...]
    cost: RewireCost
    naive_cost: RewireCost

    @property
    def saved(self) -> int:
        return self.naive_cost.total - self.cost.total


@dataclass(frozen=True)
class RewirePlan:
    """An ordered reconfiguration schedule plus its cost ledger.

    Attributes
    ----------
    moves:
        Relocations in execution order.
    cost:
        Predicted price of executing this plan.
    naive_cost:
        What the naive release-then-reconfigure path pays for the same
        demand — including its put-back overhead (every visited
        processor it releases and reprograms in place).
    mode:
        Which strategy produced the plan (``"naive"``, ``"greedy"`` or
        ``"exact"``).
    meta:
        Free-form planner annotations (pass count, nodes explored, ...).
    """

    moves: Tuple[RegionMove, ...]
    cost: RewireCost
    naive_cost: RewireCost
    mode: str
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def rewires_saved(self) -> int:
        """Switch writes + flits this plan avoids versus the naive path."""
        return self.naive_cost.total - self.cost.total

    def summary(self) -> Dict[str, Any]:
        """Canonical (JSON-stable) cost summary of the plan."""
        return {
            "moves": len(self.moves),
            "switch_writes": self.cost.switch_writes,
            "config_flits": self.cost.config_flits,
            "downtime_cycles": self.cost.downtime_cycles,
            "naive_switch_writes": self.naive_cost.switch_writes,
            "naive_config_flits": self.naive_cost.config_flits,
            "naive_downtime_cycles": self.naive_cost.downtime_cycles,
            "rewires_saved": self.rewires_saved,
        }
