"""The naive planner: price the legacy loop exactly as it behaves.

It plans the *same* relocations the legacy
``Defragmenter.compact_until_stable`` performs — same visit order, same
targets, same pass structure — and charges each one at full
release-then-reconfigure rates.  It also charges the legacy loop's
hidden overhead: every visited processor that does **not** move is still
released (to widen the search) and configured straight back, paying a
full unchain + rechain of its own region.

``plan.cost == plan.naive_cost`` by definition; the plan exists so the
minimal planner has an honest baseline and so ``--plan naive`` can be
byte-compared against the legacy execution path in CI.
"""

from __future__ import annotations

from repro.core.vlsi_processor import VLSIProcessor
from repro.planner.cost import (
    full_chain_ops,
    full_unchain_ops,
    ops_cost,
    putback_cost,
)
from repro.planner.plan import RegionMove, RewireCost, RewirePlan
from repro.planner.simulate import CompactionSim, simulate_compaction

__all__ = ["NaivePlanner", "plan_from_sim"]


def plan_from_sim(sim: CompactionSim) -> RewirePlan:
    """Price a simulated legacy run at release-then-reconfigure rates."""
    moves = []
    total = RewireCost()
    for sim_move in sim.moves:
        ops = full_unchain_ops(sim_move.old) + full_chain_ops(sim_move.new)
        cost = ops_cost(ops)
        moves.append(
            RegionMove(
                name=sim_move.name,
                old=sim_move.old,
                new=sim_move.new,
                ops=ops,
                cost=cost,
                naive_cost=cost,
            )
        )
        total = total + cost
    overhead = RewireCost()
    for visit in sim.putbacks:
        overhead = overhead + putback_cost(visit.region)
    total = total + overhead
    return RewirePlan(
        moves=tuple(moves),
        cost=total,
        naive_cost=total,
        mode="naive",
        meta={
            "passes": sim.passes,
            "putbacks": len(sim.putbacks),
            "putback_switch_writes": overhead.switch_writes,
            "putback_config_flits": overhead.config_flits,
        },
    )


class NaivePlanner:
    """Plans compaction exactly as the legacy release-then-reconfigure
    loop executes it.  Useful only as the cost baseline."""

    mode = "naive"

    def plan_compaction(
        self, vlsi: VLSIProcessor, max_passes: int = 8
    ) -> RewirePlan:
        return plan_from_sim(simulate_compaction(vlsi, max_passes=max_passes))
