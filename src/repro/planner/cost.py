"""The planner's cost model: switch writes and config-stream flits.

Regions are ordered paths and the stack-shift switches are
*unidirectional* (keyed by ``(src, dst)``), so a region's wiring is a
set of **directed** edges — reversing a path segment rewires it even
though the same switch pairs are touched.  Diffing two assignments
therefore compares directed edge sets:

* a directed edge in the old region but not the new one is **unchained**
  (direct clearing of active state — no worm flit, §3.3);
* a directed edge in the new region but not the old one is **chained**
  (one configuration-stream flit carries the instruction);
* every op stores to two programming registers — the bidirectional
  chain switch and the unidirectional shift switch.

The naive release-then-reconfigure path unchains *every* old edge and
chains *every* new edge regardless of overlap; the legacy defrag loop
additionally pays a "put-back" (full release + re-configure in place)
for each visited processor it decides not to move.  Those are the costs
:func:`naive_move_cost` and :func:`putback_cost` account for.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.planner.plan import RewireCost, SwitchOp
from repro.topology.regions import Region

__all__ = [
    "directed_edges",
    "diff_regions",
    "ops_cost",
    "full_chain_ops",
    "full_unchain_ops",
    "naive_move_cost",
    "putback_cost",
]

Coord = Tuple[int, int]

#: Config-stream flits per chain instruction: the worm payload carries
#: exactly one ``("chain", a, b)`` flit per edge (wormhole._deliver_worm).
FLITS_PER_CHAIN = 1


def directed_edges(region: Region) -> List[Tuple[Coord, Coord]]:
    """The directed wiring of a region: consecutive path pairs, plus the
    ring-closing edge when the region is a ring."""
    edges = list(zip(region.path, region.path[1:]))
    if region.ring and len(region.path) > 1:
        edges.append((region.path[-1], region.path[0]))
    return edges


def diff_regions(old: Region, new: Region) -> Tuple[SwitchOp, ...]:
    """Minimal switch ops morphing ``old``'s wiring into ``new``'s.

    Unchains come first (freeing switches before re-purposing them),
    each group in path order — a deterministic, replayable sequence.
    """
    old_edges = directed_edges(old)
    new_edges = directed_edges(new)
    new_set = set(new_edges)
    old_set = set(old_edges)
    ops: List[SwitchOp] = [
        SwitchOp("unchain", a, b) for a, b in old_edges if (a, b) not in new_set
    ]
    ops.extend(
        SwitchOp("chain", a, b) for a, b in new_edges if (a, b) not in old_set
    )
    return tuple(ops)


def ops_cost(ops: Sequence[SwitchOp]) -> RewireCost:
    """Price a switch-op sequence: two writes per op, one flit per chain."""
    chains = sum(1 for op in ops if op.kind == "chain")
    return RewireCost(
        switch_writes=SwitchOp.WRITES * len(ops),
        config_flits=FLITS_PER_CHAIN * chains,
    )


def full_unchain_ops(region: Region) -> Tuple[SwitchOp, ...]:
    """What ``release(region)`` does: unchain every directed edge."""
    return tuple(SwitchOp("unchain", a, b) for a, b in directed_edges(region))


def full_chain_ops(region: Region) -> Tuple[SwitchOp, ...]:
    """What ``configure(region)`` does: chain every directed edge."""
    return tuple(SwitchOp("chain", a, b) for a, b in directed_edges(region))


def naive_move_cost(old: Region, new: Region) -> RewireCost:
    """Release-then-reconfigure price of moving ``old`` to ``new``:
    every old edge unchained, every new edge chained, overlap ignored."""
    return ops_cost(full_unchain_ops(old)) + ops_cost(full_chain_ops(new))


def putback_cost(region: Region) -> RewireCost:
    """What the legacy defrag loop pays to *visit without moving*: it
    releases the region to widen the search, finds nothing better, and
    configures the identical region straight back."""
    return naive_move_cost(region, region)
