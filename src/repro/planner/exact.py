"""Exact branch-and-bound search over single-relocation schedules.

For small chips (the ISSUE's ≤16-region regime) the greedy multi-pass
schedule is often wasteful: a processor that ripples forward twice pays
two rewirings where one direct hop would do, and sometimes moving *one*
processor into the head gap already coalesces the free space that the
greedy loop spends several moves achieving.

The search space: schedules in which each INACTIVE processor relocates
**at most once**, in some order, each landing on the earliest
currently-free serpentine run for its size (own clusters count as
vacatable).  Restricting targets to the earliest free run keeps every
schedule feasible by construction — the run is free at the moment the
move executes — while still containing the direct-hop schedules that
beat greedy.

A schedule is *accepted* when its final largest free run is at least as
long as the greedy fixpoint's (free-cluster count is move-invariant, so
this is exactly "fragmentation no worse than greedy").  Branch-and-bound
minimises delta rewiring cost over accepted schedules, seeded with the
greedy plan's cost so the result is greedy-or-better **always**; a node
budget bounds the worst case, falling back to the best schedule found
(ultimately the greedy one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.planner.cost import diff_regions, naive_move_cost, ops_cost
from repro.planner.plan import RegionMove, RewireCost, RewirePlan
from repro.planner.simulate import earliest_free_run
from repro.topology.regions import Region

__all__ = ["ExactSearch", "search_exact"]

Coord = Tuple[int, int]


@dataclass(frozen=True)
class ExactSearch:
    """Outcome of one branch-and-bound run."""

    #: Best accepted schedule, or ``None`` when nothing beat the seed.
    moves: Optional[Tuple[RegionMove, ...]]
    cost: RewireCost
    nodes: int
    exhausted: bool


def _largest_run(order: List[Coord], free: Set[Coord]) -> int:
    best = run = 0
    for coord in order:
        if coord in free:
            run += 1
            best = max(best, run)
        else:
            run = 0
    return best


def search_exact(
    order: List[Coord],
    pool: Set[Coord],
    layout: Dict[str, Region],
    fold: Dict[Coord, int],
    quality_floor: int,
    seed_cost: int,
    node_budget: int = 50_000,
) -> ExactSearch:
    """Branch-and-bound over single-relocation schedules.

    Parameters
    ----------
    order:
        The fabric's fold order.
    pool:
        Every coordinate a movable processor may occupy (initially-free
        clusters plus the movable processors' own clusters).
    layout:
        Movable processors' starting regions.
    fold:
        Coordinate -> fold index.
    quality_floor:
        Minimum acceptable final largest free run (the greedy fixpoint's).
    seed_cost:
        The greedy plan's delta cost; only strictly cheaper accepted
        schedules are reported.
    """
    names = sorted(layout, key=lambda n: fold[layout[n].path[0]])
    best_cost = seed_cost
    best_moves: Optional[Tuple[RegionMove, ...]] = None
    nodes = 0
    exhausted = False

    current: Dict[str, Region] = dict(layout)

    def free_now() -> Set[Coord]:
        occupied: Set[Coord] = set()
        for region in current.values():
            occupied.update(region.path)
        return {coord for coord in pool if coord not in occupied}

    def dfs(moved: Set[str], schedule: List[RegionMove], cost: int) -> None:
        nonlocal best_cost, best_moves, nodes, exhausted
        if exhausted:
            return
        nodes += 1
        if nodes > node_budget:
            exhausted = True
            return
        if cost >= best_cost:
            return
        if _largest_run(order, free_now()) >= quality_floor:
            best_cost = cost
            best_moves = tuple(schedule)
            # keep searching siblings: a cheaper schedule may still exist
        for name in names:
            if name in moved:
                continue
            region = current[name]
            occupied: Set[Coord] = set()
            for other, other_region in current.items():
                if other != name:
                    occupied.update(other_region.path)
            target = earliest_free_run(order, pool, occupied, len(region))
            if target is None or target.path == region.path:
                continue
            if fold[target.path[0]] >= fold[region.path[0]]:
                continue
            ops = diff_regions(region, target)
            move = RegionMove(
                name=name,
                old=region,
                new=target,
                ops=ops,
                cost=ops_cost(ops),
                naive_cost=naive_move_cost(region, target),
            )
            current[name] = target
            moved.add(name)
            schedule.append(move)
            dfs(moved, schedule, cost + move.cost.total)
            schedule.pop()
            moved.discard(name)
            current[name] = region

    dfs(set(), [], 0)
    if best_moves is None:
        return ExactSearch(None, RewireCost(), nodes, exhausted)
    total = RewireCost()
    for move in best_moves:
        total = total + move.cost
    return ExactSearch(best_moves, total, nodes, exhausted)


def exact_plan_meta(result: ExactSearch) -> Dict[str, int]:
    return {
        "exact_nodes": result.nodes,
        "exact_exhausted": int(result.exhausted),
        "exact_improved": int(result.moves is not None),
    }


def build_plan(
    moves: Tuple[RegionMove, ...],
    naive_total: RewireCost,
    mode: str,
    meta: Optional[Dict[str, int]] = None,
) -> RewirePlan:
    """Assemble a plan from delta-priced moves and a naive baseline."""
    total = RewireCost()
    for move in moves:
        total = total + move.cost
    return RewirePlan(
        moves=moves,
        cost=total,
        naive_cost=naive_total,
        mode=mode,
        meta=dict(meta or {}),
    )
