"""Minimal-rewiring reconfiguration planning (ROADMAP item, paper §3.3).

Scaling on the S-topology "is simply to chain or unchain" programmable
switches — yet the legacy defrag and resize paths reprogram *entire*
regions even when old and new assignments overlap almost completely.
This package plans the reconfiguration first and rewires only the
difference:

* :mod:`repro.planner.cost` — directed-edge diffing and the
  switch-write / config-flit cost model;
* :mod:`repro.planner.simulate` — pure replay of the legacy compaction
  loop (the shared ground truth both planners price);
* :mod:`repro.planner.naive` — the release-then-reconfigure baseline,
  priced honestly (including its put-back overhead);
* :mod:`repro.planner.minimal` — the delta planner: greedy at scale, an
  exact branch-and-bound for ≤16-region cases, never worse than greedy;
* :mod:`repro.planner.execute` — applies a plan through
  :meth:`WormholeConfigurator.reconfigure` (delta worms with rollback);
* :mod:`repro.planner.scenarios` — the deterministic defrag scenario
  suite behind ``repro defrag`` and ``BENCH_planner.json``;
* :mod:`repro.planner.report` — the canonical ``repro defrag`` report
  (CI byte-compares ``--plan naive`` against ``--plan legacy`` with it).
"""

from repro.planner.execute import execute_plan
from repro.planner.minimal import MinimalPlanner
from repro.planner.naive import NaivePlanner
from repro.planner.plan import RegionMove, RewireCost, RewirePlan, SwitchOp
from repro.planner.report import defrag_report, report_json
from repro.planner.scenarios import SCENARIOS, build_scenario, scenario_names
from repro.planner.simulate import simulate_compaction

__all__ = [
    "SwitchOp",
    "RewireCost",
    "RegionMove",
    "RewirePlan",
    "NaivePlanner",
    "MinimalPlanner",
    "execute_plan",
    "simulate_compaction",
    "SCENARIOS",
    "build_scenario",
    "scenario_names",
    "defrag_report",
    "report_json",
]
