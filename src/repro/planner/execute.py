"""Executing a :class:`RewirePlan` against a live chip.

The executor is deliberately strict: each move must find the fabric in
exactly the state the plan snapshot assumed (same owner, same region,
still INACTIVE) — a stale plan raises :class:`PlannerError` instead of
improvising.  Naive plans replay the legacy release-then-reconfigure
sequence (with the rollback discipline the legacy path now has); delta
plans go through :meth:`WormholeConfigurator.reconfigure`, which never
leaves the processor regionless.
"""

from __future__ import annotations

from typing import List

from repro import telemetry
from repro.core.defrag import MoveRecord
from repro.core.states import ProcessorState
from repro.core.vlsi_processor import VLSIProcessor
from repro.errors import PlannerError
from repro.noc.wormhole import WORM_FAILURES
from repro.planner.plan import RewirePlan

__all__ = ["execute_plan", "record_plan_savings"]


def execute_plan(vlsi: VLSIProcessor, plan: RewirePlan) -> List[MoveRecord]:
    """Apply ``plan`` to ``vlsi``, returning legacy-shaped move records.

    Put-backs are not part of any plan's move list (the naive plan only
    *prices* them), so a naive plan's execution leaves the fabric in the
    same state as the legacy loop without paying the redundant
    release/configure pairs twice at runtime.
    """
    records: List[MoveRecord] = []
    for move in plan.moves:
        instance = vlsi.processors.get(move.name)
        if instance is None or instance.region != move.old:
            raise PlannerError(
                f"plan is stale: {move.name!r} no longer holds "
                f"the planned region"
            )
        if instance.state.state is not ProcessorState.INACTIVE:
            raise PlannerError(
                f"plan is stale: {move.name!r} is "
                f"{instance.state.state.value}, not inactive"
            )
        if plan.mode == "naive":
            vlsi.configurator.release(move.old, owner=move.name)
            try:
                vlsi.configurator.configure(move.new, owner=move.name)
            except WORM_FAILURES:
                vlsi.configurator.configure(move.old, owner=move.name)
                raise
        else:
            vlsi.configurator.reconfigure(move.old, move.new, owner=move.name)
        instance.region = move.new
        records.append(
            MoveRecord(
                move.name, move.old.path[0], move.new.path[0], len(move.new)
            )
        )
    record_plan_savings(plan)
    return records


def record_plan_savings(plan: RewirePlan) -> None:
    """Publish a plan's cost ledger to the observatory.

    The counters always tick (counters are cheap and merge across
    workers); the time series only records when observation is enabled,
    same discipline as every other instrumented path.
    """
    telemetry.counter("planner.plans_executed").inc()
    telemetry.counter("planner.rewires_saved").inc(plan.rewires_saved)
    telemetry.counter("planner.switch_writes").inc(plan.cost.switch_writes)
    telemetry.counter("planner.config_flits").inc(plan.cost.config_flits)
    if telemetry.observer().enabled:
        tick = int(telemetry.counter("planner.plans_executed").value)
        telemetry.time_series("planner.rewires_saved").record(
            tick, float(plan.rewires_saved)
        )
