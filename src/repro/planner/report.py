"""Canonical defrag reports behind the ``repro defrag`` CLI.

One report prices and executes a set of scenarios under one strategy
(``legacy``, ``naive``, or ``minimal``) and serialises the outcome in a
canonical shape: sorted keys, stable float derivations, a SHA-256 digest
of the final layout.  The shape is strategy-agnostic on purpose — CI
byte-compares the ``--plan naive`` report against the ``--plan legacy``
one to prove the planned path replays the legacy loop exactly (same
moves, same layout, same predicted cost ledger).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List

from repro.core.defrag import Defragmenter, MoveRecord
from repro.core.vlsi_processor import VLSIProcessor
from repro.errors import PlannerError
from repro.planner.minimal import MinimalPlanner
from repro.planner.naive import NaivePlanner
from repro.planner.plan import RewirePlan
from repro.planner.scenarios import SCENARIOS, build_scenario

__all__ = ["REPORT_SCHEMA", "PLAN_CHOICES", "defrag_report", "report_json"]

#: Version tag of the defrag-report format (bump on breaking change).
REPORT_SCHEMA = "repro.planner.report/1"

#: Execution strategies ``repro defrag --plan`` accepts.
PLAN_CHOICES = ("legacy", "naive", "minimal")


def layout_digest(vlsi: VLSIProcessor) -> str:
    """SHA-256 over the final placement (name, path, lifecycle state)."""
    doc = sorted(
        (
            instance.name,
            [list(coord) for coord in instance.region.path],
            instance.state.state.value,
        )
        for instance in vlsi.processors.values()
    )
    return hashlib.sha256(
        json.dumps(doc, sort_keys=True).encode("utf-8")
    ).hexdigest()


def _run_scenario(
    name: str, plan: str, mode: str, max_passes: int
) -> Dict[str, Any]:
    vlsi = build_scenario(name)
    defrag = Defragmenter(vlsi)
    fragmentation_before = defrag.fragmentation()
    # the naive plan predicts the legacy loop's ledger from the initial
    # snapshot — it is the cost section of the legacy report, and the
    # baseline every other strategy's savings are measured against
    if plan == "legacy":
        ledger: RewirePlan = NaivePlanner().plan_compaction(
            vlsi, max_passes=max_passes
        )
        moves: List[MoveRecord] = defrag.compact_until_stable(
            max_passes=max_passes
        )
    else:
        if plan == "naive":
            defrag.planner = NaivePlanner()
        elif plan == "minimal":
            defrag.planner = MinimalPlanner(mode=mode)
        else:
            raise PlannerError(
                f"unknown plan strategy {plan!r}; "
                f"pick one of {PLAN_CHOICES}"
            )
        moves = defrag.compact_until_stable(max_passes=max_passes)
        ledger = defrag.last_plan
    entry = {
        "name": name,
        "description": SCENARIOS[name].description,
        "moves": [
            {
                "processor": m.name,
                "from": list(m.old_start),
                "to": list(m.new_start),
                "clusters": m.clusters,
            }
            for m in moves
        ],
        "fragmentation_before": fragmentation_before,
        "fragmentation_after": defrag.fragmentation(),
        "largest_free_run": vlsi.allocator.largest_free_run(),
        "layout_sha256": layout_digest(vlsi),
        "cost": ledger.summary(),
        "meta": dict(ledger.meta),
    }
    return entry


def defrag_report(
    scenarios: List[str],
    plan: str = "legacy",
    mode: str = "auto",
    max_passes: int = 8,
) -> Dict[str, Any]:
    """Execute every scenario under one strategy; canonical document."""
    entries = [
        _run_scenario(name, plan, mode, max_passes) for name in scenarios
    ]
    total = {
        "moves": sum(len(e["moves"]) for e in entries),
        "switch_writes": sum(e["cost"]["switch_writes"] for e in entries),
        "config_flits": sum(e["cost"]["config_flits"] for e in entries),
        "downtime_cycles": sum(
            e["cost"]["downtime_cycles"] for e in entries
        ),
        "naive_downtime_cycles": sum(
            e["cost"]["naive_downtime_cycles"] for e in entries
        ),
        "rewires_saved": sum(e["cost"]["rewires_saved"] for e in entries),
    }
    return {
        "schema": REPORT_SCHEMA,
        "max_passes": max_passes,
        "scenarios": entries,
        "total": total,
    }


def report_json(report: Dict[str, Any]) -> str:
    """Canonical serialization: sorted keys, indent 2, trailing newline."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"
