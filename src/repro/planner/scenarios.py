"""Deterministic defrag scenarios — the planner's benchmark suite.

Each scenario builds a fresh chip in a reproducible fragmented state
(create processors first-fit, destroy some, pin others ACTIVE).  The
same builders feed the ``repro defrag`` CLI, the planner benchmark
(``BENCH_planner.json``), and the regression tests, so every consumer
prices exactly the same layouts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.core.vlsi_processor import VLSIProcessor
from repro.errors import PlannerError

__all__ = ["Scenario", "SCENARIOS", "build_scenario", "scenario_names"]


@dataclass(frozen=True)
class Scenario:
    """One reproducible fragmented-chip layout."""

    name: str
    description: str
    build: Callable[[], VLSIProcessor]


def _chip(rows: int = 8, cols: int = 8) -> VLSIProcessor:
    # no router network: scenario chips exist to be *planned over*, and
    # the cost model prices flits analytically
    return VLSIProcessor(rows, cols, with_network=False)


def _checkerboard() -> VLSIProcessor:
    """Sixteen 4-cluster processors, every even one destroyed — the
    classic alternating-gap layout the defrag tests use."""
    vlsi = _chip()
    for i in range(16):
        vlsi.create_processor(f"p{i:02d}", n_clusters=4)
    for i in range(0, 16, 2):
        vlsi.destroy_processor(f"p{i:02d}")
    return vlsi


def _pinned_band() -> VLSIProcessor:
    """Eight 8-cluster processors; gaps opened between two ACTIVE
    processors that compaction must not move."""
    vlsi = _chip()
    for i in range(8):
        vlsi.create_processor(f"p{i}", n_clusters=8)
    for i in (1, 3, 5):
        vlsi.destroy_processor(f"p{i}")
    vlsi.activate("p2")
    vlsi.activate("p4")
    return vlsi


def _mixed_sizes() -> VLSIProcessor:
    """Unequal processors with unequal gaps: moved regions rarely fit a
    gap exactly, so naive reprogramming wastes the most here."""
    vlsi = _chip()
    sizes = [3, 5, 2, 7, 4, 6, 1, 8, 3, 5, 2, 7]
    for i, size in enumerate(sizes):
        vlsi.create_processor(f"p{i:02d}", n_clusters=size)
    for i in (0, 2, 5, 7, 10):
        vlsi.destroy_processor(f"p{i:02d}")
    return vlsi


def _head_slide() -> VLSIProcessor:
    """A small gap at the head of the fold and a train of long
    processors behind it: every mover overlaps its own old region, the
    delta planner's best case."""
    vlsi = _chip()
    vlsi.create_processor("gap", n_clusters=2)
    for i in range(9):
        vlsi.create_processor(f"t{i}", n_clusters=6)
    vlsi.destroy_processor("gap")
    return vlsi


def _exact_demo() -> VLSIProcessor:
    """Free head gap + two same-size processors: greedy ripples both
    forward, the exact solver coalesces the same free space by moving
    only the second one."""
    vlsi = _chip()
    vlsi.create_processor("gap", n_clusters=4)
    vlsi.create_processor("a", n_clusters=4)
    vlsi.create_processor("b", n_clusters=4)
    vlsi.destroy_processor("gap")
    return vlsi


def _already_compact() -> VLSIProcessor:
    """Nothing to do: every processor already heads the fold.  The
    legacy loop still releases and puts back each one per pass; the
    minimal planner correctly prices this at zero."""
    vlsi = _chip()
    for i in range(6):
        vlsi.create_processor(f"p{i}", n_clusters=4)
    return vlsi


SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario("checkerboard", "alternating 4-cluster gaps", _checkerboard),
        Scenario("pinned-band", "gaps between ACTIVE processors", _pinned_band),
        Scenario("mixed-sizes", "unequal processors and gaps", _mixed_sizes),
        Scenario("head-slide", "overlapping forward slides", _head_slide),
        Scenario("exact-demo", "exact beats greedy move count", _exact_demo),
        Scenario("already-compact", "fixpoint from the start", _already_compact),
    )
}


def scenario_names() -> List[str]:
    return list(SCENARIOS)


def build_scenario(name: str) -> VLSIProcessor:
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        raise PlannerError(
            f"unknown defrag scenario {name!r}; "
            f"known: {', '.join(SCENARIOS)}"
        ) from None
    return scenario.build()
