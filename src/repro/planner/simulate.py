"""Pure simulation of the legacy compaction loop.

Planning must not mutate the fabric, but the naive baseline it prices is
the *actual* :meth:`repro.core.defrag.Defragmenter.compact_until_stable`
loop.  This module replays that loop symbolically over a snapshot of the
chip: same visit order (minimum current fold index among unvisited
INACTIVE processors), same release-before-search semantics (a
processor's own clusters count as free for its target search), same
earliest-free-serpentine-run target, same strict-improvement move test,
and the same put-back when a visit finds nothing better.

The resulting :class:`CompactionSim` is the shared ground truth for both
planners: the naive plan prices every simulated move and put-back at
full release+reconfigure rates, the minimal plan prices the same moves
as directed-edge deltas and drops the put-backs entirely (it never
releases just to search).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.states import ProcessorState
from repro.core.vlsi_processor import VLSIProcessor
from repro.topology.folding import serpentine_unfold
from repro.topology.regions import Region, path_region

__all__ = ["SimMove", "SimVisit", "CompactionSim", "simulate_compaction",
           "earliest_free_run"]

Coord = Tuple[int, int]


@dataclass(frozen=True)
class SimMove:
    """One simulated relocation (pass numbers start at 1)."""

    name: str
    pass_index: int
    old: Region
    new: Region


@dataclass(frozen=True)
class SimVisit:
    """One simulated put-back: the legacy loop released this region,
    found nothing earlier, and configured it straight back."""

    name: str
    pass_index: int
    region: Region


@dataclass(frozen=True)
class CompactionSim:
    """Replay of ``compact_until_stable`` against a chip snapshot."""

    moves: Tuple[SimMove, ...]
    putbacks: Tuple[SimVisit, ...]
    #: Passes the legacy loop runs, including the final empty one that
    #: proves the fixpoint (it still pays a put-back per processor).
    passes: int
    #: name -> region after compaction settles.
    final: Dict[str, Region]


def earliest_free_run(
    order: List[Coord],
    pool: Set[Coord],
    occupied: Set[Coord],
    n: int,
) -> Optional[Region]:
    """First contiguous fold-order run of ``n`` coordinates that are in
    ``pool`` and not in ``occupied`` — the symbolic twin of
    :meth:`ClusterAllocator.find_serpentine`."""
    run: List[Coord] = []
    for coord in order:
        if coord in pool and coord not in occupied:
            run.append(coord)
            if len(run) == n:
                return path_region(run)
        else:
            run = []
    return None


def simulate_compaction(
    vlsi: VLSIProcessor, max_passes: int = 8
) -> CompactionSim:
    """Replay the legacy compaction loop without touching the fabric."""
    fabric = vlsi.fabric
    order = list(fabric.linear_order())
    fold = {coord: serpentine_unfold(coord, fabric.cols) for coord in order}

    layout: Dict[str, Region] = {}
    movable: List[str] = []
    for name, instance in vlsi.processors.items():
        if instance.state.state is ProcessorState.INACTIVE:
            movable.append(name)
            layout[name] = instance.region

    # Anything a movable processor could ever land on: clusters free right
    # now, plus the movable processors' own (vacatable) clusters.
    pool: Set[Coord] = {
        coord for coord in order if fabric.cluster(coord).is_free
    }
    for name in movable:
        pool.update(layout[name].path)

    moves: List[SimMove] = []
    putbacks: List[SimVisit] = []
    passes = 0
    for _ in range(max_passes):
        passes += 1
        moved_this_pass = False
        visited: Set[str] = set()
        while True:
            pending = [name for name in movable if name not in visited]
            if not pending:
                break
            # the satellite-4 discipline: re-derive the visit key from the
            # *current* layout each iteration, never from a stale pre-pass
            # sort (fold indices are unique, so min() is deterministic)
            name = min(pending, key=lambda p: fold[layout[p].path[0]])
            visited.add(name)
            region = layout[name]
            occupied: Set[Coord] = set()
            for other in movable:
                if other != name:
                    occupied.update(layout[other].path)
            target = earliest_free_run(order, pool, occupied, len(region))
            if (
                target is None
                or fold[target.path[0]] >= fold[region.path[0]]
            ):
                putbacks.append(SimVisit(name, passes, region))
                continue
            moves.append(SimMove(name, passes, region, target))
            layout[name] = target
            moved_this_pass = True
        if not moved_this_pass:
            break
    return CompactionSim(
        moves=tuple(moves),
        putbacks=tuple(putbacks),
        passes=passes,
        final=dict(layout),
    )
