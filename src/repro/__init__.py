"""repro — reproduction of Takano's "Very Large-Scale Integrated Processor".

The package is organised by architectural layer (see DESIGN.md):

* :mod:`repro.costmodel` — analytical area/delay/GOPS model (§4, Tables 1–4)
* :mod:`repro.ap` — the adaptive-processor substrate (§2)
* :mod:`repro.csd` — channel-segmentation-distribution interconnect (§2.6, Fig. 3)
* :mod:`repro.topology` — S-topology fabric, switches, rings (§3.1–3.2)
* :mod:`repro.noc` — wormhole routers used for scaling (§3.3–3.4)
* :mod:`repro.core` — the VLSI processor itself: scaling, states, IPC (§3)
* :mod:`repro.workloads` — dataflow graphs, generators, example programs
* :mod:`repro.analysis` — stack-distance / channel-usage analysis and reporting
* :mod:`repro.telemetry` — counters/timers/event traces threaded through the
  simulators' hot paths (``python -m repro fig3 --stats`` reports them)
"""

from repro._version import __version__
from repro.errors import (
    ReproError,
    ConfigurationError,
    CapacityError,
    RoutingError,
    ChannelAllocationError,
    TopologyError,
    RegionError,
    StateTransitionError,
    AllocationConflictError,
    DefectError,
    StreamFormatError,
    SimulationError,
    ServiceError,
    AdmissionError,
    QuotaError,
    ProtocolError,
)

__all__ = [
    "__version__",
    "ReproError",
    "ConfigurationError",
    "CapacityError",
    "RoutingError",
    "ChannelAllocationError",
    "TopologyError",
    "RegionError",
    "StateTransitionError",
    "AllocationConflictError",
    "DefectError",
    "StreamFormatError",
    "SimulationError",
    "ServiceError",
    "AdmissionError",
    "QuotaError",
    "ProtocolError",
]
