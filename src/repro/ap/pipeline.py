"""The adaptive-processor pipeline (paper section 2.2, Figures 1 and 2.3).

Five stages process the global configuration data stream:

1. **Pointer Update** — advance the stream pointer;
2. **Request Fetch** — fetch the element (like instruction fetch);
3. **Request Evaluation** — evaluate the request (memory accesses here);
4. **Request** — search the requested object IDs; on an object
   cache-miss, miss-handling elements are inserted: the logical objects
   are loaded from the library into configuration-buffer objects and a
   stack shift enters them into the object space;
5. **Acquirement** — the hit objects acknowledge, wake their execution
   fabric, and receive acquirement signals from the WSRF that select the
   communication channel used for chaining (the dynamic CSD grant).

Modelling notes (recorded in DESIGN.md): hits do not reorder the stack
while a datapath is being configured — physically, shifting an object
with live chains would tear its wiring; the stack's LRU order is entry
order, and the exact-LRU mathematics lives separately in
:mod:`repro.ap.cache_model`.  Eviction victims are the lowest *unacquired*
objects; if every resident object is acquired the working set genuinely
exceeds the array and :class:`repro.errors.CapacityError` is raised —
the paper's "the stack distance has to be less than or equal to C" rule
made operational.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    CapacityError,
    ChannelAllocationError,
    ConfigurationError,
)
from repro.csd.dynamic_csd import Connection, DynamicCSDNetwork
from repro.ap.config_stream import ConfigElement, ConfigStream
from repro.ap.stack import ObjectStack
from repro.ap.virtual_hw import ObjectLibrary, SwapScheduler
from repro.ap.wsrf import WSRF

__all__ = ["Stage", "StageEvent", "PipelineStats", "AdaptiveProcessor"]


class Stage(enum.Enum):
    POINTER_UPDATE = "pointer-update"
    REQUEST_FETCH = "request-fetch"
    REQUEST_EVALUATION = "request-evaluation"
    REQUEST = "request"
    ACQUIREMENT = "acquirement"


@dataclass(frozen=True)
class StageEvent:
    """One pipeline-stage occupancy, for the Figure 1 trace bench."""

    cycle: int
    stage: Stage
    element_index: int
    detail: str = ""


@dataclass
class PipelineStats:
    """Aggregate outcome of running one configuration stream."""

    elements: int = 0
    object_requests: int = 0
    hits: int = 0
    misses: int = 0
    stall_cycles: int = 0
    total_cycles: int = 0
    evictions: int = 0
    connections: int = 0
    channels_used: int = 0

    @property
    def hit_rate(self) -> float:
        if self.object_requests == 0:
            return 0.0
        return self.hits / self.object_requests

    @property
    def cycles_per_element(self) -> float:
        if self.elements == 0:
            return 0.0
        return self.total_cycles / self.elements


class AdaptiveProcessor:
    """One AP: stack + WSRF + library + dynamic CSD network + pipeline.

    Parameters
    ----------
    capacity:
        Array size C (number of physical objects).
    library:
        Object library resident in the memory blocks.
    n_channels:
        Dynamic CSD channel provisioning (default C/2, the Figure 3 rule).
    wsrf_capacity:
        Working-set register file entries (Table 3 default: 40).
    config_buffers:
        Configuration-buffer objects available for concurrent library
        loads on a miss (§2.3: "its logical object(s) is loaded from the
        library ... to a configuration buffer object(s)"; Table 3 sizes
        three CFBs).  More misses than buffers load in batches.
    trace_stages:
        Record :class:`StageEvent` for every stage occupancy (Figure 1
        bench); off by default to keep long runs light.
    """

    PIPELINE_DEPTH = 5

    #: Table 3: "64b x2 Reg. x2 in CFB x3" — three configuration buffers.
    DEFAULT_CONFIG_BUFFERS = 3

    def __init__(
        self,
        capacity: int,
        library: ObjectLibrary,
        n_channels: Optional[int] = None,
        wsrf_capacity: int = 40,
        config_buffers: int = DEFAULT_CONFIG_BUFFERS,
        trace_stages: bool = False,
    ) -> None:
        if config_buffers < 1:
            raise ValueError("need at least one configuration buffer")
        self.stack = ObjectStack(capacity)
        self.library = library
        self.scheduler = SwapScheduler(library)
        self.wsrf = WSRF(wsrf_capacity)
        self.network = DynamicCSDNetwork(max(capacity, 2), n_channels)
        self.config_buffers = config_buffers
        self.trace_stages = trace_stages
        self.events: List[StageEvent] = []
        self._connections: Dict[Tuple[int, int], Connection] = {}

    # -- public API ------------------------------------------------------

    def run(self, stream: ConfigStream) -> PipelineStats:
        """Process a whole configuration stream; returns the statistics."""
        stats = PipelineStats()
        issue_cycle = 0
        stream.rewind()
        index = 0
        while not stream.exhausted:
            element = stream.fetch()
            stall = self._process_element(element, index, issue_cycle, stats)
            stats.stall_cycles += stall
            issue_cycle += 1 + stall
            index += 1
        stats.elements = index
        # last element leaves acquirement PIPELINE_DEPTH-1 cycles after issue
        stats.total_cycles = (
            issue_cycle + self.PIPELINE_DEPTH - 1 if index else 0
        )
        stats.channels_used = self.network.used_channels()
        return stats

    def release_object(self, object_id: int) -> None:
        """Fire the release token for one object: drop its WSRF entry,
        deactivate it, and free the channels of its chains."""
        if self.wsrf.lookup(object_id) is None:
            raise ConfigurationError(f"object {object_id} not acquired")
        self.wsrf.release(object_id)
        self.stack.release(object_id)
        for key, conn in list(self._connections.items()):
            if object_id in key:
                try:
                    self.network.disconnect(conn)
                except ChannelAllocationError:
                    pass  # already evicted by a stack shift
                del self._connections[key]

    def configured_connections(self) -> List[Tuple[int, int]]:
        """Live (source_id, sink_id) chains of the configured datapath."""
        return list(self._connections)

    # -- pipeline internals ---------------------------------------------------

    def _process_element(
        self,
        element: ConfigElement,
        index: int,
        issue_cycle: int,
        stats: PipelineStats,
    ) -> int:
        """Run one element through the five stages; returns stall cycles."""
        self._trace(issue_cycle + 0, Stage.POINTER_UPDATE, index)
        self._trace(issue_cycle + 1, Stage.REQUEST_FETCH, index)
        self._trace(issue_cycle + 2, Stage.REQUEST_EVALUATION, index)

        # stage 4: request — hit/miss per referenced ID
        request_cycle = issue_cycle + 3
        distinct = set(element.referenced_ids)
        if len(distinct) > self.stack.capacity:
            raise CapacityError(
                f"element references {len(distinct)} objects but the array "
                f"capacity is {self.stack.capacity}"
            )
        verdicts = {oid: oid in self.stack for oid in element.referenced_ids}
        missed = [oid for oid, hit in verdicts.items() if not hit]
        stats.object_requests += len(verdicts)
        stats.hits += len(verdicts) - len(missed)
        stats.misses += len(missed)
        self._trace(
            request_cycle,
            Stage.REQUEST,
            index,
            detail=f"miss={missed}" if missed else "hit",
        )

        # miss handling: load to configuration buffers, then one forced
        # stack shift per loaded object enters them into the object space
        stall = 0
        if missed:
            loaded = []
            load_latency = 0
            for oid in missed:
                logical, latency = self.library.load(oid)
                loaded.append(logical)
                load_latency = max(load_latency, latency)
            for logical in loaded:
                self._make_room(protected=distinct)
                evicted = self.stack.push(logical)
                if evicted is not None:
                    self.scheduler.schedule_store(evicted)
                    stats.evictions += 1
                self.network.stack_shift(1)
                self._shift_wsrf_positions()
            # loads overlap only up to the configuration-buffer count:
            # misses beyond it wait for a buffer in later batches
            batches = -(-len(missed) // self.config_buffers)  # ceil
            stall = batches * load_latency + len(missed)
            self._trace(
                request_cycle + stall,
                Stage.REQUEST,
                index,
                detail="re-request after stack shift",
            )

        # stage 5: acquirement — wake, acquire, chain
        acquire_cycle = request_cycle + stall + 1
        self._acquire_and_chain(element, stats)
        self._trace(acquire_cycle, Stage.ACQUIREMENT, index)
        return stall

    def _make_room(self, protected: set) -> None:
        """Ensure a push cannot evict an acquired object or one the
        current element needs: pre-evict the lowest evictable resident.

        Raises
        ------
        CapacityError
            If every resident object is acquired or needed — the working
            set exceeds the array capacity C.
        """
        if not self.stack.is_full:
            return

        def evictable(oid: int) -> bool:
            return oid not in self.wsrf and oid not in protected

        bottom = self.stack.at(self.stack.capacity - 1)
        assert bottom is not None
        if evictable(bottom.object_id):
            return  # normal bottom eviction by push() is safe
        for pos in range(self.stack.capacity - 1, -1, -1):
            resident = self.stack.at(pos)
            if resident is not None and evictable(resident.object_id):
                victim = self.stack.evict(resident.object_id)
                self.scheduler.schedule_store(victim)
                self._shift_wsrf_positions()
                return
        raise CapacityError(
            f"working set exceeds array capacity {self.stack.capacity}: "
            "every resident object is acquired or requested"
        )

    def _shift_wsrf_positions(self) -> None:
        """Track acquired objects through a stack shift."""
        for entry in self.wsrf.working_set():
            pos = self.stack.position_of(entry.object_id)
            if pos is not None and pos != entry.position:
                self.wsrf.update_position(entry.object_id, pos)

    def _acquire_and_chain(self, element: ConfigElement, stats: PipelineStats) -> None:
        """Acquirement stage: wake objects, record WSRF entries, chain
        each source to the sink over the dynamic CSD network."""
        for oid in element.referenced_ids:
            pos = self.stack.position_of(oid)
            if pos is None:
                raise ConfigurationError(
                    f"object {oid} vanished between request and acquirement"
                )
            self.stack.wake(oid)
            if oid not in self.wsrf:
                self.wsrf.acquire(oid, pos)
        sink_pos = self.stack.position_of(element.sink)
        assert sink_pos is not None
        for src in element.sources:
            key = (src, element.sink)
            if key in self._connections:
                continue  # already chained by an earlier element
            src_pos = self.stack.position_of(src)
            assert src_pos is not None
            if src_pos == sink_pos:
                raise ConfigurationError(
                    f"objects {src} and {element.sink} share position {src_pos}"
                )
            conn = self.network.connect(src_pos, sink_pos)
            self._connections[key] = conn
            stats.connections += 1

    def _trace(
        self, cycle: int, stage: Stage, index: int, detail: str = ""
    ) -> None:
        if self.trace_stages:
            self.events.append(StageEvent(cycle, stage, index, detail))
