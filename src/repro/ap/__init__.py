"""The adaptive processor (AP) substrate (paper section 2).

An AP is a linear array of processing elements — *physical objects* —
managed as a stack.  Applications are not compiled to instructions;
instead, a **global configuration data stream** of object IDs requests
*logical objects* (operation + initial data) and chains them into a
datapath.  Placement is always at the top of the stack; the stack shift
implements LRU replacement; the working-set register file (WSRF) tracks
acquired objects; missed objects are loaded from a library in the memory
blocks (virtual hardware).

Modules
-------
:mod:`repro.ap.objects`
    Physical/logical objects, binding, and operation semantics (§2.1).
:mod:`repro.ap.config_stream`
    The global configuration data stream (§2.1, §2.4).
:mod:`repro.ap.stack`
    The object stack: top placement, stack shift, LRU order (§2.4).
:mod:`repro.ap.wsrf`
    Working-set register file (§2.2, Figure 1).
:mod:`repro.ap.cache_model`
    Mattson stack-distance analysis linking dependency distance to hit
    rate (§2.4).
:mod:`repro.ap.virtual_hw`
    Object library, swap in/out, write-back (§2.5).
:mod:`repro.ap.pipeline`
    The five-stage processor pipeline (§2.2, Figure 1).
:mod:`repro.ap.datapath`
    Chained-object dataflow execution and release tokens (§2.3).
:mod:`repro.ap.streaming`
    Streaming execution and the capacity rule (§2.5).
"""

from repro.ap.objects import (
    ObjectKind,
    Operation,
    LogicalObject,
    PhysicalObject,
    apply_operation,
)
from repro.ap.config_stream import ConfigElement, ConfigStream
from repro.ap.stack import ObjectStack
from repro.ap.wsrf import WSRF, WSRFEntry
from repro.ap.cache_model import (
    stack_distances,
    hit_rate_for_capacity,
    hit_rate_curve,
)
from repro.ap.virtual_hw import ObjectLibrary, SwapScheduler
from repro.ap.memory_block import MemoryBlock, AddressGenerator
from repro.ap.pipeline import AdaptiveProcessor, PipelineStats, StageEvent
from repro.ap.datapath import Datapath, DatapathNode
from repro.ap.streaming import StreamingExecutor, StreamingStats

__all__ = [
    "ObjectKind",
    "Operation",
    "LogicalObject",
    "PhysicalObject",
    "apply_operation",
    "ConfigElement",
    "ConfigStream",
    "ObjectStack",
    "WSRF",
    "WSRFEntry",
    "stack_distances",
    "hit_rate_for_capacity",
    "hit_rate_curve",
    "ObjectLibrary",
    "SwapScheduler",
    "MemoryBlock",
    "AddressGenerator",
    "AdaptiveProcessor",
    "PipelineStats",
    "StageEvent",
    "Datapath",
    "DatapathNode",
    "StreamingExecutor",
    "StreamingStats",
]
