"""Virtual hardware: the object library and swap machinery (section 2.5).

"An unused object should be swapped out to a memory block to make room
for a newly requested object(s).  This replacement is equivalent to the
write-back policy of conventional cache memory.  When it is an object
cache-miss, cache missed object(s) is loaded, and replaceable object(s)
is stored if necessary.  The replacement is scheduled using a special
interconnection network composing a scheduling table."

The :class:`ObjectLibrary` lives in the memory blocks and serves logical
objects by ID with a load latency; the :class:`SwapScheduler` is the
scheduling table: a FIFO of pending store-backs drained one per cycle.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.ap.objects import LogicalObject

__all__ = ["ObjectLibrary", "SwapScheduler"]


class ObjectLibrary:
    """Logical objects stored in the memory blocks, keyed by ID."""

    def __init__(
        self,
        objects: Iterable[LogicalObject] = (),
        load_latency: int = 4,
    ) -> None:
        if load_latency < 1:
            raise ValueError("load latency must be at least one cycle")
        self.load_latency = load_latency
        self._store: Dict[int, LogicalObject] = {}
        self.loads = 0
        self.stores = 0
        for obj in objects:
            self.add(obj)

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._store

    def add(self, obj: LogicalObject) -> None:
        """Install a logical object into the library.

        Raises
        ------
        ConfigurationError
            On a duplicate ID (IDs are the stream's only namespace).
        """
        if obj.object_id in self._store:
            raise ConfigurationError(
                f"library already holds object {obj.object_id}"
            )
        self._store[obj.object_id] = obj

    def load(self, object_id: int) -> Tuple[LogicalObject, int]:
        """Fetch an object for a cache miss; returns (object, latency).

        Raises
        ------
        ConfigurationError
            For an ID the library has never seen — the application
            requested an object that does not exist.
        """
        obj = self._store.get(object_id)
        if obj is None:
            raise ConfigurationError(f"object {object_id} not in library")
        self.loads += 1
        return obj, self.load_latency

    def store(self, obj: LogicalObject) -> int:
        """Write back an evicted object; returns the store latency.

        Overwrites any stale copy (write-back semantics).
        """
        self._store[obj.object_id] = obj
        self.stores += 1
        return self.load_latency


class SwapScheduler:
    """The scheduling table: pending write-backs drained one per cycle."""

    def __init__(self, library: ObjectLibrary) -> None:
        self.library = library
        self._pending: Deque[LogicalObject] = deque()
        self.scheduled = 0

    def schedule_store(self, obj: LogicalObject) -> None:
        """Queue an evicted object for write-back."""
        self._pending.append(obj)
        self.scheduled += 1

    @property
    def backlog(self) -> int:
        return len(self._pending)

    def drain_one(self) -> Optional[LogicalObject]:
        """Perform one scheduled write-back; None when the table is empty."""
        if not self._pending:
            return None
        obj = self._pending.popleft()
        self.library.store(obj)
        return obj

    def drain_all(self) -> List[LogicalObject]:
        """Flush the table (e.g. before the AP releases its resources)."""
        out: List[LogicalObject] = []
        while self._pending:
            drained = self.drain_one()
            assert drained is not None
            out.append(drained)
        return out
