"""Mattson stack-distance analysis (paper section 2.4, reference [11]).

"A study on stack algorithms showed a relationship between the stack
distance and cache hit rate.  The stack distance is the distance from
the top of the stack to the cache hit location.  To make a hit always
occur, the stack distance has to be less than or equal to C, where C is
the capacity of the cache, namely the array size for the adaptive
processor."

These functions run the classic one-pass LRU stack simulation over an
object-ID reference trace: because LRU has the inclusion property, one
pass yields the hit rate at *every* capacity simultaneously.  First
references (cold misses) get distance ``inf``.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

__all__ = [
    "stack_distances",
    "hit_rate_for_capacity",
    "hit_rate_curve",
    "simulate_policy",
    "compare_policies",
]


def stack_distances(trace: Sequence[int]) -> List[float]:
    """LRU stack distance of every reference in the trace.

    Distance 0 means the object was already on top; ``math.inf`` marks a
    first (cold) reference.
    """
    stack: List[int] = []  # most recent first
    distances: List[float] = []
    seen: set = set()
    for ref in trace:
        if ref not in seen:
            distances.append(math.inf)
            stack.insert(0, ref)
            seen.add(ref)
        else:
            pos = stack.index(ref)
            distances.append(float(pos))
            stack.pop(pos)
            stack.insert(0, ref)
    return distances


def hit_rate_for_capacity(trace: Sequence[int], capacity: int) -> float:
    """Fraction of references that hit an LRU cache of ``capacity``.

    A reference hits when its stack distance is strictly less than C
    (distance counts positions above it; the paper's "less than or equal
    to C" uses 1-based distances).
    """
    if capacity < 1:
        raise ValueError("capacity must be positive")
    if not trace:
        return 0.0
    distances = stack_distances(trace)
    hits = sum(1 for d in distances if d < capacity)
    return hits / len(distances)


def hit_rate_curve(
    trace: Sequence[int], capacities: Iterable[int]
) -> Dict[int, float]:
    """Hit rate at every requested capacity from one stack pass.

    Exploits LRU inclusion: compute distances once, then threshold.
    """
    distances = stack_distances(trace)
    n = len(distances)
    out: Dict[int, float] = {}
    for cap in capacities:
        if cap < 1:
            raise ValueError("capacity must be positive")
        if n == 0:
            out[cap] = 0.0
        else:
            out[cap] = sum(1 for d in distances if d < cap) / n
    return out


def simulate_policy(
    trace: Sequence[int],
    capacity: int,
    policy: str = "lru",
    seed: Optional[int] = None,
) -> float:
    """Hit rate of an explicit replacement policy at one capacity.

    Policies: ``"lru"`` (what the stack shift gives the AP for free,
    §2.4), ``"fifo"`` (eviction by entry order, no promotion on hit) and
    ``"random"``.  The LRU result matches :func:`hit_rate_for_capacity`
    exactly — the stack simulation is the reference implementation.
    """
    if capacity < 1:
        raise ValueError("capacity must be positive")
    if policy not in ("lru", "fifo", "random"):
        raise ValueError(f"unknown policy {policy!r}")
    if not trace:
        return 0.0
    rng = np.random.default_rng(seed)
    hits = 0
    if policy == "lru":
        return hit_rate_for_capacity(trace, capacity)
    if policy == "fifo":
        resident: deque = deque()
        member = set()
        for ref in trace:
            if ref in member:
                hits += 1
                continue
            if len(resident) >= capacity:
                member.discard(resident.popleft())
            resident.append(ref)
            member.add(ref)
        return hits / len(trace)
    # random replacement
    resident_list: List[int] = []
    member = set()
    for ref in trace:
        if ref in member:
            hits += 1
            continue
        if len(resident_list) >= capacity:
            victim_idx = int(rng.integers(len(resident_list)))
            member.discard(resident_list[victim_idx])
            resident_list[victim_idx] = ref
        else:
            resident_list.append(ref)
        member.add(ref)
    return hits / len(trace)


def compare_policies(
    trace: Sequence[int],
    capacity: int,
    seed: int = 0,
) -> Dict[str, float]:
    """Hit rates of all three policies on one trace — quantifies what
    the §2.4 stack structure (free LRU) buys over simpler replacement."""
    return {
        policy: simulate_policy(trace, capacity, policy, seed=seed)
        for policy in ("lru", "fifo", "random")
    }
