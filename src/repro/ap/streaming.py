"""Streaming execution and the capacity rule (paper section 2.5).

"The virtual hardware is supported when the processor works on
completely scalar operations.  When an operation involves streaming, the
reconfigured datapath has to be smaller than the capacity C, since the
streaming does not allow swapping out part of the datapath."

The :class:`StreamingExecutor` pushes a sequence of input records
through a configured :class:`repro.ap.datapath.Datapath` as a pipeline:
after a fill phase equal to the datapath depth, one result emerges per
cycle.  Constructing it with a datapath larger than the array capacity
raises :class:`repro.errors.CapacityError` — the rule that motivates
up-scaling the AP in the first place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

from repro.errors import CapacityError
from repro.ap.datapath import Datapath

__all__ = ["StreamingStats", "StreamingExecutor"]


@dataclass(frozen=True)
class StreamingStats:
    """Throughput accounting for one streaming run."""

    records: int
    datapath_depth: int
    total_cycles: int

    @property
    def throughput(self) -> float:
        """Results per cycle (approaches 1.0 for long streams)."""
        if self.total_cycles == 0:
            return 0.0
        return self.records / self.total_cycles


class StreamingExecutor:
    """Runs a record stream through a configured datapath.

    Parameters
    ----------
    datapath:
        The configured datapath (its node count is the resource demand).
    capacity:
        Array capacity C of the hosting AP.
    output_ids:
        Which object IDs to collect per record (default: all sink nodes,
        i.e. nodes with no consumers).
    """

    def __init__(
        self,
        datapath: Datapath,
        capacity: int,
        output_ids: Optional[List[int]] = None,
    ) -> None:
        if capacity < 1:
            raise CapacityError("capacity must be positive")
        if len(datapath) > capacity:
            raise CapacityError(
                f"streaming datapath of {len(datapath)} objects exceeds "
                f"capacity C={capacity}; streaming forbids swapping out "
                "part of the datapath (section 2.5)"
            )
        self.datapath = datapath
        self.capacity = capacity
        if output_ids is None:
            output_ids = [
                n.object_id
                for n in datapath.topological_order()
                if not n.consumers
            ]
        self.output_ids = output_ids

    def run(self, records: Iterable[Dict[int, Any]]) -> "StreamingRun":
        """Stream every record through the datapath.

        Each record maps input object IDs to values.  Returns the
        collected outputs plus pipeline statistics.
        """
        outputs: List[Dict[int, Any]] = []
        count = 0
        for record in records:
            values = self.datapath.execute(inputs=record)
            outputs.append({oid: values[oid] for oid in self.output_ids})
            count += 1
        depth = self.datapath.depth()
        # pipelined timing: fill (depth cycles) + one result per record
        total = depth + max(0, count - 1) + (1 if count else 0)
        return StreamingRun(outputs, StreamingStats(count, depth, total))


@dataclass(frozen=True)
class StreamingRun:
    """Outputs + stats of one streaming execution."""

    outputs: List[Dict[int, Any]]
    stats: StreamingStats
