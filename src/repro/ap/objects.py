"""Objects and the two-level configuration (paper section 2.1).

"A processing element called a physical object performs its operation as
defined by the configuration data.  Such configuration data is called
local configuration data.  The pair of initial data and local
configuration data is called a logical object, and [a] logical object
binded on the physical object is called an object."

So three notions exist:

* :class:`PhysicalObject` — the silicon: a position in the array with a
  general-purpose compute fabric (Table 1: 64-bit FP mul/add/div, integer
  mul/ALU/shift/div, six registers);
* :class:`LogicalObject` — the *content*: an operation (local
  configuration data) plus initial data, loadable from the library;
* an **object** — a logical object currently bound to a physical object.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "ObjectKind",
    "Operation",
    "LogicalObject",
    "PhysicalObject",
    "apply_operation",
]


class ObjectKind(enum.Enum):
    """Role of an object in the fabric (Figure 4(b) legend)."""

    COMPUTE = "compute"
    MEMORY = "memory"
    SYSTEM = "system"


class Operation(enum.Enum):
    """Local configuration data: what the compute fabric does.

    The set mirrors the Table 1 datapath — 64-bit floating point multiply
    / add / divide and integer multiply / ALU / shift / divide — plus the
    structural operations a dataflow graph needs (constants, pass-through,
    comparison and selection for the Figure 7 conditional example).
    """

    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    IADD = "iadd"
    ISUB = "isub"
    IMUL = "imul"
    IDIV = "idiv"
    SHL = "shl"
    SHR = "shr"
    AND = "and"
    OR = "or"
    XOR = "xor"
    CMP_GT = "cmp_gt"
    CMP_LT = "cmp_lt"
    CMP_EQ = "cmp_eq"
    SELECT = "select"  # select(cond, a, b)
    CONST = "const"  # emits its initial data
    PASS = "pass"  # identity (buffers, Figure 7's z=buff)
    NEG = "neg"
    ABS = "abs"
    MIN = "min"
    MAX = "max"
    SQRT = "sqrt"


#: Arity of each operation (number of input operands).
_ARITY: Dict[Operation, int] = {
    Operation.FADD: 2, Operation.FSUB: 2, Operation.FMUL: 2, Operation.FDIV: 2,
    Operation.IADD: 2, Operation.ISUB: 2, Operation.IMUL: 2, Operation.IDIV: 2,
    Operation.SHL: 2, Operation.SHR: 2,
    Operation.AND: 2, Operation.OR: 2, Operation.XOR: 2,
    Operation.CMP_GT: 2, Operation.CMP_LT: 2, Operation.CMP_EQ: 2,
    Operation.SELECT: 3,
    Operation.CONST: 0,
    Operation.PASS: 1, Operation.NEG: 1, Operation.ABS: 1, Operation.SQRT: 1,
    Operation.MIN: 2, Operation.MAX: 2,
}


def apply_operation(
    op: Operation, inputs: Sequence[Any], init_data: Any = None
) -> Any:
    """Evaluate one operation on its inputs.

    Raises
    ------
    ConfigurationError
        On arity mismatch or a CONST with no initial data.
    """
    expected = _ARITY[op]
    if len(inputs) != expected:
        raise ConfigurationError(
            f"{op.value} expects {expected} inputs, got {len(inputs)}"
        )
    if op is Operation.CONST:
        if init_data is None:
            raise ConfigurationError("CONST object needs initial data")
        return init_data
    a = inputs[0] if inputs else None
    b = inputs[1] if len(inputs) > 1 else None
    if op is Operation.FADD or op is Operation.IADD:
        return a + b
    if op is Operation.FSUB or op is Operation.ISUB:
        return a - b
    if op is Operation.FMUL or op is Operation.IMUL:
        return a * b
    if op is Operation.FDIV:
        return a / b
    if op is Operation.IDIV:
        return int(a) // int(b)
    if op is Operation.SHL:
        return int(a) << int(b)
    if op is Operation.SHR:
        return int(a) >> int(b)
    if op is Operation.AND:
        return int(a) & int(b)
    if op is Operation.OR:
        return int(a) | int(b)
    if op is Operation.XOR:
        return int(a) ^ int(b)
    if op is Operation.CMP_GT:
        return a > b
    if op is Operation.CMP_LT:
        return a < b
    if op is Operation.CMP_EQ:
        return a == b
    if op is Operation.SELECT:
        return inputs[1] if inputs[0] else inputs[2]
    if op is Operation.PASS:
        return a
    if op is Operation.NEG:
        return -a
    if op is Operation.ABS:
        return abs(a)
    if op is Operation.MIN:
        return min(a, b)
    if op is Operation.MAX:
        return max(a, b)
    if op is Operation.SQRT:
        return math.sqrt(a)
    raise ConfigurationError(f"unhandled operation {op}")  # pragma: no cover


@dataclass(frozen=True)
class LogicalObject:
    """Initial data + local configuration data (section 2.1).

    Attributes
    ----------
    object_id:
        The ID the global configuration stream requests it by.
    operation:
        Local configuration data (what the bound PE computes).
    init_data:
        Initial data (a CONST's value, a coefficient, ...).
    kind:
        Compute / memory / system role.
    """

    object_id: int
    operation: Operation
    init_data: Any = None
    kind: ObjectKind = ObjectKind.COMPUTE

    def __post_init__(self) -> None:
        if self.object_id < 0:
            raise ConfigurationError("object IDs are non-negative")

    @property
    def arity(self) -> int:
        return _ARITY[self.operation]

    def evaluate(self, inputs: Sequence[Any]) -> Any:
        """Run the operation this logical object configures."""
        return apply_operation(self.operation, inputs, self.init_data)


@dataclass
class PhysicalObject:
    """One processing element of the array.

    A physical object is anonymous silicon until a logical object is
    bound onto it; the bound pair is "an object" in the paper's terms.
    """

    position: int
    kind: ObjectKind = ObjectKind.COMPUTE
    logical: Optional[LogicalObject] = None
    #: Set when the object acknowledged a hit and woke its execution fabric.
    active: bool = False

    def __post_init__(self) -> None:
        if self.position < 0:
            raise ConfigurationError("positions are non-negative")

    @property
    def is_bound(self) -> bool:
        return self.logical is not None

    def bind(self, logical: LogicalObject) -> None:
        """Bind a logical object onto this PE (making it "an object")."""
        if self.kind is not ObjectKind.COMPUTE and logical.kind is not self.kind:
            raise ConfigurationError(
                f"cannot bind {logical.kind.value} object onto "
                f"{self.kind.value} element"
            )
        self.logical = logical

    def unbind(self) -> Optional[LogicalObject]:
        """Remove and return the bound logical object (swap-out path)."""
        logical, self.logical = self.logical, None
        self.active = False
        return logical

    def wake(self) -> None:
        """Activate the execution fabric (the hit acknowledgement path)."""
        if not self.is_bound:
            raise ConfigurationError(
                f"physical object {self.position} has nothing bound"
            )
        self.active = True

    def release(self) -> None:
        """Fire the release token: deactivate, keep the binding cached."""
        self.active = False

    def execute(self, inputs: Sequence[Any]) -> Any:
        """Run the bound operation.

        Raises
        ------
        ConfigurationError
            If unbound or inactive.
        """
        if not self.is_bound:
            raise ConfigurationError(
                f"physical object {self.position} has nothing bound"
            )
        if not self.active:
            raise ConfigurationError(
                f"object {self.logical.object_id} at {self.position} "
                "executed without being acquired"
            )
        return self.logical.evaluate(inputs)
