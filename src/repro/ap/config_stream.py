"""The global configuration data stream (paper sections 2.1, 2.4).

"To configure an application datapath, chaining between operators is
defined through the global configuration data which consists of a sink
object ID and source IDs.  Therefore, in a global configuration data
stream, the dependency is represented by the ID."

A stream is an ordered sequence of :class:`ConfigElement`; a pointer
(updated by the pipeline's first stage) walks it.  Because elements name
objects by ID, the stream *is* the dependency structure — the
"dependency distance" the CACHE model reasons about is the distance (in
elements) since an ID was last referenced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import StreamFormatError

__all__ = ["ConfigElement", "ConfigStream"]


@dataclass(frozen=True)
class ConfigElement:
    """One element: a sink object ID and the source IDs feeding it."""

    sink: int
    sources: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.sink < 0:
            raise StreamFormatError("sink ID must be non-negative")
        if any(s < 0 for s in self.sources):
            raise StreamFormatError("source IDs must be non-negative")
        if self.sink in self.sources:
            raise StreamFormatError(
                f"element chains object {self.sink} to itself"
            )

    @property
    def referenced_ids(self) -> Tuple[int, ...]:
        """All object IDs this element touches, sink first."""
        return (self.sink, *self.sources)


class ConfigStream:
    """An ordered global configuration data stream with its pointer."""

    def __init__(self, elements: Sequence[ConfigElement] = ()) -> None:
        self._elements: List[ConfigElement] = list(elements)
        self.pointer = 0

    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[ConfigElement]:
        return iter(self._elements)

    def __getitem__(self, index: int) -> ConfigElement:
        return self._elements[index]

    def append(self, element: ConfigElement) -> None:
        self._elements.append(element)

    # -- the pointer-update / request-fetch interface -------------------------

    @property
    def exhausted(self) -> bool:
        return self.pointer >= len(self._elements)

    def fetch(self) -> ConfigElement:
        """Fetch the element at the pointer and advance it (stages 1-2).

        Raises
        ------
        StreamFormatError
            When fetching past the end of the stream.
        """
        if self.exhausted:
            raise StreamFormatError("configuration stream exhausted")
        element = self._elements[self.pointer]
        self.pointer += 1
        return element

    def rewind(self) -> None:
        """Reset the pointer (re-run the stream)."""
        self.pointer = 0

    def insert_at_pointer(self, elements: Sequence[ConfigElement]) -> None:
        """Insert elements at the pointer — the cache-miss path: "Global
        configuration data stream for object cache-miss is inserted at
        this [request] stage" (section 2.2)."""
        self._elements[self.pointer : self.pointer] = list(elements)

    # -- analysis helpers --------------------------------------------------

    def reference_trace(self) -> List[int]:
        """Flatten to the object-ID reference trace (for the CACHE model)."""
        trace: List[int] = []
        for el in self._elements:
            trace.extend(el.referenced_ids)
        return trace

    def dependency_distances(self) -> List[int]:
        """Distance (in stream elements) between each source reference and
        the element that last produced (sank to) that ID.

        "The dependency distance can be observed by an object code showing
        the object IDs" — unreferenced-before sources get distance 0
        (first use).
        """
        last_sink: Dict[int, int] = {}
        distances: List[int] = []
        for idx, el in enumerate(self._elements):
            for src in el.sources:
                if src in last_sink:
                    distances.append(idx - last_sink[src])
            last_sink[el.sink] = idx
        return distances

    @classmethod
    def from_pairs(cls, pairs: Sequence[Tuple[int, Sequence[int]]]) -> "ConfigStream":
        """Build from ``[(sink, [sources...]), ...]`` shorthand."""
        return cls([ConfigElement(s, tuple(srcs)) for s, srcs in pairs])
