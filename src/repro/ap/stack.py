"""The object stack (paper section 2.4).

"An array of physical objects composes a stack structure.  The stack
structure creates a deterministic and locality based placement; this
placement is always on the top of the stack.  Because a stack shift
sorts the objects in the array, a replacement, based on an LRU
algorithm, is easily implemented, and objects close to the bottom of the
stack are candidates for the replacement."

The stack holds logical objects bound to the array's physical objects in
recency order: position 0 is the top (most recent), position C-1 the
bottom (least recent, next eviction victim).  Entering a new object at
the top shifts everything else down one position — the *stack shift* —
evicting the bottom occupant when full.  A hit promotes the hit object
to the top (the LRU sort).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import CapacityError, ConfigurationError
from repro.ap.objects import LogicalObject, ObjectKind, PhysicalObject

__all__ = ["ObjectStack"]


class ObjectStack:
    """A capacity-``C`` LRU stack of objects over the physical array."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise CapacityError("stack capacity must be positive")
        self.capacity = capacity
        self.array: List[PhysicalObject] = [
            PhysicalObject(position=i) for i in range(capacity)
        ]
        #: Logical objects in recency order; index = stack position.
        self._order: List[LogicalObject] = []
        #: IDs of objects whose execution fabric is awake (acquired).
        self._active_ids: set = set()
        self.shift_count = 0
        self.eviction_count = 0

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, object_id: int) -> bool:
        return self.position_of(object_id) is not None

    @property
    def is_full(self) -> bool:
        return len(self._order) >= self.capacity

    def position_of(self, object_id: int) -> Optional[int]:
        """Stack position (0 = top) of an object, or None on a miss."""
        for pos, logical in enumerate(self._order):
            if logical.object_id == object_id:
                return pos
        return None

    def stack_distance(self, object_id: int) -> Optional[int]:
        """The paper's stack distance: distance from the top of the stack
        to the hit location.  ``None`` on a miss (infinite distance)."""
        return self.position_of(object_id)

    def at(self, position: int) -> Optional[LogicalObject]:
        """The logical object at a stack position, or None if empty."""
        if not 0 <= position < self.capacity:
            raise CapacityError(f"position {position} outside capacity {self.capacity}")
        if position < len(self._order):
            return self._order[position]
        return None

    def contents(self) -> List[LogicalObject]:
        """Top-to-bottom snapshot of the stack."""
        return list(self._order)

    # -- mutations --------------------------------------------------------

    def push(self, logical: LogicalObject) -> Optional[LogicalObject]:
        """Enter an object at the top of the stack (stack shift).

        Everything below shifts down one position; when the stack is
        full, the bottom occupant is evicted and returned (for the
        library write-back of section 2.5).

        Raises
        ------
        ConfigurationError
            If an object with this ID is already on the stack (use
            :meth:`touch` for hits).
        """
        if logical.object_id in self:
            raise ConfigurationError(
                f"object {logical.object_id} already on the stack"
            )
        evicted: Optional[LogicalObject] = None
        if self.is_full:
            evicted = self._order.pop()
            self._active_ids.discard(evicted.object_id)
            self.eviction_count += 1
        self._order.insert(0, logical)
        self.shift_count += 1
        self._rebind()
        return evicted

    def touch(self, object_id: int) -> int:
        """LRU hit: promote the object to the top of the stack.

        Returns the stack distance it was found at (before promotion).

        Raises
        ------
        ConfigurationError
            On a miss.
        """
        pos = self.position_of(object_id)
        if pos is None:
            raise ConfigurationError(f"object {object_id} not on the stack")
        if pos:
            logical = self._order.pop(pos)
            self._order.insert(0, logical)
            self.shift_count += 1
            self._rebind()
        return pos

    def evict(self, object_id: int) -> LogicalObject:
        """Explicitly remove an object (the swap-out path)."""
        pos = self.position_of(object_id)
        if pos is None:
            raise ConfigurationError(f"object {object_id} not on the stack")
        logical = self._order.pop(pos)
        self._active_ids.discard(object_id)
        self.eviction_count += 1
        self._rebind()
        return logical

    def wake(self, object_id: int) -> PhysicalObject:
        """Activate the hit object's execution fabric (Figure 1 step 2).

        Returns the physical object it currently occupies.
        """
        pos = self.position_of(object_id)
        if pos is None:
            raise ConfigurationError(f"object {object_id} not on the stack")
        self._active_ids.add(object_id)
        pe = self.array[pos]
        pe.active = True
        return pe

    def release(self, object_id: int) -> None:
        """Fire the release token: deactivate but keep the object cached."""
        self._active_ids.discard(object_id)
        pos = self.position_of(object_id)
        if pos is not None:
            self.array[pos].active = False

    def bottom_candidates(self, n: int = 1) -> List[LogicalObject]:
        """The ``n`` objects nearest the bottom — the replacement
        candidates of section 2.4."""
        if n < 0:
            raise ValueError("candidate count cannot be negative")
        return list(reversed(self._order[-n:])) if n else []

    # -- internal ---------------------------------------------------------

    def _rebind(self) -> None:
        """Keep physical-object bindings aligned with stack positions.

        The stack shift physically moves object state between PEs; here
        that is re-binding logical objects to the PE at their new
        position.
        """
        for pe in self.array:
            pe.logical = None
            pe.active = False
        for pos, logical in enumerate(self._order):
            self.array[pos].logical = logical
            self.array[pos].active = logical.object_id in self._active_ids
