"""Configured-datapath execution with release tokens (section 2.3).

Once objects are acquired and chained, "the objects are free from
control" — the datapath executes as pure dataflow.  "An object is
released by receiving and firing release token(s) from the preceding
object(s)": when an object has produced its value and all its consumers
have consumed it, its release token fires and the resource returns to
the pool as early as possible ("This technique reduces the idling time
as rapidly as possible", section 5).

:class:`Datapath` is the executable view: a DAG of
:class:`DatapathNode` evaluated in topological order, tracking the cycle
at which each release token fires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.ap.config_stream import ConfigStream
from repro.ap.objects import LogicalObject, Operation

__all__ = ["DatapathNode", "Datapath"]


@dataclass
class DatapathNode:
    """One chained object in the datapath DAG."""

    logical: LogicalObject
    sources: Tuple[int, ...] = ()
    #: Consumers (object IDs) — release fires once all have consumed.
    consumers: List[int] = field(default_factory=list)
    value: Any = None
    evaluated_at: Optional[int] = None
    released_at: Optional[int] = None

    @property
    def object_id(self) -> int:
        return self.logical.object_id


class Datapath:
    """An executable dataflow graph of chained logical objects."""

    def __init__(self) -> None:
        self._nodes: Dict[int, DatapathNode] = {}

    # -- construction -----------------------------------------------------

    def add(self, logical: LogicalObject, sources: Sequence[int] = ()) -> DatapathNode:
        """Add an object with its source chains.

        Raises
        ------
        ConfigurationError
            On duplicate IDs or arity mismatch with the operation.
        """
        if logical.object_id in self._nodes:
            raise ConfigurationError(
                f"datapath already contains object {logical.object_id}"
            )
        if logical.arity != len(sources):
            raise ConfigurationError(
                f"object {logical.object_id} ({logical.operation.value}) "
                f"needs {logical.arity} sources, got {len(sources)}"
            )
        node = DatapathNode(logical, tuple(sources))
        self._nodes[logical.object_id] = node
        for src in sources:
            if src in self._nodes:
                self._nodes[src].consumers.append(logical.object_id)
        return node

    @classmethod
    def from_stream(
        cls, stream: ConfigStream, library: Dict[int, LogicalObject]
    ) -> "Datapath":
        """Build the datapath a configuration stream describes."""
        dp = cls()
        for element in stream:
            logical = library.get(element.sink)
            if logical is None:
                raise ConfigurationError(
                    f"stream references unknown object {element.sink}"
                )
            dp.add(logical, element.sources)
        return dp

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._nodes

    def node(self, object_id: int) -> DatapathNode:
        try:
            return self._nodes[object_id]
        except KeyError:
            raise ConfigurationError(f"no object {object_id} in datapath") from None

    def topological_order(self) -> List[DatapathNode]:
        """Nodes in dependency order.

        Raises
        ------
        ConfigurationError
            If the chains contain a cycle (not a legal datapath) or
            reference missing objects.
        """
        order: List[DatapathNode] = []
        state: Dict[int, int] = {}  # 0 new, 1 visiting, 2 done

        def visit(oid: int) -> None:
            mark = state.get(oid, 0)
            if mark == 2:
                return
            if mark == 1:
                raise ConfigurationError(f"cycle through object {oid}")
            node = self._nodes.get(oid)
            if node is None:
                raise ConfigurationError(f"chain references missing object {oid}")
            state[oid] = 1
            for src in node.sources:
                visit(src)
            state[oid] = 2
            order.append(node)

        for oid in self._nodes:
            visit(oid)
        return order

    def depth(self) -> int:
        """Longest dependency chain — the datapath's critical path."""
        depths: Dict[int, int] = {}
        for node in self.topological_order():
            depths[node.object_id] = 1 + max(
                (depths[s] for s in node.sources), default=0
            )
        return max(depths.values(), default=0)

    # -- execution --------------------------------------------------------

    def execute(self, inputs: Optional[Dict[int, Any]] = None) -> Dict[int, Any]:
        """Evaluate the whole datapath once.

        Parameters
        ----------
        inputs:
            Values for *input* objects (overrides their evaluation) —
            how the preceding processor's data lands in memory blocks.

        Returns
        -------
        ``{object_id: value}`` for every node.
        """
        inputs = inputs or {}
        values: Dict[int, Any] = {}
        pending_consumers: Dict[int, int] = {}
        cycle = 0
        for node in self.topological_order():
            if node.object_id in inputs:
                node.value = inputs[node.object_id]
            else:
                node.value = node.logical.evaluate(
                    [values[s] for s in node.sources]
                )
            values[node.object_id] = node.value
            node.evaluated_at = cycle
            pending_consumers[node.object_id] = len(node.consumers)
            # fire release tokens to sources whose consumers all consumed
            for src in node.sources:
                pending_consumers[src] -= 1
                if pending_consumers[src] == 0:
                    self._nodes[src].released_at = cycle
            cycle += 1
        # sinks (no consumers) release as soon as they evaluate
        for node in self._nodes.values():
            if not node.consumers and node.released_at is None:
                node.released_at = node.evaluated_at
        return values

    def released_order(self) -> List[int]:
        """Object IDs sorted by release time — resources coming back to
        the pool, earliest first."""
        done = [n for n in self._nodes.values() if n.released_at is not None]
        return [n.object_id for n in sorted(done, key=lambda n: (n.released_at, n.object_id))]
