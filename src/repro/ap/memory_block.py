"""The memory block (paper Table 2, sections 2.5 and 3.3).

Table 2 decomposes a memory block into a 32-bit ALU-I (address
computation), four 16-bit ALU-IIs ("used for the vector length,
hardware-loop, and so on"), an instruction register ("used for a
sequencer object"), two 64-bit registers and a 64 KB SRAM.

Three behaviours the rest of the system needs are modelled:

* **storage** — bounds-checked word read/write over the 64 KB SRAM,
  partitioned into a *data* region and a *library* region (the object
  library of §2.5 "is loaded from the library in the memory blocks");
* **spill/fill** — §3.3: while a processor is inactive, "storing a
  global configuration data, storing objects into libraries, spilling
  and filling of data in the memory block are done in this state";
* **sequencing** — a vector-length/hardware-loop register pair driving
  a simple streaming address generator (what the ALU-IIs exist for).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.errors import CapacityError, ConfigurationError

__all__ = ["MemoryBlock", "AddressGenerator"]

#: Table 2 fixes the SRAM at 64 KB; the datapath is 64-bit, so 8K words.
SRAM_BYTES = 64 * 1024
WORD_BYTES = 8
SRAM_WORDS = SRAM_BYTES // WORD_BYTES


class MemoryBlock:
    """One memory block: 64 KB SRAM + sequencer state.

    Parameters
    ----------
    library_words:
        Words at the top of the SRAM reserved for the object library
        (logical-object images); the rest is application data.
    """

    def __init__(self, library_words: int = SRAM_WORDS // 4) -> None:
        if not 0 <= library_words <= SRAM_WORDS:
            raise CapacityError(
                f"library region must fit the {SRAM_WORDS}-word SRAM"
            )
        self.library_base = SRAM_WORDS - library_words
        self._words: List[int] = [0] * SRAM_WORDS
        # sequencer state (instruction register + ALU-II registers)
        self.instruction_register: Optional[str] = None
        self.vector_length = 0
        self.loop_count = 0
        self.reads = 0
        self.writes = 0

    # -- storage -----------------------------------------------------------

    @property
    def data_words(self) -> int:
        """Words available to application data."""
        return self.library_base

    @property
    def library_words(self) -> int:
        return SRAM_WORDS - self.library_base

    def read(self, address: int) -> int:
        """Read one 64-bit word.

        Raises
        ------
        CapacityError
            On an out-of-range address.
        """
        self._check(address)
        self.reads += 1
        return self._words[address]

    def write(self, address: int, value: int) -> None:
        """Write one 64-bit word (value truncated to 64 bits)."""
        self._check(address)
        self.writes += 1
        self._words[address] = value & (2**64 - 1)

    def _check(self, address: int) -> None:
        if not 0 <= address < SRAM_WORDS:
            raise CapacityError(
                f"address {address} outside the {SRAM_WORDS}-word SRAM"
            )

    # -- spill / fill (section 3.3) -------------------------------------------

    def fill(self, base: int, values: List[int]) -> None:
        """Bulk-store ``values`` starting at ``base`` (external fill while
        the owner is inactive)."""
        if base < 0 or base + len(values) > self.data_words:
            raise CapacityError(
                f"fill of {len(values)} words at {base} overruns the "
                f"{self.data_words}-word data region"
            )
        for i, v in enumerate(values):
            self.write(base + i, v)

    def spill(self, base: int, count: int) -> List[int]:
        """Bulk-read ``count`` words starting at ``base``."""
        if base < 0 or count < 0 or base + count > self.data_words:
            raise CapacityError(
                f"spill of {count} words at {base} overruns the "
                f"{self.data_words}-word data region"
            )
        return [self.read(base + i) for i in range(count)]

    # -- library region ---------------------------------------------------

    def store_object_image(self, slot: int, image: List[int]) -> None:
        """Store a logical-object image into library slot ``slot``
        (8 words per slot: operation, init data, configuration bits)."""
        base = self.library_base + slot * 8
        if base + 8 > SRAM_WORDS or slot < 0:
            raise CapacityError(f"library slot {slot} out of range")
        if len(image) > 8:
            raise ConfigurationError("object images are at most 8 words")
        for i in range(8):
            self.write(base + i, image[i] if i < len(image) else 0)

    def load_object_image(self, slot: int) -> List[int]:
        """Load a logical-object image from library slot ``slot``."""
        base = self.library_base + slot * 8
        if base + 8 > SRAM_WORDS or slot < 0:
            raise CapacityError(f"library slot {slot} out of range")
        return [self.read(base + i) for i in range(8)]

    @property
    def library_slots(self) -> int:
        return self.library_words // 8

    # -- sequencer (instruction register + ALU-IIs) ------------------------

    def program_sequencer(self, vector_length: int, loop_count: int = 1) -> None:
        """Set the vector-length / hardware-loop registers (ALU-II use)."""
        if vector_length < 1 or loop_count < 1:
            raise ConfigurationError("vector length and loop count are >= 1")
        self.vector_length = vector_length
        self.loop_count = loop_count
        self.instruction_register = f"stream v{vector_length} x{loop_count}"

    def address_stream(self, base: int = 0, stride: int = 1) -> "AddressGenerator":
        """An address generator over the programmed vector/loop shape."""
        if self.vector_length < 1:
            raise ConfigurationError("sequencer not programmed")
        return AddressGenerator(
            base=base,
            stride=stride,
            vector_length=self.vector_length,
            loop_count=self.loop_count,
            limit=self.data_words,
        )


@dataclass(frozen=True)
class AddressGenerator:
    """Streams SRAM addresses: ``loop_count`` passes over a
    ``vector_length``-element strided vector — the hardware-loop shape
    the ALU-IIs implement."""

    base: int
    stride: int
    vector_length: int
    loop_count: int
    limit: int

    def __iter__(self) -> Iterator[int]:
        for _ in range(self.loop_count):
            addr = self.base
            for _ in range(self.vector_length):
                if not 0 <= addr < self.limit:
                    raise CapacityError(
                        f"address {addr} leaves the data region"
                    )
                yield addr
                addr += self.stride

    def __len__(self) -> int:
        return self.vector_length * self.loop_count
