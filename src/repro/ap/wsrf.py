"""Working-set register file (paper sections 2.2, 2.6.1; Figure 1).

"Routing is performed during this pipeline stage using an acquirement
signal from special registers called a working-set register file (WSRF)
for maintain[ing] the acquired elements."  And for the scaled CSD model:
"Cache hit detection can be centrally processed on the WSRF instead of
searching in the array ... Searching in WSRFs can be performed in
parallel."

The WSRF holds one entry per member of the current working set: the
object ID, where it sits, and which communication port/channel its
acquirement signal granted.  Capacity follows Table 3's sizing
(64 b × 40 registers → 40 entries by default).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import CapacityError, ConfigurationError

__all__ = ["WSRFEntry", "WSRF"]

#: Table 3 sizes the WSRF at forty 64-bit registers.
DEFAULT_WSRF_ENTRIES = 40


@dataclass(frozen=True)
class WSRFEntry:
    """One acquired object: where it is and how it is reached."""

    object_id: int
    position: int
    channel: Optional[int] = None


class WSRF:
    """The working-set register file: parallel-searchable acquired set."""

    def __init__(self, capacity: int = DEFAULT_WSRF_ENTRIES) -> None:
        if capacity < 1:
            raise CapacityError("WSRF needs at least one entry")
        self.capacity = capacity
        self._entries: Dict[int, WSRFEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._entries

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    def lookup(self, object_id: int) -> Optional[WSRFEntry]:
        """The parallel search: hit detection without scanning the array."""
        return self._entries.get(object_id)

    def acquire(
        self, object_id: int, position: int, channel: Optional[int] = None
    ) -> WSRFEntry:
        """Record an acquirement (Figure 1 step 4).

        Raises
        ------
        CapacityError
            When the register file is full — the working set exceeded
            the WSRF sizing; the processor must release something first.
        """
        if object_id in self._entries:
            raise ConfigurationError(f"object {object_id} already acquired")
        if self.is_full:
            raise CapacityError(
                f"WSRF full ({self.capacity} entries); release an object first"
            )
        entry = WSRFEntry(object_id, position, channel)
        self._entries[object_id] = entry
        return entry

    def update_position(self, object_id: int, position: int) -> None:
        """Track an acquired object through a stack shift."""
        old = self._entries.get(object_id)
        if old is None:
            raise ConfigurationError(f"object {object_id} not acquired")
        self._entries[object_id] = WSRFEntry(object_id, position, old.channel)

    def release(self, object_id: int) -> None:
        """Drop an entry when the object's release token fires."""
        if object_id not in self._entries:
            raise ConfigurationError(f"object {object_id} not acquired")
        del self._entries[object_id]

    def working_set(self) -> List[WSRFEntry]:
        """Snapshot of all acquired entries (unspecified order)."""
        return list(self._entries.values())

    def parallel_search(self, object_ids: Tuple[int, ...]) -> Dict[int, bool]:
        """Hit/miss verdicts for a whole request at once — the parallel
        search of section 2.6.1."""
        return {oid: oid in self._entries for oid in object_ids}
