"""Process-technology scaling (ITRS roadmap nodes used in Table 4).

The paper evaluates the VLSI processor across the ITRS nodes 2010–2015
(45 nm down to 25 nm) on a constant 1 cm² die.  λ² module areas are
technology independent; a node only fixes the physical size of λ.

Calibration note (also recorded in DESIGN.md): back-solving the published
"Available # of APs" column of Table 4 against the AP area of
:func:`repro.costmodel.areas.ap_area` yields λ ≈ 0.40 × feature size at
every node (0.39–0.41), rather than the textbook λ = F/2.  The default
``LAMBDA_FACTOR`` is therefore 0.4; it is exposed as a parameter and its
sensitivity is covered by the λ-factor ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "LAMBDA_FACTOR",
    "ProcessNode",
    "ITRS_NODES",
    "node_for_year",
    "node_for_feature",
    "lambda_nm",
]

#: λ as a fraction of the node feature size (back-solved from Table 4).
LAMBDA_FACTOR = 0.4


@dataclass(frozen=True)
class ProcessNode:
    """One row of the ITRS roadmap as used by the paper.

    Attributes
    ----------
    year:
        Calendar year of the node (2010–2015 in Table 4).
    feature_nm:
        The node's feature size in nanometres (the paper's "Process" column).
    """

    year: int
    feature_nm: float

    def __post_init__(self) -> None:
        if self.feature_nm <= 0:
            raise ValueError("feature size must be positive")

    def lambda_nm(self, lambda_factor: float = LAMBDA_FACTOR) -> float:
        """Physical size of λ at this node, in nm."""
        if lambda_factor <= 0:
            raise ValueError("lambda factor must be positive")
        return lambda_factor * self.feature_nm

    def lambda2_per_cm2(self, lambda_factor: float = LAMBDA_FACTOR) -> float:
        """How many λ² fit one square centimetre at this node."""
        lam = self.lambda_nm(lambda_factor)
        return 1e14 / (lam * lam)  # 1 cm² = 1e14 nm²

    def scaled_area_cm2(
        self, area_lambda2: float, lambda_factor: float = LAMBDA_FACTOR
    ) -> float:
        """Physical area (cm²) of a λ²-normalised block at this node."""
        if area_lambda2 < 0:
            raise ValueError("area cannot be negative")
        return area_lambda2 / self.lambda2_per_cm2(lambda_factor)


#: The six nodes of Table 4, keyed by year.
ITRS_NODES: Dict[int, ProcessNode] = {
    2010: ProcessNode(2010, 45.0),
    2011: ProcessNode(2011, 40.0),
    2012: ProcessNode(2012, 36.0),
    2013: ProcessNode(2013, 32.0),
    2014: ProcessNode(2014, 28.0),
    2015: ProcessNode(2015, 25.0),
}


def node_for_year(year: int) -> ProcessNode:
    """Return the ITRS node for ``year`` (2010–2015).

    Raises
    ------
    KeyError
        If the year is outside the paper's evaluation window.
    """
    try:
        return ITRS_NODES[year]
    except KeyError:
        raise KeyError(
            f"no ITRS node for year {year}; the paper covers "
            f"{min(ITRS_NODES)}-{max(ITRS_NODES)}"
        ) from None


def node_for_feature(feature_nm: float) -> ProcessNode:
    """Return the roadmap node with the given feature size.

    Accepts any of the Table 4 feature sizes (45/40/36/32/28/25 nm);
    otherwise builds an ad-hoc node with ``year=0`` so custom what-if
    studies can reuse the same machinery.
    """
    for node in ITRS_NODES.values():
        if abs(node.feature_nm - feature_nm) < 1e-9:
            return node
    return ProcessNode(0, feature_nm)


def lambda_nm(feature_nm: float, lambda_factor: float = LAMBDA_FACTOR) -> float:
    """Convenience: physical λ (nm) for a feature size."""
    return node_for_feature(feature_nm).lambda_nm(lambda_factor)


def all_nodes() -> Tuple[ProcessNode, ...]:
    """All Table 4 nodes in year order."""
    return tuple(ITRS_NODES[y] for y in sorted(ITRS_NODES))


#: Post-paper nodes for the extension study: the industry roadmap as it
#: actually unfolded after the paper's 2015 horizon (nm "node names").
EXTENDED_NODES: Dict[int, ProcessNode] = {
    2017: ProcessNode(2017, 16.0),
    2019: ProcessNode(2019, 10.0),
    2021: ProcessNode(2021, 7.0),
    2023: ProcessNode(2023, 5.0),
}


def extended_roadmap() -> Tuple[ProcessNode, ...]:
    """Table 4's nodes plus the post-2015 extension, in year order.

    The paper's premise — "Thousands of compute and memory resources
    will be implementable on-chip in the near future" — is testable by
    running its own model forward; see the roadmap-extension bench.
    """
    merged = dict(ITRS_NODES)
    merged.update(EXTENDED_NODES)
    return tuple(merged[y] for y in sorted(merged))
