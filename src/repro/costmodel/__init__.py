"""Analytical cost and performance model (paper section 4).

This package reproduces the paper's cost assessment:

* :mod:`repro.costmodel.areas` — λ²-normalised area budgets for the
  physical object, memory block, and control objects (Tables 1–3).
* :mod:`repro.costmodel.technology` — ITRS process nodes 2010–2015 and the
  λ design-rule geometry.
* :mod:`repro.costmodel.wire_delay` — distributed-RC global-wire delay
  model calibrated against the ITRS-2007-derived delays of Table 4.
* :mod:`repro.costmodel.chip_budget` — how many adaptive processors fit a
  die (Table 4, "Available # of APs").
* :mod:`repro.costmodel.performance` — peak-GOPS model and the GPU area
  comparison discussed in section 4.1.
"""

from repro.costmodel.areas import (
    AreaItem,
    AreaBudget,
    physical_object_budget,
    memory_block_budget,
    control_objects_budget,
    ap_area,
    APComposition,
)
from repro.costmodel.technology import (
    ProcessNode,
    ITRS_NODES,
    node_for_year,
    lambda_nm,
)
from repro.costmodel.wire_delay import (
    WireParameters,
    ITRS2007_GLOBAL_WIRE,
    elmore_delay_s,
    global_wire_delay_ns,
    wire_length_um,
)
from repro.costmodel.chip_budget import ChipBudget, available_aps
from repro.costmodel.performance import (
    PerformancePoint,
    peak_gops,
    table4,
    gpu_area_comparison,
)

__all__ = [
    "AreaItem",
    "AreaBudget",
    "physical_object_budget",
    "memory_block_budget",
    "control_objects_budget",
    "ap_area",
    "APComposition",
    "ProcessNode",
    "ITRS_NODES",
    "node_for_year",
    "lambda_nm",
    "WireParameters",
    "ITRS2007_GLOBAL_WIRE",
    "elmore_delay_s",
    "global_wire_delay_ns",
    "wire_length_um",
    "ChipBudget",
    "available_aps",
    "PerformancePoint",
    "peak_gops",
    "table4",
    "gpu_area_comparison",
]
