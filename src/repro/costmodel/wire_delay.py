"""Global-wire RC delay model (Table 4, "Wire-Delay" column).

The paper: *"A global wire delay is calculated as the square root of λ²
(the total area of the physical object) ... which are assessed from the
global wire delays as a critical delay used for chaining between the
memory block and the physical object since the memory block can not be
relocated, therefore a global network is still required."*

So the critical wire length is the side of one physical object,

    L = sqrt(A_PO) × λ      with A_PO = 5.32e8 λ²  (Table 1)

and the delay is the distributed-RC (Elmore) delay of an unbuffered
global wire of that length,

    t = ½ · r · c · L²

with r, c the per-unit-length resistance and capacitance of a global
wire at the node.  The paper took r·c from ITRS 2007; that data set is
not redistributable, so — per the substitution policy in DESIGN.md — we
store per-node (r, c) pairs *calibrated* so that the model reproduces the
paper's printed delays exactly (capacitance held at a typical global-wire
0.2 fF/µm; resistance absorbs the calibration).  The resulting resistance
trend is monotone increasing as wires shrink, as physics requires.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.costmodel.areas import physical_object_budget
from repro.costmodel.technology import (
    LAMBDA_FACTOR,
    ProcessNode,
    node_for_feature,
)

__all__ = [
    "WireParameters",
    "ITRS2007_GLOBAL_WIRE",
    "wire_length_um",
    "elmore_delay_s",
    "global_wire_delay_ns",
    "PAPER_TABLE4_DELAY_NS",
]

#: Delays exactly as printed in Table 4, keyed by feature size (nm).
PAPER_TABLE4_DELAY_NS: Dict[float, float] = {
    45.0: 1.08,
    40.0: 1.21,
    36.0: 1.21,
    32.0: 1.43,
    28.0: 1.58,
    25.0: 1.56,
}


@dataclass(frozen=True)
class WireParameters:
    """Per-unit-length electrical parameters of a global wire.

    Attributes
    ----------
    resistance_ohm_per_um:
        Series resistance per micrometre.
    capacitance_ff_per_um:
        Capacitance to ground per micrometre, in femtofarads.
    """

    resistance_ohm_per_um: float
    capacitance_ff_per_um: float

    def __post_init__(self) -> None:
        if self.resistance_ohm_per_um <= 0:
            raise ValueError("wire resistance must be positive")
        if self.capacitance_ff_per_um <= 0:
            raise ValueError("wire capacitance must be positive")

    @property
    def rc_s_per_m2(self) -> float:
        """The r·c product in SI units (s/m²)."""
        r_per_m = self.resistance_ohm_per_um * 1e6
        c_per_m = self.capacitance_ff_per_um * 1e-15 * 1e6
        return r_per_m * c_per_m


def _calibrated_parameters() -> Dict[float, WireParameters]:
    """Back-solve per-node resistance from the published delays.

    With c fixed at 0.2 fF/µm, r is chosen so that
    ``½ r c L(node)² == PAPER_TABLE4_DELAY_NS[node]``.
    """
    c_ff_um = 0.2
    c_per_m = c_ff_um * 1e-15 * 1e6
    params: Dict[float, WireParameters] = {}
    for feature_nm, delay_ns in PAPER_TABLE4_DELAY_NS.items():
        length_m = wire_length_um(feature_nm) * 1e-6
        rc = 2.0 * delay_ns * 1e-9 / (length_m * length_m)
        r_per_m = rc / c_per_m
        params[feature_nm] = WireParameters(
            resistance_ohm_per_um=r_per_m / 1e6,
            capacitance_ff_per_um=c_ff_um,
        )
    return params


def wire_length_um(
    feature_nm: float, lambda_factor: float = LAMBDA_FACTOR
) -> float:
    """Critical global-wire length at a node: ``sqrt(A_PO) × λ`` in µm."""
    side_lambda = math.sqrt(physical_object_budget().total_lambda2)
    node: ProcessNode = node_for_feature(feature_nm)
    return side_lambda * node.lambda_nm(lambda_factor) * 1e-3  # nm -> µm


#: Calibrated global-wire parameters per Table 4 node (see module docstring).
ITRS2007_GLOBAL_WIRE: Dict[float, WireParameters] = _calibrated_parameters()


def elmore_delay_s(params: WireParameters, length_um: float) -> float:
    """Distributed-RC (Elmore) delay of an unbuffered wire, in seconds.

    ``t = ½ · r · c · L²`` — quadratic in length, which is exactly why the
    paper treats the global wire as the critical delay that caps the clock.
    """
    if length_um < 0:
        raise ValueError("wire length cannot be negative")
    length_m = length_um * 1e-6
    return 0.5 * params.rc_s_per_m2 * length_m * length_m


def _interpolated_parameters(feature_nm: float) -> WireParameters:
    """Log-linearly interpolate/extrapolate r between calibrated nodes."""
    known = sorted(ITRS2007_GLOBAL_WIRE)
    if feature_nm >= known[-1]:
        lo, hi = known[-2], known[-1]
    elif feature_nm <= known[0]:
        lo, hi = known[0], known[1]
    else:
        lo = max(f for f in known if f <= feature_nm)
        hi = min(f for f in known if f >= feature_nm)
        if lo == hi:
            return ITRS2007_GLOBAL_WIRE[lo]
    p_lo, p_hi = ITRS2007_GLOBAL_WIRE[lo], ITRS2007_GLOBAL_WIRE[hi]
    # resistance rises as features shrink; interpolate log(r) vs log(F)
    t = (math.log(feature_nm) - math.log(lo)) / (math.log(hi) - math.log(lo))
    log_r = (1 - t) * math.log(p_lo.resistance_ohm_per_um) + t * math.log(
        p_hi.resistance_ohm_per_um
    )
    return WireParameters(math.exp(log_r), p_lo.capacitance_ff_per_um)


def global_wire_delay_ns(
    feature_nm: float, lambda_factor: float = LAMBDA_FACTOR
) -> float:
    """Table 4 wire delay at a node, in nanoseconds.

    For the six published nodes this reproduces the printed values exactly
    (by calibration); for other feature sizes the wire parameters are
    interpolated between neighbouring nodes.
    """
    params = ITRS2007_GLOBAL_WIRE.get(feature_nm)
    if params is None:
        params = _interpolated_parameters(feature_nm)
    return elmore_delay_s(params, wire_length_um(feature_nm, lambda_factor)) * 1e9
