"""Die-area budgeting: how many adaptive processors fit a chip.

Reproduces the "Available # of APs" column of Table 4: a constant 1 cm²
die is filled with APs of the default composition (16 physical objects +
16 memory blocks + control objects, ≈2.419e10 λ²), and the count is the
floor of the area ratio at each node's λ.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.costmodel.areas import APComposition, ap_area
from repro.costmodel.technology import LAMBDA_FACTOR, ProcessNode, node_for_feature

__all__ = ["ChipBudget", "available_aps", "PAPER_TABLE4_APS", "DEFAULT_DIE_AREA_CM2"]

#: AP counts exactly as printed in Table 4, keyed by feature size (nm).
PAPER_TABLE4_APS = {45.0: 12, 40.0: 16, 36.0: 21, 32.0: 24, 28.0: 34, 25.0: 41}

#: "The silicon die area is held constant at 1 cm² which is ordinary chip area."
DEFAULT_DIE_AREA_CM2 = 1.0


@dataclass(frozen=True)
class ChipBudget:
    """Area budget of one die at one process node.

    Parameters
    ----------
    die_area_cm2:
        Total silicon area.  The paper holds this at 1 cm².
    composition:
        Resource mix of one AP (see :class:`repro.costmodel.areas.APComposition`).
    lambda_factor:
        λ as a fraction of feature size (0.4 by calibration; see DESIGN.md).
    utilization:
        Fraction of die area usable for APs; 1.0 matches the paper, lower
        values model routing/IO overheads for what-if studies.
    """

    die_area_cm2: float = DEFAULT_DIE_AREA_CM2
    composition: APComposition = field(default_factory=APComposition)
    lambda_factor: float = LAMBDA_FACTOR
    utilization: float = 1.0

    def __post_init__(self) -> None:
        if self.die_area_cm2 <= 0:
            raise ValueError("die area must be positive")
        if not 0 < self.utilization <= 1:
            raise ValueError("utilization must be in (0, 1]")

    def die_area_lambda2(self, node: ProcessNode) -> float:
        """Usable die area expressed in λ² at the given node."""
        return (
            self.die_area_cm2
            * self.utilization
            * node.lambda2_per_cm2(self.lambda_factor)
        )

    def aps(self, node: ProcessNode) -> int:
        """Number of whole APs that fit the die at ``node``."""
        return int(math.floor(self.die_area_lambda2(node) / ap_area(self.composition)))

    def physical_objects(self, node: ProcessNode) -> int:
        """Total compute (physical) objects on the die at ``node``."""
        return self.aps(node) * self.composition.n_physical_objects

    def leftover_lambda2(self, node: ProcessNode) -> float:
        """Die area (λ²) left after packing whole APs — never negative."""
        return self.die_area_lambda2(node) - self.aps(node) * ap_area(self.composition)


def available_aps(
    feature_nm: float,
    die_area_cm2: float = DEFAULT_DIE_AREA_CM2,
    composition: APComposition | None = None,
    lambda_factor: float = LAMBDA_FACTOR,
) -> int:
    """Convenience wrapper: AP count at a feature size (Table 4 column 3)."""
    budget = ChipBudget(
        die_area_cm2=die_area_cm2,
        composition=composition or APComposition(),
        lambda_factor=lambda_factor,
    )
    return budget.aps(node_for_feature(feature_nm))
