"""Peak-performance model (Table 4, "Peak GOPS" column) and §4.1 analysis.

Back-derivation recorded in DESIGN.md: the printed GOPS values satisfy

    GOPS = N_AP × N_PO-per-AP × (1 / wire_delay_ns)

at every node to within 3 % — i.e. the global-wire delay is taken as the
cycle time, every physical object retires one 64-bit operation per cycle,
and load/store streams are excluded ("peak GOPS values excluding the load
and store streams").  The model here exposes those as explicit knobs so
the FPU/memory-ratio ablation of §4.1 ("more GOPS is available if we
optimize for more FPUs and less memory blocks") is a one-liner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.costmodel.areas import APComposition
from repro.costmodel.chip_budget import ChipBudget, DEFAULT_DIE_AREA_CM2
from repro.costmodel.technology import (
    LAMBDA_FACTOR,
    ProcessNode,
    all_nodes,
    node_for_feature,
)
from repro.costmodel.wire_delay import global_wire_delay_ns

__all__ = [
    "PerformancePoint",
    "peak_gops",
    "table4",
    "gpu_area_comparison",
    "PAPER_TABLE4_GOPS",
]

#: Peak GOPS exactly as printed in Table 4, keyed by feature size (nm).
PAPER_TABLE4_GOPS = {45.0: 178, 40.0: 211, 36.0: 276, 32.0: 269, 28.0: 345, 25.0: 432}


@dataclass(frozen=True)
class PerformancePoint:
    """One row of Table 4 as produced by this model."""

    year: int
    feature_nm: float
    available_aps: int
    wire_delay_ns: float
    peak_gops: float

    @property
    def clock_ghz(self) -> float:
        """Implied clock frequency: the reciprocal of the wire delay."""
        return 1.0 / self.wire_delay_ns

    @property
    def total_physical_objects(self) -> int:
        """Compute objects on the die (16 per AP for the default mix)."""
        # peak_gops = objects * clock, so objects = gops / clock
        return round(self.peak_gops * self.wire_delay_ns)


def peak_gops(
    n_aps: int,
    wire_delay_ns: float,
    composition: Optional[APComposition] = None,
    ops_per_object_per_cycle: float = 1.0,
) -> float:
    """Peak GOPS of ``n_aps`` adaptive processors clocked at 1/wire-delay.

    Parameters mirror the back-derived Table 4 model; ``ops_per_object_per_cycle``
    stays 1.0 for the paper's "pure 64 bit ... without both of SIMD features
    and fused operations" figure.
    """
    if n_aps < 0:
        raise ValueError("AP count cannot be negative")
    if wire_delay_ns <= 0:
        raise ValueError("wire delay must be positive")
    comp = composition or APComposition()
    objects = n_aps * comp.n_physical_objects
    return objects * ops_per_object_per_cycle / wire_delay_ns


def table4(
    die_area_cm2: float = DEFAULT_DIE_AREA_CM2,
    composition: Optional[APComposition] = None,
    lambda_factor: float = LAMBDA_FACTOR,
    nodes: Optional[Iterable[ProcessNode]] = None,
) -> List[PerformancePoint]:
    """Regenerate Table 4: one :class:`PerformancePoint` per roadmap node.

    With all defaults this reproduces the published table — AP counts within
    ±2, wire delays exactly (calibrated), GOPS within ~5 %.
    """
    comp = composition or APComposition()
    budget = ChipBudget(
        die_area_cm2=die_area_cm2, composition=comp, lambda_factor=lambda_factor
    )
    rows: List[PerformancePoint] = []
    for node in nodes if nodes is not None else all_nodes():
        delay = global_wire_delay_ns(node.feature_nm, lambda_factor)
        n_aps = budget.aps(node)
        rows.append(
            PerformancePoint(
                year=node.year,
                feature_nm=node.feature_nm,
                available_aps=n_aps,
                wire_delay_ns=delay,
                peak_gops=peak_gops(n_aps, delay, comp),
            )
        )
    return rows


def effective_gops(
    useful_ops: int,
    cycles: int,
    wire_delay_ns: float,
    n_objects: int = 16,
) -> dict:
    """Effective vs peak performance for one measured execution.

    Section 2 motivates the AP with the peak/effective gap: "The larger
    scale of a many-core processor will easily result in a larger gap
    between the peak and effective performances".  Given a workload that
    retired ``useful_ops`` operations in ``cycles`` cycles on
    ``n_objects`` compute objects clocked at ``1/wire_delay_ns``:

    * ``effective`` — useful ops per second actually achieved,
    * ``peak`` — what the same silicon could retire flat out,
    * ``efficiency`` — their ratio.
    """
    if useful_ops < 0 or cycles < 0:
        raise ValueError("ops and cycles cannot be negative")
    if wire_delay_ns <= 0 or n_objects < 1:
        raise ValueError("need a positive clock and object count")
    clock_ghz = 1.0 / wire_delay_ns
    peak = n_objects * clock_ghz
    if cycles == 0:
        return {"effective_gops": 0.0, "peak_gops": peak, "efficiency": 0.0}
    effective = (useful_ops / cycles) * clock_ghz
    return {
        "effective_gops": effective,
        "peak_gops": peak,
        "efficiency": effective / peak,
    }


def gpu_area_comparison(feature_nm: float = 36.0) -> dict:
    """§4.1 text: "The VLSI processor is competitive with traditional GPUs,
    which takes at least three-times the area.  We obtained three-times
    number of FPUs and memory blocks on this area size, although a delay
    negates the clock cycle time improvement."

    Returns the VLSI-processor resources on 1 cm² and on a GPU-sized
    (3 cm²) die at the given node, for the comparison bench.
    """
    node = node_for_feature(feature_nm)
    small = ChipBudget(die_area_cm2=1.0)
    large = ChipBudget(die_area_cm2=3.0)
    comp = APComposition()
    delay = global_wire_delay_ns(feature_nm)
    return {
        "feature_nm": feature_nm,
        "vlsi_1cm2_fpus": small.aps(node) * comp.n_physical_objects,
        "vlsi_3cm2_fpus": large.aps(node) * comp.n_physical_objects,
        "fpu_ratio": (
            large.aps(node) / small.aps(node) if small.aps(node) else float("nan")
        ),
        "wire_delay_ns": delay,
        "gops_1cm2": peak_gops(small.aps(node), delay, comp),
        "gops_3cm2": peak_gops(large.aps(node), delay, comp),
    }
