"""λ²-normalised area budgets (paper Tables 1, 2 and 3).

The paper costs every building block in units of λ² — the technology-
independent area measure of lambda-based design rules — using the module
estimates of Gupta et al. (UT Austin TR-00-05) plus divider weights
estimated from Govindaraju et al. (HPCA 2011).  Because λ² areas are
technology independent, the same budget is reused at every process node;
only the physical size of λ changes (see :mod:`repro.costmodel.technology`).

Three budgets are published:

* **Physical object** (Table 1) — the general-purpose compute fabric of one
  processing element: 64-bit FP multiply/add, FP divide, integer
  multiply + ALU/shift, integer divide, and six 64-bit registers.
  Total 5.32e8 λ².
* **Memory block** (Table 2) — a 32-bit ALU-I, four 16-bit ALU-IIs (vector
  length, hardware loop, ...), instruction register, two 64-bit registers
  and a 64 KB SRAM.  Total 9.75e8 λ², "approximately twice the area of the
  physical object".
* **Control objects** (Table 3) — registers only: the working-set register
  file (WSRF), cache-miss handler (CMH), request registers (RR), individual
  request registers (IRR) and configuration-buffer registers (CFB).
  Total 75.2e6 λ².
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Tuple

__all__ = [
    "AreaItem",
    "AreaBudget",
    "PHYSICAL_OBJECT_ITEMS",
    "MEMORY_BLOCK_ITEMS",
    "CONTROL_OBJECT_ITEMS",
    "physical_object_budget",
    "memory_block_budget",
    "control_objects_budget",
    "APComposition",
    "ap_area",
    "PAPER_TABLE1_TOTAL",
    "PAPER_TABLE2_TOTAL",
    "PAPER_TABLE3_TOTAL",
]

#: Totals exactly as printed in the paper, for regression checks.
PAPER_TABLE1_TOTAL = 5.32e8
PAPER_TABLE2_TOTAL = 9.75e8
PAPER_TABLE3_TOTAL = 75.2e6


@dataclass(frozen=True)
class AreaItem:
    """One row of an area table.

    Attributes
    ----------
    name:
        Module name as printed in the paper (e.g. ``"64b fMul, fAdd"``).
    reference_process_um:
        The feature size (µm) of the process the reference estimate was
        characterised at.  Informational only — the λ² value itself is
        technology independent.
    area_lambda2:
        Module area in λ².
    """

    name: str
    reference_process_um: float
    area_lambda2: float

    def __post_init__(self) -> None:
        if self.area_lambda2 <= 0:
            raise ValueError(f"area of {self.name!r} must be positive")
        if self.reference_process_um <= 0:
            raise ValueError(f"reference process of {self.name!r} must be positive")


@dataclass(frozen=True)
class AreaBudget:
    """An ordered collection of :class:`AreaItem` rows with a total.

    Mirrors one of the paper's area tables; iterating yields the rows in
    table order.
    """

    title: str
    items: Tuple[AreaItem, ...] = field(default_factory=tuple)

    def __iter__(self) -> Iterator[AreaItem]:
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    @property
    def total_lambda2(self) -> float:
        """Sum of all row areas, in λ²."""
        return float(sum(item.area_lambda2 for item in self.items))

    def fraction(self, *names: str) -> float:
        """Fraction of the budget taken by the named rows.

        Raises
        ------
        KeyError
            If a name does not match any row.
        """
        by_name = {item.name: item for item in self.items}
        selected = 0.0
        for name in names:
            if name not in by_name:
                raise KeyError(f"no row named {name!r} in {self.title!r}")
            selected += by_name[name].area_lambda2
        return selected / self.total_lambda2

    def scaled(self, factor: float, title: str | None = None) -> "AreaBudget":
        """Return a new budget with every row scaled by ``factor``.

        Used by the FPU/memory-ratio ablation to cost hypothetical
        alternative datapaths.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return AreaBudget(
            title=title or f"{self.title} (x{factor:g})",
            items=tuple(
                AreaItem(i.name, i.reference_process_um, i.area_lambda2 * factor)
                for i in self.items
            ),
        )

    def rows(self) -> Iterable[Tuple[str, float, float]]:
        """Yield ``(name, reference_process_um, area_lambda2)`` per row."""
        for item in self.items:
            yield item.name, item.reference_process_um, item.area_lambda2


# --- Table 1: Physical Object Area Requirement -----------------------------

PHYSICAL_OBJECT_ITEMS: Tuple[AreaItem, ...] = (
    AreaItem("64b fMul, fAdd", 0.25, 1.35e8),
    AreaItem("64b fDiv", 0.25, 0.21e8),
    AreaItem("64b iMul + iALU/Shift", 0.25, 2.90e8),
    AreaItem("64b iDiv", 0.25, 0.81e8),
    AreaItem("64b Register x6", 0.25, 5.36e6),
)

# --- Table 2: Memory Block Area Requirement ---------------------------------

MEMORY_BLOCK_ITEMS: Tuple[AreaItem, ...] = (
    AreaItem("32b ALU-I", 0.25, 0.86e8),
    AreaItem("16b ALU-II x4", 0.21, 1.72e8),
    AreaItem("Instruction Reg.", 0.25, 1.79e6),
    AreaItem("64b Register x2", 0.25, 1.79e6),
    AreaItem("64KB SRAM", 0.35, 7.13e8),
)

# --- Table 3: Control Objects Area Requirement ------------------------------

CONTROL_OBJECT_ITEMS: Tuple[AreaItem, ...] = (
    AreaItem("64b x40 Reg. in WSRF", 0.25, 35.7e6),
    AreaItem("64b x6 Reg. in CMH", 0.25, 5.36e6),
    AreaItem("64b x8 Reg. x2 in RR", 0.25, 14.3e6),
    AreaItem("64b Reg. in IRR x16", 0.25, 14.3e6),
    AreaItem("64b x2 Reg. in CFB x3", 0.25, 5.36e6),
)


def physical_object_budget() -> AreaBudget:
    """Table 1 — the compute fabric of one physical object (~5.32e8 λ²)."""
    return AreaBudget("Physical Object Area Requirement", PHYSICAL_OBJECT_ITEMS)


def memory_block_budget() -> AreaBudget:
    """Table 2 — one memory block with 64 KB SRAM (~9.75e8 λ²)."""
    return AreaBudget("Memory Block Area Requirement", MEMORY_BLOCK_ITEMS)


def control_objects_budget() -> AreaBudget:
    """Table 3 — per-AP control registers (~75.2e6 λ²)."""
    return AreaBudget("Control Objects Area Requirement", CONTROL_OBJECT_ITEMS)


@dataclass(frozen=True)
class APComposition:
    """Resource mix of one adaptive processor.

    The paper's Table 4 uses 16 physical objects and 16 memory objects per
    AP ("APs having 16 physical objects and 16 memory objects"), plus one
    set of control objects.  Section 4.1 notes the mix is a design knob —
    "more GOPS is available if we optimize for more FPUs and less memory
    blocks" — so both counts are parameters here.
    """

    n_physical_objects: int = 16
    n_memory_blocks: int = 16

    def __post_init__(self) -> None:
        if self.n_physical_objects < 1:
            raise ValueError("an AP needs at least one physical object")
        if self.n_memory_blocks < 0:
            raise ValueError("memory-block count cannot be negative")

    @property
    def compute_to_memory_ratio(self) -> float:
        """Area ratio physical:memory; the paper quotes roughly 1:2."""
        po = self.n_physical_objects * physical_object_budget().total_lambda2
        mb = self.n_memory_blocks * memory_block_budget().total_lambda2
        if mb == 0:
            return float("inf")
        return po / mb


def ap_area(composition: APComposition | None = None) -> float:
    """Total λ² area of one adaptive processor.

    ``16×PO + 16×MB + control ≈ 2.419e10 λ²`` for the paper's default
    composition.
    """
    comp = composition or APComposition()
    return (
        comp.n_physical_objects * physical_object_budget().total_lambda2
        + comp.n_memory_blocks * memory_block_budget().total_lambda2
        + control_objects_budget().total_lambda2
    )
