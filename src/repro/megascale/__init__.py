"""Mega-scale (N = 1024-4096) vectorized kernels.

The paper's Figure 3 stops at N = 256; pushing the same experiments an
order of magnitude further needs the protocol cold path off Python
object graphs and onto flat numpy arrays.  This package holds:

* :mod:`repro.megascale.kernel` — the span-array CSD protocol kernel
  (:class:`VectorCSDKernel`) and its telemetry-bearing drop-in network
  twin (:class:`VectorCSDNetwork`);
* :mod:`repro.megascale.noc_kernel` — the closed-form schedule of a
  solo configuration worm (pure math, consulted by the router network's
  express delivery path);
* :mod:`repro.megascale.bench` — the live-vs-vector identity +
  speedup measurement backing ``BENCH_megascale.json``.

Everything here is held to the repo's byte-identity contract: a vector
result that differs from the live simulator in any observable — grants,
blocks, eviction order, telemetry counters — is a bug, and the
hypothesis lockstep suite in ``tests/megascale/`` enforces it.
"""

from repro.megascale.bench import measure_kernel_speedup
from repro.megascale.kernel import VectorCSDKernel, VectorCSDNetwork
from repro.megascale.noc_kernel import WormSchedule, worm_schedule

__all__ = [
    "VectorCSDKernel",
    "VectorCSDNetwork",
    "WormSchedule",
    "worm_schedule",
    "measure_kernel_speedup",
]
