"""Vectorized CSD protocol kernel for mega-scale arrays (N = 1024-4096).

The live protocol (:class:`repro.csd.dynamic_csd.DynamicCSDNetwork`)
models every channel as a Python object holding a dict of ``Span``
dataclasses; one connect request scans every channel's occupant list.
That per-object stepping is what makes Figure 3 intractable at 16x the
paper's largest size.  This kernel keeps the *same protocol semantics*
on flat numpy arrays instead:

* the pool's occupancy is three parallel arrays — ``lo[i]``, ``hi[i]``,
  ``ch[i]`` — one entry per live span (plus ``owner[i]``, the connection
  token), growing by doubling;
* the broadcast of one request ``[lo, hi)`` is a single vectorized
  overlap test ``(lo_i < hi) & (hi_i > lo)`` scattered into a per-channel
  ``busy`` mask; the priority encoder's first-fit grant is
  ``busy.argmin()`` (numpy's argmin returns the *first* minimum — the
  lowest free channel, exactly the hardware's priority encoder);
* a stack shift adds ``amount`` to the ``lo``/``hi`` columns at once and
  compacts away the rows pushed off the bottom, reporting evictions in
  the live network's order (ascending channel, insertion order within a
  channel).

Everything observable matches the live simulator bit-for-bit — grants,
blocks, eviction order, ``occupancy_state()``, ``segment_demand()`` —
which the hypothesis lockstep property in
``tests/megascale/test_kernel.py`` drives directly, the same
cross-validation pattern ``engine/routes.py`` uses.

:class:`VectorCSDKernel` is the bare array machine (no telemetry — the
sweep engine's cold path calls it in a tight loop);
:class:`VectorCSDNetwork` wraps it into a drop-in for
``DynamicCSDNetwork`` with the identical counter/event surface.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import telemetry
from repro.errors import ChannelAllocationError
from repro.csd.channels import Span
from repro.csd.dynamic_csd import Connection

__all__ = ["VectorCSDKernel", "VectorCSDNetwork", "VectorSampler"]

#: Initial span-table capacity (rows); the table doubles as needed.
_INITIAL_CAPACITY = 64


class VectorCSDKernel:
    """Span-array occupancy machine for one ``(n_channels, n_segments)``
    geometry.  Owners are integer tokens chosen by the caller (or drawn
    from an internal counter when omitted)."""

    def __init__(self, n_channels: int, n_segments: int) -> None:
        if n_channels < 1:
            raise ValueError("need at least one channel")
        if n_segments < 1:
            raise ValueError("need at least one segment")
        self.n_channels = n_channels
        self.n_segments = n_segments
        cap = _INITIAL_CAPACITY
        self._lo = np.empty(cap, dtype=np.int64)
        self._hi = np.empty(cap, dtype=np.int64)
        self._ch = np.empty(cap, dtype=np.int64)
        self._owner = np.empty(cap, dtype=np.int64)
        self._n = 0  # live rows; rows stay in insertion order
        self._busy = np.empty(n_channels, dtype=bool)
        self._auto_owner = itertools.count()

    # -- growth -------------------------------------------------------------

    def _grow_to(self, min_capacity: int) -> None:
        cap = len(self._lo)
        if min_capacity <= cap:
            return
        while cap < min_capacity:
            cap *= 2
        for name in ("_lo", "_hi", "_ch", "_owner"):
            old = getattr(self, name)
            grown = np.empty(cap, dtype=np.int64)
            grown[: self._n] = old[: self._n]
            setattr(self, name, grown)

    def _ensure_capacity(self) -> None:
        self._grow_to(self._n + 1)

    # -- the protocol -------------------------------------------------------

    def _busy_mask(self, lo: int, hi: int) -> np.ndarray:
        """Per-channel mask: True where some live span overlaps [lo, hi)."""
        busy = self._busy
        busy[:] = False
        n = self._n
        if n:
            overlap = self._lo[:n] < hi
            np.logical_and(overlap, self._hi[:n] > lo, out=overlap)
            busy[self._ch[:n][overlap]] = True
        return busy

    def _check_span(self, lo: int, hi: int) -> None:
        if lo < 0:
            raise ValueError("span cannot start below segment 0")
        if hi <= lo:
            raise ValueError(f"empty or inverted span [{lo}, {hi})")

    def first_free(self, lo: int, hi: int) -> Optional[int]:
        """The priority-encoder grant for ``[lo, hi)`` — the lowest
        channel the broadcast survives on — or ``None`` when blocked."""
        self._check_span(lo, hi)
        if hi > self.n_segments:
            # the live pool reports no free channel for a span that runs
            # off the array (is_span_free is False on every channel)
            return None
        busy = self._busy_mask(lo, hi)
        granted = int(busy.argmin())  # first False == lowest free channel
        return None if busy[granted] else granted

    def survivors(self, lo: int, hi: int) -> List[int]:
        """Every channel the broadcast survives on, ascending — the
        ``free_channels_for`` twin (input to the fault filter)."""
        self._check_span(lo, hi)
        if hi > self.n_segments:
            return []
        busy = self._busy_mask(lo, hi)
        return [int(c) for c in np.flatnonzero(~busy)]

    def occupy(
        self, channel: int, lo: int, hi: int, owner: Optional[int] = None
    ) -> int:
        """Claim ``[lo, hi)`` on ``channel`` for ``owner``; returns the
        owner token.  The caller must have established the span is free
        (via :meth:`first_free` / :meth:`survivors`)."""
        if owner is None:
            owner = next(self._auto_owner)
        self._ensure_capacity()
        i = self._n
        self._lo[i] = lo
        self._hi[i] = hi
        self._ch[i] = channel
        self._owner[i] = owner
        self._n = i + 1
        return owner

    def grant(
        self, lo: int, hi: int, owner: Optional[int] = None
    ) -> Optional[int]:
        """One full request: broadcast, first-fit grant, occupy.  Returns
        the granted channel, or ``None`` when every channel is busy on
        the span (the caller counts the block)."""
        granted = self.first_free(lo, hi)
        if granted is not None:
            self.occupy(granted, lo, hi, owner)
        return granted

    def _broadcast_masks(self) -> List[int]:
        """Current occupancy as one segment-bitmask integer per channel,
        trimmed to the highest used channel (channels past the end of
        the list are known idle).  Bit ``s`` of ``masks[c]`` is set when
        some live span on channel ``c`` covers segment ``s`` — the
        request broadcast of Figure 2 as machine words."""
        n = self._n
        top = int(self._ch[:n].max()) + 1 if n else 0
        masks = [0] * top
        for i in range(n):
            masks[int(self._ch[i])] |= (1 << int(self._hi[i])) - (
                1 << int(self._lo[i])
            )
        return masks

    def grant_many(self, spans) -> List[Optional[int]]:
        """Resolve a whole sequence of ``(lo, hi)`` requests in order.

        The grants, occupancy growth, and owner sequence are identical to
        ``[self.grant(lo, hi) for lo, hi in spans]``; the one semantic
        difference is that span validation runs up front, so a malformed
        span raises *before* any request is applied.

        The request loop runs on segment-bitmask integers instead of the
        span table: one request is one mask ``(1 << hi) - (1 << lo)``,
        one channel's broadcast test is a single word-parallel ``AND``,
        and the first-fit scan stops at the first idle word — so the scan
        is bounded by the *used* channel count, not the provisioned one.
        (A first-fit grant beyond the highest used channel must land
        exactly there, which is why the trimmed mask list of
        :meth:`_broadcast_masks` loses nothing.)  The span table is
        batch-appended at the end, keeping it the single source of truth
        for :meth:`shift` / :meth:`release` / the statistics surface.
        """
        spans = [(int(lo), int(hi)) for lo, hi in spans]
        for lo, hi in spans:
            if lo < 0:
                raise ValueError("span cannot start below segment 0")
            if hi <= lo:
                raise ValueError(f"empty or inverted span [{lo}, {hi})")
        out: List[Optional[int]] = []
        append = out.append
        n_seg = self.n_segments
        nch = self.n_channels
        occ = self._broadcast_masks()
        grow = occ.append
        grants: List[Tuple[int, int, int]] = []
        for lo, hi in spans:
            if hi > n_seg:
                append(None)
                continue
            m = (1 << hi) - (1 << lo)
            g = -1
            for c, o in enumerate(occ):
                if not (o & m):
                    g = c
                    break
            else:
                if len(occ) < nch:
                    g = len(occ)
                    grow(0)
            if g < 0:
                append(None)
            else:
                occ[g] |= m
                grants.append((lo, hi, g))
                append(g)
        k = len(grants)
        if k:
            n0 = self._n
            self._grow_to(n0 + k)
            self._lo[n0 : n0 + k] = [t[0] for t in grants]
            self._hi[n0 : n0 + k] = [t[1] for t in grants]
            self._ch[n0 : n0 + k] = [t[2] for t in grants]
            next_owner = self._auto_owner.__next__
            self._owner[n0 : n0 + k] = [next_owner() for _ in range(k)]
            self._n = n0 + k
        return out

    def release(self, owner: int) -> None:
        """Release ``owner``'s span (the release-token path).

        Raises
        ------
        ChannelAllocationError
            When ``owner`` holds nothing.
        """
        n = self._n
        matches = np.flatnonzero(self._owner[:n] == owner)
        if len(matches) == 0:
            raise ChannelAllocationError(f"owner {owner!r} holds nothing")
        self._compact(np.delete(np.arange(n), matches))

    def shift(self, amount: int) -> List[int]:
        """Stack-shift every span ``amount`` positions down; evict spans
        pushed off the bottom (shifted ``hi`` beyond ``n_segments``).

        Returns the evicted owners in the live network's order:
        ascending channel index, insertion order within a channel —
        exactly what ``ChannelPool`` iteration + ``Channel.shift_all``
        produces.
        """
        if amount < 0:
            raise ValueError("the stack only shifts top -> bottom")
        n = self._n
        if amount == 0 or n == 0:
            return []
        self._lo[:n] += amount
        self._hi[:n] += amount
        evict = self._hi[:n] > self.n_segments
        if not evict.any():
            return []
        rows = np.flatnonzero(evict)
        # rows are in insertion order; a stable sort by channel yields
        # (channel asc, insertion order within channel)
        ordered = rows[np.argsort(self._ch[rows], kind="stable")]
        evicted = [int(o) for o in self._owner[ordered]]
        self._compact(np.flatnonzero(~evict))
        return evicted

    def _compact(self, keep_rows: np.ndarray) -> None:
        """Retain only ``keep_rows`` (ascending), preserving insertion
        order — the row order *is* each channel's occupation order."""
        m = len(keep_rows)
        for name in ("_lo", "_hi", "_ch", "_owner"):
            arr = getattr(self, name)
            arr[:m] = arr[keep_rows]
        self._n = m

    # -- statistics (all bit-compatible with the live network) --------------

    def span_count(self) -> int:
        return self._n

    def used_channels(self) -> int:
        n = self._n
        return int(len(np.unique(self._ch[:n]))) if n else 0

    def highest_used_channel(self) -> int:
        n = self._n
        return int(self._ch[:n].max()) + 1 if n else 0

    def occupancy_state(self) -> Tuple[Tuple[Tuple[int, int], ...], ...]:
        """Canonical pool occupancy, identical to
        :meth:`repro.csd.dynamic_csd.DynamicCSDNetwork.occupancy_state`."""
        n = self._n
        per_channel: List[List[Tuple[int, int]]] = [
            [] for _ in range(self.n_channels)
        ]
        for i in range(n):
            per_channel[int(self._ch[i])].append(
                (int(self._lo[i]), int(self._hi[i]))
            )
        return tuple(tuple(sorted(spans)) for spans in per_channel)

    def segment_demand(self) -> List[int]:
        """Channels occupying each segment position (difference array +
        prefix sum, identical to ``ChannelPool.segment_demand``)."""
        n = self._n
        diff = np.zeros(self.n_segments + 1, dtype=np.int64)
        if n:
            np.add.at(diff, self._lo[:n], 1)
            np.add.at(diff, self._hi[:n], -1)
        return [int(v) for v in np.cumsum(diff[:-1])]

    def channel_occupancy(self) -> List[int]:
        """Occupied-segment count per channel index."""
        n = self._n
        counts = np.zeros(self.n_channels, dtype=np.int64)
        if n:
            np.add.at(counts, self._ch[:n], self._hi[:n] - self._lo[:n])
        return [int(v) for v in counts]


class VectorSampler:
    """Derives the live :class:`~repro.telemetry.observe.Sampler`'s CSD
    fabric probes from a trial's flat grant log instead of a live network.

    The live Figure-3 trial ticks a sampler once per chaining request and,
    at every ``stride``-aligned cycle, snapshots ``segment_demand()`` /
    ``channel_occupancy()`` (one heatmap column each) plus the
    used-channel count (a time-series sample).  Both probes are pure
    functions of *which spans have been granted so far* — blocked
    requests never touch occupancy — so a grant log of
    ``(cycle, lo, hi, channel)`` rows in grant order reconstructs every
    probe reading exactly:

    * segment demand is the difference array of the applied spans
      (``np.add.at`` on ``lo``/``hi`` + prefix sum), the same formula
      ``ChannelPool.segment_demand`` and :meth:`VectorCSDKernel.segment_demand`
      share;
    * channel occupancy is ``hi - lo`` scattered per granted channel;
    * the used-channel count is the number of channels with at least one
      applied span.

    :meth:`replay` walks the sample cycles in ascending order, applies the
    grants that landed since the previous sample (``np.searchsorted`` on
    the log's cycle column), and emits the identical ``record()``/``add()``
    calls in the identical order (series first, then segment rows
    ``s0..s{S-1}``, then channel rows ``ch0..ch{C-1}``) — so ring-buffer
    eviction and heatmap cell-cap ``dropped`` tallies also match the live
    path byte for byte.  The lockstep property in
    ``tests/megascale/test_vector_observation.py`` drives this identity.
    """

    __slots__ = ("n_segments", "n_channels", "stride", "samples_taken")

    def __init__(self, n_segments: int, n_channels: int, stride: int) -> None:
        if n_segments < 1:
            raise ValueError("need at least one segment")
        if n_channels < 1:
            raise ValueError("need at least one channel")
        if stride < 1:
            raise ValueError("stride must be at least one cycle")
        self.n_segments = n_segments
        self.n_channels = n_channels
        self.stride = stride
        self.samples_taken = 0

    def replay(
        self,
        cycles: np.ndarray,
        lo: np.ndarray,
        hi: np.ndarray,
        ch: np.ndarray,
        n_cycles: int,
        segment_heatmap,
        channel_heatmap,
        series=None,
    ) -> None:
        """Emit every stride-aligned sample in ``[stride, n_cycles]``.

        ``cycles`` must be non-decreasing (grant order); ``segment_heatmap``
        / ``channel_heatmap`` take ``add(row, cycle, value)`` and ``series``
        (optional) takes ``record(cycle, value)`` — the
        :class:`~repro.telemetry.observe.Heatmap` / ``TimeSeries`` surface.
        """
        seg_rows = [f"s{i}" for i in range(self.n_segments)]
        ch_rows = [f"ch{i}" for i in range(self.n_channels)]
        diff = np.zeros(self.n_segments + 1, dtype=np.int64)
        occ = np.zeros(self.n_channels, dtype=np.int64)
        spans_per_ch = np.zeros(self.n_channels, dtype=np.int64)
        used = 0
        applied = 0
        for cycle in range(self.stride, n_cycles + 1, self.stride):
            upto = int(np.searchsorted(cycles, cycle, side="right"))
            if upto > applied:
                sl = slice(applied, upto)
                np.add.at(diff, lo[sl], 1)
                np.add.at(diff, hi[sl], -1)
                np.add.at(occ, ch[sl], hi[sl] - lo[sl])
                for granted in ch[sl]:
                    g = int(granted)
                    if spans_per_ch[g] == 0:
                        used += 1
                    spans_per_ch[g] += 1
                applied = upto
            if series is not None:
                series.record(cycle, float(used))
            demand = np.cumsum(diff[:-1])
            for i, row in enumerate(seg_rows):
                segment_heatmap.add(row, cycle, int(demand[i]))
            for i, row in enumerate(ch_rows):
                channel_heatmap.add(row, cycle, int(occ[i]))
            self.samples_taken += 1


class VectorCSDNetwork:
    """Drop-in twin of :class:`repro.csd.dynamic_csd.DynamicCSDNetwork`
    running on a :class:`VectorCSDKernel`.

    Same constructor, same protocol methods, same exceptions, same
    counters and events (``csd.connect.*``, ``csd.block``, ``csd.shifts``,
    ``csd.shift.evictions``, ``csd.disconnects``), same
    :class:`Connection` records with the same id sequence.  The one
    deliberate gap: no tracer spans — the vector path exists for
    *untraced* mega-scale sweeps, and the engine never routes traced runs
    through it (tracing forces the live simulator).
    """

    def __init__(
        self,
        n_objects: int,
        n_channels: Optional[int] = None,
        faults=None,
        fault_domain: str = "csd",
    ) -> None:
        if n_objects < 2:
            raise ValueError("the array needs at least two objects")
        if n_channels is None:
            n_channels = max(1, n_objects // 2)
        if n_channels < 1:
            raise ValueError("need at least one channel")
        self.n_objects = n_objects
        self.n_channels = n_channels
        self.faults = faults
        self.fault_domain = fault_domain
        self._kernel = VectorCSDKernel(n_channels, n_objects - 1)
        self._connections: Dict[int, Connection] = {}
        self._ids = itertools.count()

    # -- the Figure 2 protocol ----------------------------------------------

    def connect(self, source: int, sink: int) -> Connection:
        return self.connect_fanout(source, (sink,))

    def connect_fanout(self, source: int, sinks: Tuple[int, ...]) -> Connection:
        if not sinks:
            raise ValueError("fan-out needs at least one sink")
        for pos in (source, *sinks):
            if not 0 <= pos < self.n_objects:
                raise ValueError(
                    f"position {pos} outside array of {self.n_objects}"
                )
        if source in sinks:
            raise ValueError("source cannot be its own sink")
        lo = min(source, *sinks)
        hi = max(source, *sinks)

        telemetry.counter("csd.connect.requests").inc()
        if self.faults is not None:
            surviving = self._kernel.survivors(lo, hi)
            healthy = self.faults.filter_csd_channels(
                surviving, lo, hi, domain=self.fault_domain
            )
            if len(healthy) < len(surviving):
                telemetry.counter("csd.connect.fault_drops").inc(
                    len(surviving) - len(healthy)
                )
            granted = healthy[0] if healthy else None
        else:
            granted = self._kernel.first_free(lo, hi)
        if granted is None:
            telemetry.counter("csd.connect.blocks").inc()
            telemetry.event("csd.block", lo=lo, hi=hi)
            raise ChannelAllocationError(
                f"no free channel for span [{lo},{hi}) "
                f"({self.n_channels} channels provisioned)"
            )
        conn_id = next(self._ids)
        self._kernel.occupy(granted, lo, hi, conn_id)
        telemetry.counter("csd.connect.grants").inc()
        conn = Connection(conn_id, granted, source, tuple(sinks), Span(lo, hi))
        self._connections[conn_id] = conn
        return conn

    def disconnect(self, conn: Connection) -> None:
        if conn.conn_id not in self._connections:
            raise ChannelAllocationError(f"unknown connection {conn.conn_id}")
        self._kernel.release(conn.conn_id)
        del self._connections[conn.conn_id]
        telemetry.counter("csd.disconnects").inc()

    # -- stack shift ---------------------------------------------------------

    def stack_shift(self, amount: int = 1) -> List[Connection]:
        if amount < 0:
            raise ValueError("the stack only shifts top -> bottom")
        if amount == 0:
            return []
        telemetry.counter("csd.shifts").inc()
        evicted = [
            self._connections.pop(owner) for owner in self._kernel.shift(amount)
        ]
        if evicted:
            telemetry.counter("csd.shift.evictions").inc(len(evicted))
            telemetry.instant(
                "csd.shift.evictions", amount=amount, count=len(evicted)
            )
        for conn_id, conn in list(self._connections.items()):
            self._connections[conn_id] = Connection(
                conn_id,
                conn.channel,
                conn.source + amount,
                tuple(s + amount for s in conn.sinks),
                conn.span.shifted(amount),
            )
        return evicted

    # -- statistics ----------------------------------------------------------

    @property
    def connections(self) -> Tuple[Connection, ...]:
        return tuple(self._connections.values())

    def used_channels(self) -> int:
        return self._kernel.used_channels()

    def highest_used_channel(self) -> int:
        return self._kernel.highest_used_channel()

    def occupancy_state(self) -> Tuple[Tuple[Tuple[int, int], ...], ...]:
        return self._kernel.occupancy_state()

    # -- observation probes --------------------------------------------------

    def segment_demand(self) -> List[int]:
        return self._kernel.segment_demand()

    def channel_occupancy(self) -> List[int]:
        return self._kernel.channel_occupancy()
