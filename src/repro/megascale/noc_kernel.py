"""Closed-form schedule of a single wormhole worm on an idle XY grid.

A configuration worm travelling alone through a pristine router network
is fully deterministic: no contention, no faults, no virtual-channel
competition.  Its cycle-level behaviour collapses to arithmetic in the
hop count ``h``, the flit count ``nf``, and the per-router input-queue
capacity ``qcap``:

* with queue room (``qcap >= 2``) — or a zero-hop worm, which ejects
  straight from its own source router — the worm pipelines perfectly:
  one flit ejects per cycle once the head arrives, so flit ``i`` ejects
  at cycle ``h + i`` and nothing ever stalls;
* with single-slot queues (``qcap == 1``) and at least one hop, a body
  flit can only advance into a slot that is *already* empty when its
  router commits — and the simulator commits routers in row-major
  order, so whether the slot vacated this same cycle is visible depends
  on the route's direction through the grid.  Worst case (routes toward
  higher row-major coordinates) is strict stop-and-wait: flit ``i``
  ejects at ``h + 2*i`` with ``nf - 1`` stalls; best case (decreasing
  routes) pipelines like ``qcap >= 2``.  Because the outcome depends on
  an iteration-order detail rather than protocol state, the schedule
  reports itself :attr:`WormSchedule.exact` = False there and callers
  fall back to cycle stepping.

In the exact regimes every flit makes exactly ``h + 1`` movements
(``h`` link traversals plus the ejection), and the network needs one
extra cycle after the last ejection to observe it has drained.

The exact-regime formulas are cross-validated against the live
:class:`repro.noc.network.RouterNetwork` over every (src, dst) pair of a
6x6 grid x flit counts x queue capacities; the identity test grid lives
in ``tests/megascale/test_noc_kernel.py``.  This module is pure math —
no simulator imports — so the network can consult it lazily without a
layering cycle.
"""

from __future__ import annotations

from typing import Tuple

__all__ = ["WormSchedule", "worm_schedule"]


class WormSchedule:
    """The deterministic timeline of one solo worm (all values are
    cycle offsets from the injection cycle)."""

    __slots__ = ("hops", "n_flits", "eject_step", "delivered_at",
                 "drain_at", "flit_moves", "stalls", "exact")

    def __init__(self, hops: int, n_flits: int, qcap: int) -> None:
        self.hops = hops
        self.n_flits = n_flits
        #: Whether this schedule is guaranteed bit-identical to cycle
        #: stepping.  Single-slot queues with a multi-flit, multi-hop
        #: worm are route-direction-dependent (see the module docstring)
        #: and must run on the live simulator.
        self.exact = qcap >= 2 or n_flits == 1 or hops == 0
        #: Cycles between consecutive ejections (2 iff single-slot
        #: queues force the worst-case stop-and-wait regime).
        self.eject_step = 2 if (qcap == 1 and hops >= 1) else 1
        #: Cycle offset at which the tail flit ejects.
        self.delivered_at = hops + self.eject_step * (n_flits - 1)
        #: Cycle offset at which ``run_until_drained`` stops (one idle
        #: cycle past the last ejection).
        self.drain_at = self.delivered_at + 1
        #: Total flit movements: every flit hops ``h`` links + 1 eject.
        self.flit_moves = n_flits * (hops + 1)
        #: Stall observations (body flits waiting on single-slot queues).
        self.stalls = (n_flits - 1) if self.eject_step == 2 else 0

    def eject_offsets(self) -> Tuple[int, ...]:
        """Cycle offset of each flit's ejection, in flit order."""
        return tuple(
            self.hops + self.eject_step * i for i in range(self.n_flits)
        )


def worm_schedule(
    src: Tuple[int, int], dst: Tuple[int, int], n_flits: int, qcap: int
) -> WormSchedule:
    """Schedule a worm of ``n_flits`` flits from ``src`` to ``dst`` under
    XY routing with per-router queue capacity ``qcap``."""
    if n_flits < 1:
        raise ValueError("a worm needs at least one flit")
    if qcap < 1:
        raise ValueError("queue capacity must be positive")
    hops = abs(src[0] - dst[0]) + abs(src[1] - dst[1])
    return WormSchedule(hops, n_flits, qcap)
