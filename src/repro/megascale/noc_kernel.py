"""Closed-form schedule of a single wormhole worm on an idle XY grid.

A configuration worm travelling alone through a pristine router network
is fully deterministic: no contention, no faults, no virtual-channel
competition.  Its cycle-level behaviour collapses to arithmetic in the
hop count ``h``, the flit count ``nf``, and the per-router input-queue
capacity ``qcap``:

* with queue room (``qcap >= 2``) — or a zero-hop worm, which ejects
  straight from its own source router — the worm pipelines perfectly:
  one flit ejects per cycle once the head arrives, so flit ``i`` ejects
  at cycle ``h + i`` and nothing ever stalls;
* with single-slot queues (``qcap == 1``) and at least one hop, a body
  flit can only advance into a slot that is *already* empty when its
  router commits — and the simulator commits routers in row-major
  order, so whether the slot vacated this same cycle is visible depends
  on the route's direction through the grid.  Worst case (routes toward
  higher row-major coordinates) is strict stop-and-wait: flit ``i``
  ejects at ``h + 2*i`` with ``nf - 1`` stalls; best case (decreasing
  routes) pipelines like ``qcap >= 2``.  Because the outcome depends on
  an iteration-order detail rather than protocol state, the schedule
  reports itself :attr:`WormSchedule.exact` = False there and callers
  fall back to cycle stepping.

In the exact regimes every flit makes exactly ``h + 1`` movements
(``h`` link traversals plus the ejection), and the network needs one
extra cycle after the last ejection to observe it has drained.

The exact-regime formulas are cross-validated against the live
:class:`repro.noc.network.RouterNetwork` over every (src, dst) pair of a
6x6 grid x flit counts x queue capacities; the identity test grid lives
in ``tests/megascale/test_noc_kernel.py``.  This module is pure math —
no simulator imports — so the network can consult it lazily without a
layering cycle.
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = ["WormSchedule", "worm_schedule"]


class WormSchedule:
    """The deterministic timeline of one solo worm (all values are
    cycle offsets from the injection cycle)."""

    __slots__ = ("hops", "n_flits", "qcap", "eject_step", "delivered_at",
                 "drain_at", "flit_moves", "stalls", "exact")

    def __init__(self, hops: int, n_flits: int, qcap: int) -> None:
        self.hops = hops
        self.n_flits = n_flits
        self.qcap = qcap
        #: Whether this schedule is guaranteed bit-identical to cycle
        #: stepping.  Single-slot queues with a multi-flit, multi-hop
        #: worm are route-direction-dependent (see the module docstring)
        #: and must run on the live simulator.
        self.exact = qcap >= 2 or n_flits == 1 or hops == 0
        #: Cycles between consecutive ejections (2 iff single-slot
        #: queues force the worst-case stop-and-wait regime).
        self.eject_step = 2 if (qcap == 1 and hops >= 1) else 1
        #: Cycle offset at which the tail flit ejects.
        self.delivered_at = hops + self.eject_step * (n_flits - 1)
        #: Cycle offset at which ``run_until_drained`` stops (one idle
        #: cycle past the last ejection).
        self.drain_at = self.delivered_at + 1
        #: Total flit movements: every flit hops ``h`` links + 1 eject.
        self.flit_moves = n_flits * (hops + 1)
        #: Stall observations (body flits waiting on single-slot queues).
        self.stalls = (n_flits - 1) if self.eject_step == 2 else 0

    def eject_offsets(self) -> Tuple[int, ...]:
        """Cycle offset of each flit's ejection, in flit order."""
        return tuple(
            self.hops + self.eject_step * i for i in range(self.n_flits)
        )

    def queue_depths(self, t: int) -> Dict[int, int]:
        """End-of-step queue depths along the route at local step ``t``
        (1-based; the stepped simulator samples after step ``t``'s
        commits), keyed by route position — 0 is the source router,
        ``1..hops`` the successive XY-route routers.  Positions holding
        zero flits are omitted.

        Only valid in the :attr:`exact` regimes, where the worm pipelines
        with one departure per step:

        * the source queue refills from the inject backlog to ``qcap`` at
          the start of each step and loses one flit per step while flits
          remain, so its end-of-step depth is
          ``min(qcap, n_flits - (t - 1)) - 1`` for ``t <= n_flits``
          (zero afterwards);
        * flit ``i`` (0-based) departs the source during step ``i + 1``
          and advances one position per step, so it sits at position
          ``p`` exactly at the end of step ``t = i + p`` — route position
          ``p`` therefore holds one flit iff ``p <= t <= p + n_flits - 1``
          (at most one: two flits at one position would need equal
          ``i + p`` with distinct ``p``).

        Cross-validated against the stepped simulator's
        ``buffer_depths()`` by the sampled-express identity test in
        ``tests/megascale/test_noc_kernel.py``.
        """
        if not self.exact:
            raise ValueError(
                "queue depths are closed-form only for exact schedules"
            )
        depths: Dict[int, int] = {}
        if 1 <= t <= self.n_flits:
            src_depth = min(self.qcap, self.n_flits - (t - 1)) - 1
            if src_depth > 0:
                depths[0] = src_depth
        for pos in range(1, self.hops + 1):
            if pos <= t <= pos + self.n_flits - 1:
                depths[pos] = 1
        return depths


def worm_schedule(
    src: Tuple[int, int], dst: Tuple[int, int], n_flits: int, qcap: int
) -> WormSchedule:
    """Schedule a worm of ``n_flits`` flits from ``src`` to ``dst`` under
    XY routing with per-router queue capacity ``qcap``."""
    if n_flits < 1:
        raise ValueError("a worm needs at least one flit")
    if qcap < 1:
        raise ValueError("queue capacity must be positive")
    hops = abs(src[0] - dst[0]) + abs(src[1] - dst[1])
    return WormSchedule(hops, n_flits, qcap)
