"""Cold-path speedup measurement: vector kernel vs. the live protocol.

The claim the megascale work rests on is that
:class:`~repro.megascale.kernel.VectorCSDKernel` resolves the *same*
request sequence to the *same* grants as the live
:class:`~repro.csd.dynamic_csd.DynamicCSDNetwork`, only flat-array fast.
This module measures exactly that claim: identical seeded workloads are
resolved once by each backend, the per-attempt grant sequences are
compared element-for-element, and the wallclock ratio is reported.

Scope note: the workload *generation* (seeded rejection sampling on one
PCG64 stream) is interleaved and data-dependent, so it cannot be
vectorized bit-identically and is deliberately excluded from both sides
of the timing — the measured quantity is the protocol resolution cost,
which is what dominates a Figure-3 trial at mega-scale N.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

from repro.csd.dynamic_csd import DynamicCSDNetwork
from repro.csd.locality import LocalityWorkload
from repro.errors import ChannelAllocationError
from repro.megascale.kernel import VectorCSDKernel

__all__ = ["measure_kernel_speedup"]


def _attempt_spans(requests) -> List[Tuple[int, int]]:
    """The (lo, hi) spans of a trial's connect attempts, in attempt order."""
    spans: List[Tuple[int, int]] = []
    for req in requests:
        for source in req.sources:
            if source == req.sink:  # cannot happen by construction
                continue
            spans.append(
                (source, req.sink) if source < req.sink
                else (req.sink, source)
            )
    return spans


def _resolve_live(
    n_objects: int, spans: List[Tuple[int, int]]
) -> List[Optional[int]]:
    net = DynamicCSDNetwork(n_objects, n_channels=n_objects)
    grants: List[Optional[int]] = []
    for lo, hi in spans:
        try:
            grants.append(net.connect(lo, hi).channel)
        except ChannelAllocationError:
            grants.append(None)
    return grants


def _resolve_vector(
    n_objects: int, spans: List[Tuple[int, int]]
) -> List[Optional[int]]:
    kern = VectorCSDKernel(n_objects, n_objects - 1)
    return kern.grant_many(spans)


def measure_kernel_speedup(
    n_objects: int = 256,
    localities: Tuple[float, ...] = (1.0, 0.5, 0.0),
    n_trials: int = 3,
    seed: int = 42,
) -> Dict[str, Any]:
    """Resolve identical workloads on both backends and compare.

    Returns a dict with the deterministic identity verdict
    (``identical``: every grant of every trial equal) and the wallclock
    ratio ``kernel_speedup`` = live seconds / vector seconds.
    """
    trial_spans: List[Tuple[int, List[Tuple[int, int]]]] = []
    for locality in localities:
        for trial in range(n_trials):
            workload = LocalityWorkload(
                n_objects, locality, seed=seed + 1000 * trial
            )
            trial_spans.append((n_objects, _attempt_spans(workload.requests())))

    t0 = time.perf_counter()
    live_grants = [_resolve_live(n, spans) for n, spans in trial_spans]
    live_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    vector_grants = [_resolve_vector(n, spans) for n, spans in trial_spans]
    kernel_s = time.perf_counter() - t0

    return {
        "n_objects": n_objects,
        "localities": list(localities),
        "trials_per_locality": n_trials,
        "attempts": sum(len(spans) for _, spans in trial_spans),
        "identical": live_grants == vector_grants,
        "live_s": live_s,
        "kernel_s": kernel_s,
        "kernel_speedup": (live_s / kernel_s) if kernel_s > 0 else float("inf"),
    }
