"""Exception hierarchy for the VLSI-processor reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch the whole library with one ``except`` clause while still
being able to discriminate the architectural layer that failed.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "CapacityError",
    "RoutingError",
    "ChannelAllocationError",
    "TopologyError",
    "RegionError",
    "StateTransitionError",
    "AllocationConflictError",
    "DefectError",
    "FaultInjectionError",
    "RetryExhaustedError",
    "StreamFormatError",
    "SimulationError",
    "PlannerError",
    "ServiceError",
    "AdmissionError",
    "QuotaError",
    "ProtocolError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An object/datapath configuration request is malformed or impossible."""


class CapacityError(ReproError):
    """A datapath or working set exceeds the capacity ``C`` of the array.

    The paper (section 2.5) requires streaming datapaths to be no larger
    than the stack capacity, since streaming forbids swapping out part of
    the configured datapath.
    """


class RoutingError(ReproError):
    """A route could not be established on the on-chip network."""


class ChannelAllocationError(ReproError):
    """The dynamic CSD network ran out of channels for a chaining request."""


class TopologyError(ReproError):
    """A fabric/topology construction or query is invalid."""


class RegionError(TopologyError):
    """A requested region of clusters is unusable (disconnected, occupied,
    not contiguous in the folded linear order, ...)."""


class StateTransitionError(ReproError):
    """An illegal processor-lifecycle transition was attempted.

    Legal transitions follow Figure 6(e): release -> inactive -> active
    <-> sleep, and active/inactive -> release.
    """


class AllocationConflictError(ReproError):
    """A wormhole reconfiguration hit a reservation flag held by another
    in-flight scaling operation (section 3.3)."""


class DefectError(ReproError):
    """A defective resource was used, or defect handling failed."""


class FaultInjectionError(DefectError):
    """An injected fault (segment, switch, link, or flit) corrupted a
    protocol step.  Raised by the fault hooks in the reconfiguration
    paths; the :mod:`repro.faults.recovery` layer treats it as
    retryable."""


class RetryExhaustedError(DefectError):
    """Bounded retry-with-backoff gave up: the fault persisted through
    every allowed attempt.  Carries the per-attempt history so campaign
    reports can tell transient-survived from permanently-degraded."""

    def __init__(
        self, message: str, attempts: int = 0, backoff_cycles: int = 0
    ) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.backoff_cycles = backoff_cycles


class StreamFormatError(ReproError):
    """A global configuration data stream element is malformed."""


class SimulationError(ReproError):
    """A simulator reached an inconsistent state (deadlock, livelock,
    exhausted cycle budget)."""


class PlannerError(ReproError):
    """A reconfiguration planner was asked for an impossible plan (unknown
    mode, demand that no feasible schedule satisfies, or a plan executed
    against a fabric that no longer matches its snapshot)."""


class ServiceError(ReproError):
    """Base class for the fabric-as-a-service layer (repro.service)."""


class AdmissionError(ServiceError):
    """Admission control refused a tenant: the die has no free shard of
    the requested scale, the requested shard slot overlaps a resident
    tenant, or the tenant cap is reached."""


class QuotaError(ServiceError):
    """A tenant's request would exceed its admitted quota (clusters,
    processors, or mailbox slots)."""


class ProtocolError(ServiceError):
    """A service request frame is malformed: bad length prefix, invalid
    JSON, or a message missing the required envelope fields."""
