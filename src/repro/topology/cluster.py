"""The replicated S-topology cluster (paper Figure 4(b)).

"The cluster ... is simply replicated" — it is the unit of scaling: a
cluster holds enough compute and memory objects to form a *minimum
adaptive processor* ("The segmentation of the interconnection network is
to prepare a set of minimum adaptive processor having sufficient
resources").  Figure 4(b) shows compute objects, memory objects and a
system object; Table 4's AP composition fixes the default counts at 16
compute (physical) objects and 16 memory objects per minimum AP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional, Tuple

from repro.errors import DefectError

__all__ = ["ClusterResources", "Cluster"]


@dataclass(frozen=True)
class ClusterResources:
    """Object counts inside one cluster.

    The defaults mirror the Table 4 minimum AP: 16 physical objects and
    16 memory objects, plus the single system object of Figure 4(b) that
    hosts the control plane (WSRF & co.).
    """

    compute_objects: int = 16
    memory_objects: int = 16
    system_objects: int = 1

    def __post_init__(self) -> None:
        if self.compute_objects < 1:
            raise ValueError("a cluster needs at least one compute object")
        if self.memory_objects < 0:
            raise ValueError("memory-object count cannot be negative")
        if self.system_objects < 1:
            raise ValueError("a cluster needs a system object")

    @property
    def total_objects(self) -> int:
        return self.compute_objects + self.memory_objects + self.system_objects


@dataclass
class Cluster:
    """One grid cell of the S-topology.

    Attributes
    ----------
    coord:
        ``(row, col)`` grid position.
    resources:
        Object counts (see :class:`ClusterResources`).
    owner:
        Token of the processor currently owning this cluster, or ``None``
        when the cluster is in the *release* pool.
    defective:
        ``True`` once a defect has been detected; defective clusters are
        excluded from allocation ("the failing AP can be removed from the
        system", section 1).
    """

    coord: Tuple[int, int]
    resources: ClusterResources = field(default_factory=ClusterResources)
    owner: Optional[Hashable] = None
    defective: bool = False

    @property
    def row(self) -> int:
        return self.coord[0]

    @property
    def col(self) -> int:
        return self.coord[1]

    @property
    def is_free(self) -> bool:
        """Free = unowned and not defective."""
        return self.owner is None and not self.defective

    def allocate(self, owner: Hashable) -> None:
        """Assign this cluster to a processor.

        Raises
        ------
        DefectError
            If the cluster is defective.
        ValueError
            If it is already owned by someone else.
        """
        if self.defective:
            raise DefectError(f"cluster {self.coord} is defective")
        if self.owner is not None and self.owner != owner:
            raise ValueError(
                f"cluster {self.coord} already owned by {self.owner!r}"
            )
        self.owner = owner

    def free(self) -> None:
        """Return the cluster to the release pool."""
        self.owner = None

    def mark_defective(self) -> None:
        """Record a defect; the cluster drops out of future allocations."""
        self.defective = True
        self.owner = None
