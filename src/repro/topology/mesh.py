"""Baseline 2-D mesh topology (paper section 5 comparator).

"a mesh topology has recently become a popular alternative ... very
simple and completely scalable and relocatable.  It also has an abundant
bisection bandwidth.  Though it has the freedom of placement, a host
system has to manage the placement, routing, replacement, and
defragmentation."

This comparator exposes the quantities that discussion turns on: hop
latency, diameter, bisection width, and the *host-managed placement*
cost, so the topology-baseline ablation bench can put numbers next to
the qualitative claims.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import TopologyError
from repro.topology.metrics import bisection_width, manhattan

__all__ = ["MeshTopology"]

Coord = Tuple[int, int]


class MeshTopology:
    """An ``rows × cols`` mesh of tiles with XY (dimension-ordered) routing."""

    def __init__(self, rows: int, cols: int) -> None:
        if rows < 1 or cols < 1:
            raise TopologyError("mesh needs positive dimensions")
        self.rows = rows
        self.cols = cols

    @property
    def n_tiles(self) -> int:
        return self.rows * self.cols

    def hops(self, src: Coord, dst: Coord) -> int:
        """XY-routing hop count — equals the Manhattan distance."""
        self._check(src)
        self._check(dst)
        return manhattan(src, dst)

    def xy_route(self, src: Coord, dst: Coord) -> List[Coord]:
        """The dimension-ordered route: correct the column first, then the row."""
        self._check(src)
        self._check(dst)
        path = [src]
        r, c = src
        step = 1 if dst[1] > c else -1
        while c != dst[1]:
            c += step
            path.append((r, c))
        step = 1 if dst[0] > r else -1
        while r != dst[0]:
            r += step
            path.append((r, c))
        return path

    def diameter(self) -> int:
        """Corner-to-corner hop count."""
        return (self.rows - 1) + (self.cols - 1)

    def bisection_width(self) -> int:
        return bisection_width(self.rows, self.cols)

    def host_placement_cost(self, n_tasks: int) -> int:
        """A proxy for the host-side management burden section 5 points at:
        placing ``n_tasks`` tasks needs at least one host decision per task
        (placement) plus one per occupied tile on replacement — O(n) work
        *off-fabric*, whereas the S-topology's stack placement is free
        ("the placement is always on the top of the stack").
        """
        if n_tasks < 0:
            raise ValueError("task count cannot be negative")
        return 2 * n_tasks

    def _check(self, coord: Coord) -> None:
        r, c = coord
        if not (0 <= r < self.rows and 0 <= c < self.cols):
            raise TopologyError(f"{coord} outside {self.rows}x{self.cols} mesh")
