"""Programmable switches (paper Figure 6(b), 6(c) and section 3.2/3.3).

Two switch flavours exist on the S-topology:

* a **unidirectional** switch on the stack-shift interconnection network
  (the stack only ever shifts from the top toward the bottom), and
* a **bidirectional** switch on the chain interconnection network (the
  dynamic CSD channels can carry traffic both ways).

Each switch is controlled by a *programming register* — storing a value
into the register chains or unchains the segments the switch joins.  The
default state is **unchained** ("The default status of programmable
switches is a 'unchained'").

Wormhole reconfiguration (section 3.3) additionally "store[s] a
reservation flag at each programmable switch to avoid a resource
(cluster) allocation conflict among the scaling configurations"; the flag
lives here as :attr:`ProgrammableSwitch.reserved_by`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Hashable, Optional, Tuple

from repro.errors import AllocationConflictError

__all__ = [
    "SwitchState",
    "ProgrammableSwitch",
    "UnidirectionalSwitch",
    "BidirectionalSwitch",
]


class SwitchState(enum.Enum):
    """Programming-register value of a switch segment."""

    UNCHAINED = 0
    CHAINED = 1


@dataclass
class ProgrammableSwitch:
    """A chain/unchain switch between two fabric endpoints.

    Parameters
    ----------
    endpoints:
        The two things this switch can join — typically a pair of cluster
        coordinates.  Order matters for unidirectional switches (traffic
        flows ``endpoints[0] -> endpoints[1]``).
    bidirectional:
        ``True`` for chain-network switches, ``False`` for stack-shift
        switches.
    """

    endpoints: Tuple[Hashable, Hashable]
    bidirectional: bool = False
    state: SwitchState = SwitchState.UNCHAINED
    #: Owner token of the in-flight scaling operation holding this switch,
    #: or ``None`` when free.  See section 3.3 (wormhole reservation).
    reserved_by: Optional[Hashable] = field(default=None)

    # -- programming register -------------------------------------------

    def program(self, state: SwitchState) -> None:
        """Store ``state`` into the programming register."""
        if not isinstance(state, SwitchState):
            raise TypeError("state must be a SwitchState")
        self.state = state

    def chain(self) -> None:
        """Program the switch to CHAINED."""
        self.program(SwitchState.CHAINED)

    def unchain(self) -> None:
        """Program the switch back to its default UNCHAINED state."""
        self.program(SwitchState.UNCHAINED)

    @property
    def is_chained(self) -> bool:
        return self.state is SwitchState.CHAINED

    # -- direction ---------------------------------------------------------

    def passes(self, src: Hashable, dst: Hashable) -> bool:
        """Whether a chained switch lets traffic flow ``src -> dst``.

        An unchained switch passes nothing; a unidirectional switch only
        passes in its forward orientation.
        """
        if not self.is_chained:
            return False
        if (src, dst) == self.endpoints:
            return True
        if self.bidirectional and (dst, src) == self.endpoints:
            return True
        return False

    # -- wormhole reservation flag ------------------------------------------

    @property
    def is_reserved(self) -> bool:
        return self.reserved_by is not None

    def reserve(self, owner: Hashable) -> None:
        """Set the reservation flag for a scaling operation.

        Re-reserving with the same owner is idempotent (a worm may cross
        its own reservation during retry); any other owner conflicts.

        Raises
        ------
        AllocationConflictError
            If another scaling operation already holds the flag.
        """
        if owner is None:
            raise ValueError("reservation owner cannot be None")
        if self.reserved_by is not None and self.reserved_by != owner:
            raise AllocationConflictError(
                f"switch {self.endpoints} reserved by {self.reserved_by!r}, "
                f"wanted by {owner!r}"
            )
        self.reserved_by = owner

    def release_reservation(self, owner: Hashable) -> None:
        """Clear the reservation flag.

        Raises
        ------
        AllocationConflictError
            If the flag is held by a different owner.
        """
        if self.reserved_by is None:
            return
        if self.reserved_by != owner:
            raise AllocationConflictError(
                f"switch {self.endpoints} reserved by {self.reserved_by!r}, "
                f"cannot be released by {owner!r}"
            )
        self.reserved_by = None


class UnidirectionalSwitch(ProgrammableSwitch):
    """Stack-shift network switch (Figure 6(b)): forward direction only."""

    def __init__(self, endpoints: Tuple[Hashable, Hashable]):
        super().__init__(endpoints=endpoints, bidirectional=False)


class BidirectionalSwitch(ProgrammableSwitch):
    """Chain network switch (Figure 6(c)): passes both directions."""

    def __init__(self, endpoints: Tuple[Hashable, Hashable]):
        super().__init__(endpoints=endpoints, bidirectional=True)
