"""Ring configurations on the S-topology (paper Figure 5, section 5).

"The shape can form a ring topology in a 2D array" — a ring is a region
whose chain path closes on itself.  Section 5 notes the practical value:
the ring topologies used by commercial multi-cores (Cell EIB, Sandy
Bridge) embed directly into the S-topology, so ring-based designs carry
over.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import RegionError
from repro.topology.regions import Region

__all__ = ["rectangular_ring_path", "ring_region"]

Coord = Tuple[int, int]


def rectangular_ring_path(origin: Coord, height: int, width: int) -> List[Coord]:
    """The perimeter walk of a ``height × width`` rectangle, clockwise from
    ``origin`` (its top-left corner).

    Both dimensions must be at least 2 so that the perimeter is a simple
    cycle of distinct clusters.
    """
    if height < 2 or width < 2:
        raise RegionError("a rectangular ring needs height >= 2 and width >= 2")
    r0, c0 = origin
    path: List[Coord] = []
    path.extend((r0, c0 + c) for c in range(width))                      # top edge ->
    path.extend((r0 + r, c0 + width - 1) for r in range(1, height))      # right edge v
    path.extend((r0 + height - 1, c0 + c) for c in range(width - 2, -1, -1))  # bottom <-
    path.extend((r0 + r, c0) for r in range(height - 2, 0, -1))          # left edge ^
    return path


def ring_region(origin: Coord, height: int, width: int) -> Region:
    """A closed rectangular ring region (Figure 5)."""
    return Region(tuple(rectangular_ring_path(origin, height, width)), ring=True)
