"""Graph export of the S-topology (optional networkx integration).

Turns a fabric into a :class:`networkx.Graph` for connectivity analysis
— either the *potential* topology (every switch position) or the
*configured* one (chained switches only), which is how the bench and
examples sanity-check that regions really are isolated components.

networkx is an optional dependency; importing this module without it
raises a clear error only when the functions are called.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import TopologyError
from repro.topology.s_topology import STopology

if TYPE_CHECKING:  # pragma: no cover
    import networkx

__all__ = ["to_networkx", "configured_components", "verify_linear_region"]


def _nx():
    try:
        import networkx
    except ImportError as exc:  # pragma: no cover
        raise TopologyError(
            "networkx is required for graph export: pip install networkx"
        ) from exc
    return networkx


def to_networkx(fabric: STopology, chained_only: bool = False) -> "networkx.Graph":
    """Export the fabric as an undirected graph.

    Parameters
    ----------
    chained_only:
        ``False`` — one edge per chain-switch position (the potential
        topology, a grid graph);
        ``True`` — only edges whose chain switch is currently CHAINED
        (the configured topology).
    """
    nx = _nx()
    graph = nx.Graph()
    for cluster in fabric.clusters():
        graph.add_node(
            cluster.coord,
            owner=cluster.owner,
            defective=cluster.defective,
        )
    for coord in fabric.linear_order():
        for nbr in fabric.neighbors(coord):
            if coord < nbr:  # undirected: add each pair once
                switch = fabric.chain_switch(coord, nbr)
                if chained_only and not switch.is_chained:
                    continue
                graph.add_edge(coord, nbr, chained=switch.is_chained)
    return graph


def configured_components(fabric: STopology) -> list:
    """Connected components of the configured (chained) topology —
    singletons are unfused clusters, larger components are processors."""
    nx = _nx()
    return [set(c) for c in nx.connected_components(to_networkx(fabric, True))]


def verify_linear_region(fabric: STopology, coords: set) -> bool:
    """Check a configured component is a simple path or cycle — the only
    shapes a stack-structured AP may take (§3.1).

    A path has exactly two degree-1 endpoints (or is a single node); a
    ring has every degree equal to 2.
    """
    nx = _nx()
    graph = to_networkx(fabric, chained_only=True).subgraph(coords)
    if graph.number_of_nodes() != len(coords):
        return False
    if not nx.is_connected(graph) and len(coords) > 1:
        return False
    degrees = [d for _, d in graph.degree()]
    if len(coords) == 1:
        return True
    ones = degrees.count(1)
    twos = degrees.count(2)
    if ones == 2 and ones + twos == len(degrees):
        return True  # simple path
    if ones == 0 and twos == len(degrees):
        return True  # ring
    return False
