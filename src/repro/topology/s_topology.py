"""The S-topology cluster grid (paper Figure 4(a), section 3.1).

The fabric is a ``rows × cols`` grid of replicated clusters.  Between
every pair of Manhattan-adjacent clusters sit programmable switches:

* one **bidirectional chain switch** (the chain interconnection network —
  the dynamic CSD channels of section 2.6 run over it), and
* one **unidirectional stack-shift switch per orientation** (the stack
  only shifts top→bottom, but which physical direction that is depends on
  how a region threads the grid).

This satisfies the three properties section 3.1 demands of the topology:

1. *hierarchical / fractal* — the same cluster pattern replicates at every
   scale (tested by comparing sub-grids);
2. *minimum number of layout patterns* — exactly one cluster pattern and
   one switch pattern;
3. *regular chain/unchain switch points* — a switch between every
   adjacent pair, nowhere else.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import TopologyError
from repro.topology.cluster import Cluster, ClusterResources
from repro.topology.folding import fold_path_is_adjacent, serpentine_order
from repro.topology.switches import (
    BidirectionalSwitch,
    ProgrammableSwitch,
    UnidirectionalSwitch,
)

__all__ = ["STopology"]

Coord = Tuple[int, int]


class STopology:
    """A grid of clusters joined by programmable switches.

    Parameters
    ----------
    rows, cols:
        Grid dimensions (Figure 4(a) shows 8×8).
    resources:
        Per-cluster object counts; defaults to the Table 4 minimum AP.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        resources: Optional[ClusterResources] = None,
    ) -> None:
        if rows < 1 or cols < 1:
            raise TopologyError("S-topology needs at least a 1x1 grid")
        self.rows = rows
        self.cols = cols
        self.resources = resources or ClusterResources()
        self._clusters: Dict[Coord, Cluster] = {
            (r, c): Cluster((r, c), self.resources)
            for r in range(rows)
            for c in range(cols)
        }
        # chain network: one bidirectional switch per undirected adjacency
        self._chain_switches: Dict[FrozenSet[Coord], BidirectionalSwitch] = {}
        # stack-shift network: one unidirectional switch per ordered adjacency
        self._shift_switches: Dict[Tuple[Coord, Coord], UnidirectionalSwitch] = {}
        for coord in self._clusters:
            for nbr in self.neighbors(coord):
                key = frozenset((coord, nbr))
                if key not in self._chain_switches:
                    self._chain_switches[key] = BidirectionalSwitch((coord, nbr))
                self._shift_switches[(coord, nbr)] = UnidirectionalSwitch((coord, nbr))

    # -- structural queries ---------------------------------------------------

    def __contains__(self, coord: Coord) -> bool:
        return coord in self._clusters

    def __len__(self) -> int:
        return len(self._clusters)

    def cluster(self, coord: Coord) -> Cluster:
        """The cluster at ``coord``; raises :class:`TopologyError` if absent."""
        try:
            return self._clusters[coord]
        except KeyError:
            raise TopologyError(f"no cluster at {coord} in {self.rows}x{self.cols} grid") from None

    def clusters(self) -> Iterator[Cluster]:
        """All clusters, row-major."""
        return iter(self._clusters.values())

    def neighbors(self, coord: Coord) -> List[Coord]:
        """Manhattan neighbours of ``coord`` inside the grid, N/S/W/E order."""
        r, c = coord
        if coord not in self._clusters and not (
            0 <= r < self.rows and 0 <= c < self.cols
        ):
            raise TopologyError(f"{coord} outside the grid")
        out = []
        for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            nbr = (r + dr, c + dc)
            if 0 <= nbr[0] < self.rows and 0 <= nbr[1] < self.cols:
                out.append(nbr)
        return out

    def free_clusters(self) -> List[Cluster]:
        """Clusters in the release pool (unowned, not defective)."""
        return [cl for cl in self._clusters.values() if cl.is_free]

    def linear_order(self) -> List[Coord]:
        """The whole-grid serpentine stack order (Figure 4(c))."""
        return serpentine_order(self.rows, self.cols)

    # -- switches --------------------------------------------------------

    def chain_switch(self, a: Coord, b: Coord) -> BidirectionalSwitch:
        """The chain-network switch between adjacent clusters ``a`` and ``b``."""
        try:
            return self._chain_switches[frozenset((a, b))]
        except KeyError:
            raise TopologyError(f"no chain switch between {a} and {b}") from None

    def shift_switch(self, src: Coord, dst: Coord) -> UnidirectionalSwitch:
        """The stack-shift switch carrying shifts ``src -> dst``."""
        try:
            return self._shift_switches[(src, dst)]
        except KeyError:
            raise TopologyError(f"no shift switch {src} -> {dst}") from None

    def all_switches(self) -> Iterator[ProgrammableSwitch]:
        yield from self._chain_switches.values()
        yield from self._shift_switches.values()

    def switch_count(self) -> Tuple[int, int]:
        """``(chain, shift)`` switch counts — regular by construction:
        one chain switch per grid edge, two shift switches per grid edge."""
        return len(self._chain_switches), len(self._shift_switches)

    def chain_switch_states(self) -> Dict[str, int]:
        """Programming-register value of every chain switch, keyed by a
        canonical edge label ``"r0c0-r0c1"`` (endpoints sorted row-major)
        — §3.2's switch settings as one samplable observation: 1 =
        CHAINED, 0 = UNCHAINED.  Deterministically ordered so exported
        heatmaps are byte-stable."""
        states: Dict[str, int] = {}
        for key, switch in self._chain_switches.items():
            a, b = sorted(key)
            label = f"r{a[0]}c{a[1]}-r{b[0]}c{b[1]}"
            states[label] = 1 if switch.is_chained else 0
        return dict(sorted(states.items()))

    # -- chaining regions -------------------------------------------------

    def chain_path(self, path: Iterable[Coord]) -> None:
        """Program the switches so the clusters along ``path`` form one
        linear array: chain switches joined, stack-shift switches set in
        the path direction (top of stack = first element).

        Raises
        ------
        TopologyError
            If the path is not grid-adjacent at every step.
        """
        path = list(path)
        if not fold_path_is_adjacent(path):
            raise TopologyError("chain path must step between adjacent clusters")
        for a, b in zip(path, path[1:]):
            self.chain_switch(a, b).chain()
            self.shift_switch(a, b).chain()

    def unchain_path(self, path: Iterable[Coord]) -> None:
        """Undo :meth:`chain_path` (split the array back apart)."""
        path = list(path)
        for a, b in zip(path, path[1:]):
            self.chain_switch(a, b).unchain()
            self.shift_switch(a, b).unchain()

    def chained_component(self, start: Coord) -> Set[Coord]:
        """All clusters reachable from ``start`` over chained chain-switches.

        This is what physically defines the extent of one fused processor.
        """
        if start not in self._clusters:
            raise TopologyError(f"{start} outside the grid")
        seen = {start}
        frontier = [start]
        while frontier:
            cur = frontier.pop()
            for nbr in self.neighbors(cur):
                if nbr not in seen and self.chain_switch(cur, nbr).is_chained:
                    seen.add(nbr)
                    frontier.append(nbr)
        return seen

    # -- fractal / regularity checks (section 3.1 properties) -----------------

    def is_subgrid_isomorphic(self, rows: int, cols: int) -> bool:
        """Property 1: any sub-grid has the same structure (cluster pattern
        and switch placement) as a fresh fabric of that size."""
        if rows > self.rows or cols > self.cols:
            return False
        sub = STopology(rows, cols, self.resources)
        return sub.switch_count() == self._expected_switch_count(rows, cols)

    @staticmethod
    def _expected_switch_count(rows: int, cols: int) -> Tuple[int, int]:
        edges = rows * (cols - 1) + cols * (rows - 1)
        return edges, 2 * edges

    # -- rendering -------------------------------------------------------

    def render(self) -> str:
        """ASCII sketch: one character per cluster.

        ``.`` free, ``X`` defective, otherwise the first character of the
        owner token.  Used by the examples.
        """
        lines = []
        for r in range(self.rows):
            chars = []
            for c in range(self.cols):
                cl = self._clusters[(r, c)]
                if cl.defective:
                    chars.append("X")
                elif cl.owner is None:
                    chars.append(".")
                else:
                    chars.append(str(cl.owner)[0])
            lines.append(" ".join(chars))
        return "\n".join(lines)
