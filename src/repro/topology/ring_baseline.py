"""Baseline ring topology (paper section 5 comparator).

"A ring topology has been recently used for multi-core processors ...
Its latency is increased by the number of cores.  This technique is
scalable for a small number of cores."

The comparator quantifies that latency growth so the ablation bench can
contrast it with the S-topology (where a ring is just one region shape
among many and the fabric diameter grows as sqrt(N), not N).
"""

from __future__ import annotations

from repro.errors import TopologyError

__all__ = ["RingTopology"]


class RingTopology:
    """A unidirectional or bidirectional ring of ``n`` cores."""

    def __init__(self, n_cores: int, bidirectional: bool = True) -> None:
        if n_cores < 2:
            raise TopologyError("a ring needs at least two cores")
        self.n_cores = n_cores
        self.bidirectional = bidirectional

    def hops(self, src: int, dst: int) -> int:
        """Hop count between two cores along the ring."""
        self._check(src)
        self._check(dst)
        forward = (dst - src) % self.n_cores
        if not self.bidirectional:
            return forward
        return min(forward, self.n_cores - forward)

    def diameter(self) -> int:
        """Worst-case hop count — grows linearly with core count."""
        if self.bidirectional:
            return self.n_cores // 2
        return self.n_cores - 1

    def average_hops(self) -> float:
        """Mean hop count over all ordered pairs of distinct cores."""
        n = self.n_cores
        total = sum(
            self.hops(0, d) for d in range(1, n)
        )  # symmetry: same for every source
        return total / (n - 1)

    def bisection_width(self) -> int:
        """Cutting a ring in half always severs exactly two links."""
        return 2

    def _check(self, core: int) -> None:
        if not 0 <= core < self.n_cores:
            raise TopologyError(f"core {core} outside ring of {self.n_cores}")
