"""Arbitrary regions of clusters (paper section 3.1/3.2).

"The S-topology network supports the ability to unchain (split) the
array into any arbitrary shape that may be formed by connecting the
clusters" — a *region* is an ordered path of grid-adjacent clusters; the
path order is the region's linear (stack) order.  Closing the path back
to its first cluster yields a ring (Figure 5, see
:mod:`repro.topology.rings`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Sequence, Tuple

from repro.errors import RegionError
from repro.topology.folding import serpentine_fold
from repro.topology.s_topology import STopology

__all__ = ["Region", "path_region", "rectangle_region"]

Coord = Tuple[int, int]


@dataclass(frozen=True)
class Region:
    """An ordered, grid-adjacent path of clusters forming one processor.

    Attributes
    ----------
    path:
        Cluster coordinates in linear (stack) order; ``path[0]`` is the
        top of the stack.
    ring:
        Whether the last cluster also chains back to the first
        (Figure 5's ring configurations).
    """

    path: Tuple[Coord, ...]
    ring: bool = False

    def __post_init__(self) -> None:
        if not self.path:
            raise RegionError("a region needs at least one cluster")
        if len(set(self.path)) != len(self.path):
            raise RegionError("a region path may not revisit a cluster")
        for a, b in self._edges():
            if abs(a[0] - b[0]) + abs(a[1] - b[1]) != 1:
                raise RegionError(f"path step {a} -> {b} is not grid-adjacent")
        if self.ring and len(self.path) < 4:
            raise RegionError("a ring needs at least four clusters on a grid")

    def _edges(self) -> List[Tuple[Coord, Coord]]:
        edges = list(zip(self.path, self.path[1:]))
        if self.ring and len(self.path) > 1:
            edges.append((self.path[-1], self.path[0]))
        return edges

    @property
    def clusters(self) -> FrozenSet[Coord]:
        return frozenset(self.path)

    def __len__(self) -> int:
        return len(self.path)

    def __contains__(self, coord: Coord) -> bool:
        return coord in self.clusters

    def capacity(self, objects_per_cluster: int) -> int:
        """Stack capacity ``C`` of the AP this region forms."""
        if objects_per_cluster < 1:
            raise ValueError("objects per cluster must be positive")
        return len(self.path) * objects_per_cluster

    def chain_on(self, fabric: STopology) -> None:
        """Program the fabric's switches to realise this region."""
        fabric.chain_path(self.path)
        if self.ring:
            last, first = self.path[-1], self.path[0]
            fabric.chain_switch(last, first).chain()
            fabric.shift_switch(last, first).chain()

    def unchain_on(self, fabric: STopology) -> None:
        """Split the region back into released clusters."""
        fabric.unchain_path(self.path)
        if self.ring:
            last, first = self.path[-1], self.path[0]
            fabric.chain_switch(last, first).unchain()
            fabric.shift_switch(last, first).unchain()

    def bounding_box(self) -> Tuple[Coord, Coord]:
        """``((min_row, min_col), (max_row, max_col))`` of the region."""
        rows = [r for r, _ in self.path]
        cols = [c for _, c in self.path]
        return (min(rows), min(cols)), (max(rows), max(cols))


def path_region(path: Sequence[Coord], ring: bool = False) -> Region:
    """Build a region from an explicit path (validates adjacency)."""
    return Region(tuple(path), ring=ring)


def rectangle_region(origin: Coord, height: int, width: int) -> Region:
    """A ``height × width`` rectangle threaded in serpentine stack order,
    with its top-left corner at ``origin`` — the natural up-scaled AP shape.
    """
    if height < 1 or width < 1:
        raise RegionError("rectangle dimensions must be positive")
    r0, c0 = origin
    path = [
        (r0 + r, c0 + c)
        for r, c in (serpentine_fold(i, width) for i in range(height * width))
    ]
    return Region(tuple(path))
