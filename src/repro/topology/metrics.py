"""Distance and bandwidth metrics for topologies (paper sections 4 and 5).

The paper assesses "delay in Manhattan-distance of the chip" and compares
the S-topology against ring and mesh alternatives on latency scaling and
bisection bandwidth (section 5).  These helpers are shared by the fabric,
the baselines, and the benchmark harness.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Sequence, Tuple

__all__ = [
    "manhattan",
    "path_hops",
    "diameter",
    "average_distance",
    "bisection_width",
]

Coord = Tuple[int, int]


def manhattan(a: Coord, b: Coord) -> int:
    """Manhattan (L1) distance between two grid coordinates."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def path_hops(path: Sequence[Coord]) -> int:
    """Number of hops along an explicit path (its length minus one)."""
    return max(0, len(path) - 1)


def diameter(coords: Iterable[Coord]) -> int:
    """Largest pairwise Manhattan distance over a set of coordinates.

    For an ``R × C`` grid this is ``(R-1) + (C-1)``.
    """
    coords = list(coords)
    if len(coords) < 2:
        return 0
    return max(manhattan(a, b) for a, b in combinations(coords, 2))


def average_distance(coords: Iterable[Coord]) -> float:
    """Mean pairwise Manhattan distance over a set of coordinates."""
    coords = list(coords)
    if len(coords) < 2:
        return 0.0
    pairs = list(combinations(coords, 2))
    return sum(manhattan(a, b) for a, b in pairs) / len(pairs)


def bisection_width(rows: int, cols: int) -> int:
    """Bisection width of an ``rows × cols`` mesh/grid fabric.

    Cutting the grid in half across its longer dimension severs one link
    per row (or column) of the shorter dimension — the "abundant bisection
    bandwidth" section 5 credits the mesh with.
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    if rows == 1 and cols == 1:
        return 0
    return min(rows, cols) if rows != cols else rows
