"""3-D die stacking (paper Figure 6(d), section 3.2).

"We can implement the VLSI processor using a die-stacking (chip-on-chip)
by connecting the bottom and top side dies" — each grid position gains a
vertical programmable switch joining the cluster on the bottom die to the
cluster at the same position on the top die, so a linear array can
continue onto the second die.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import TopologyError
from repro.topology.s_topology import STopology
from repro.topology.switches import BidirectionalSwitch

__all__ = ["DieStack"]

Coord = Tuple[int, int]
Coord3 = Tuple[int, int, int]  # (die, row, col)


class DieStack:
    """Two (or more) stacked S-topology dies with vertical switches."""

    def __init__(self, rows: int, cols: int, n_dies: int = 2) -> None:
        if n_dies < 2:
            raise TopologyError("a die stack needs at least two dies")
        self.n_dies = n_dies
        self.dies: List[STopology] = [STopology(rows, cols) for _ in range(n_dies)]
        # one vertical switch per grid position per adjacent die pair
        self._vias: Dict[Tuple[int, Coord], BidirectionalSwitch] = {
            (d, (r, c)): BidirectionalSwitch(((d, r, c), (d + 1, r, c)))
            for d in range(n_dies - 1)
            for r in range(rows)
            for c in range(cols)
        }

    @property
    def rows(self) -> int:
        return self.dies[0].rows

    @property
    def cols(self) -> int:
        return self.dies[0].cols

    def via(self, lower_die: int, coord: Coord) -> BidirectionalSwitch:
        """The vertical switch above ``coord`` on die ``lower_die``."""
        try:
            return self._vias[(lower_die, coord)]
        except KeyError:
            raise TopologyError(
                f"no via above die {lower_die} at {coord}"
            ) from None

    def chain_vertical(self, lower_die: int, coord: Coord) -> None:
        """Chain the vertical switch so the two dies join at ``coord``."""
        self.via(lower_die, coord).chain()

    def chain_3d_path(self, path: List[Coord3]) -> None:
        """Chain a path that may move within a die (adjacent grid steps) or
        between vertically adjacent dies at the same grid position.

        Raises
        ------
        TopologyError
            On any step that is neither planar-adjacent nor a single
            vertical hop.
        """
        for (d1, r1, c1), (d2, r2, c2) in zip(path, path[1:]):
            if d1 == d2:
                self.dies[d1].chain_path([(r1, c1), (r2, c2)])
            elif abs(d1 - d2) == 1 and (r1, c1) == (r2, c2):
                self.chain_vertical(min(d1, d2), (r1, c1))
            else:
                raise TopologyError(
                    f"illegal 3-D step ({d1},{r1},{c1}) -> ({d2},{r2},{c2})"
                )

    def total_clusters(self) -> int:
        return sum(len(d) for d in self.dies)
