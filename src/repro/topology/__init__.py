"""S-topology fabric (paper section 3, Figures 4-6).

The adaptive processor is a *linear* array (a stack).  To place it on
silicon, the paper folds the linear array onto a two-dimensional grid of
replicated **clusters** — the S-topology — with programmable chain/unchain
switches at regular positions between clusters.  Any connected region of
clusters whose clusters can be threaded by a grid-adjacent path becomes
one adaptive processor; closing the path yields the ring configurations of
Figure 5.

Modules
-------
:mod:`repro.topology.switches`
    Programmable uni-/bidirectional switches with programming registers
    and the reservation flags used by wormhole reconfiguration (Fig. 6b,c).
:mod:`repro.topology.cluster`
    The replicated cluster of compute/memory/system objects (Fig. 4b).
:mod:`repro.topology.folding`
    Serpentine folding between linear (stack) order and grid coordinates
    (Fig. 4c).
:mod:`repro.topology.s_topology`
    The cluster grid itself, with its inter-cluster switch fabric (Fig. 4a).
:mod:`repro.topology.regions`
    Arbitrary connected regions threaded by a chain path.
:mod:`repro.topology.rings`
    Ring configurations on the S-topology (Fig. 5).
:mod:`repro.topology.metrics`
    Manhattan distance, hop counts, diameter, bisection width.
:mod:`repro.topology.mesh`, :mod:`repro.topology.ring_baseline`
    The related-work comparators of section 5.
:mod:`repro.topology.die_stack`
    The 3-D chip-on-chip switch of Figure 6(d).
"""

from repro.topology.switches import (
    SwitchState,
    ProgrammableSwitch,
    UnidirectionalSwitch,
    BidirectionalSwitch,
)
from repro.topology.cluster import Cluster, ClusterResources
from repro.topology.folding import (
    serpentine_fold,
    serpentine_unfold,
    serpentine_order,
    fold_path_is_adjacent,
)
from repro.topology.s_topology import STopology
from repro.topology.regions import Region, rectangle_region, path_region
from repro.topology.rings import ring_region, rectangular_ring_path
from repro.topology.metrics import (
    manhattan,
    path_hops,
    diameter,
    bisection_width,
    average_distance,
)
from repro.topology.mesh import MeshTopology
from repro.topology.ring_baseline import RingTopology
from repro.topology.die_stack import DieStack
from repro.topology.graph import (
    to_networkx,
    configured_components,
    verify_linear_region,
)

__all__ = [
    "SwitchState",
    "ProgrammableSwitch",
    "UnidirectionalSwitch",
    "BidirectionalSwitch",
    "Cluster",
    "ClusterResources",
    "serpentine_fold",
    "serpentine_unfold",
    "serpentine_order",
    "fold_path_is_adjacent",
    "STopology",
    "Region",
    "rectangle_region",
    "path_region",
    "ring_region",
    "rectangular_ring_path",
    "manhattan",
    "path_hops",
    "diameter",
    "bisection_width",
    "average_distance",
    "MeshTopology",
    "RingTopology",
    "DieStack",
    "to_networkx",
    "configured_components",
    "verify_linear_region",
]
