"""Serpentine folding of the linear stack onto the 2-D grid (Figure 4(c)).

The adaptive processor's array is strictly linear (it is a stack), but
silicon is planar: "The linear network is folded into a 2D arrangement".
The fold used by the paper's conceptual layout is the boustrophedon
(serpentine, "S"-shaped) walk: row 0 left-to-right, row 1 right-to-left,
and so on — which is what gives the S-topology its name and guarantees
that *consecutive linear positions are always grid-adjacent*, so a stack
shift never needs a long wire.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = [
    "serpentine_fold",
    "serpentine_unfold",
    "serpentine_order",
    "fold_path_is_adjacent",
]

Coord = Tuple[int, int]


def serpentine_fold(index: int, cols: int) -> Coord:
    """Map a linear stack index to its ``(row, col)`` grid position.

    Even rows run left→right, odd rows right→left.

    Parameters
    ----------
    index:
        Position in the linear (stack) order, 0 = top of stack.
    cols:
        Width of the grid.
    """
    if cols < 1:
        raise ValueError("grid must have at least one column")
    if index < 0:
        raise ValueError("linear index cannot be negative")
    row, offset = divmod(index, cols)
    col = offset if row % 2 == 0 else cols - 1 - offset
    return (row, col)


def serpentine_unfold(coord: Coord, cols: int) -> int:
    """Inverse of :func:`serpentine_fold`: grid position → linear index."""
    row, col = coord
    if cols < 1:
        raise ValueError("grid must have at least one column")
    if row < 0 or not 0 <= col < cols:
        raise ValueError(f"coordinate {coord} outside a {cols}-wide grid")
    offset = col if row % 2 == 0 else cols - 1 - col
    return row * cols + offset


def serpentine_order(rows: int, cols: int) -> List[Coord]:
    """The full serpentine walk over a ``rows × cols`` grid, in stack order."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    return [serpentine_fold(i, cols) for i in range(rows * cols)]


def fold_path_is_adjacent(path: Sequence[Coord]) -> bool:
    """Check the defining property of a valid fold: every consecutive pair
    of positions is Manhattan-adjacent (distance exactly 1).

    This is the invariant the S-topology needs so that chain switches only
    ever join neighbouring clusters.
    """
    for (r1, c1), (r2, c2) in zip(path, path[1:]):
        if abs(r1 - r2) + abs(c1 - c2) != 1:
            return False
    return True
