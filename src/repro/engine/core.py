"""The sweep engine: memoized, replayable Figure-3 trial execution.

A Figure 3 (or rate-0 fault-campaign) trial is a pure function of
``(n_objects, locality, trial_seed, two_source)``: the workload draws
every request from a seeded RNG and the grant protocol is deterministic.
The engine exploits that at three levels:

* a **request cache** keyed on the workload parameters, so re-resolved
  trials skip the numpy draws;
* a **route memo** (:class:`repro.engine.routes.RouteMemo`) shared by
  every trial of one channel geometry, so the grant resolution inside a
  cold trial runs on interned states and cached transitions instead of
  scanning live channel objects;
* a **trial cache** holding the finished
  :class:`~repro.csd.simulator.SimulationResult` together with the
  telemetry the live path would have produced (attempt count, blocked
  spans in order), so a warm trial costs one dict lookup plus a counter
  replay.

**Byte-identity contract.**  A cached trial must be indistinguishable —
in its result *and* in the telemetry registry — from running
:meth:`repro.csd.simulator.CSDSimulator.run_trial` live.  The fast path
therefore only engages when nothing order- or object-dependent would be
recorded that the replay cannot reproduce: tracing disabled, no live CSD
faults (``faults is None``, or a plan whose CSD-segment rate is zero and
no quarantined CSD site — other fault kinds never touch this protocol),
and a concrete trial seed.
Under a retry policy the fast path additionally requires the resolved
trial to have zero blocked requests (first-try successes leave no
retry telemetry; a blocked request would).  Anything else falls back to
the live simulator, unchanged.

**Observation replays too.**  Every resolved trial keeps its *grant log*
(``cycle, lo, hi, channel`` per granted attempt, where a cycle is one
chaining request, exactly the live sampler's clock).  When observation is
enabled the fast path feeds that log through
:class:`repro.megascale.kernel.VectorSampler`, which re-derives the
segment-demand / channel-occupancy heatmap columns and the used-channel
series at the same stride the live sampler uses — byte-identical
observation documents, cached speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro import telemetry
from repro.csd.locality import LocalityWorkload
from repro.csd.simulator import CSDSimulator, SimulationResult
from repro.engine.cache import LRUCache, MISSING
from repro.engine.routes import RouteMemo
from repro.faults.model import FaultKind
from repro.megascale.kernel import VectorCSDKernel, VectorSampler
from repro.telemetry.observe import point_label

__all__ = ["SweepEngine", "TrialEntry"]

#: Default trial-cache capacity (a full Figure 3 series at 10 trials is
#: 5 sizes x 11 localities x 10 = 550 entries; leave headroom for warm
#: re-runs at other seeds).
DEFAULT_TRIAL_CAPACITY = 8_192

#: Default request-set cache capacity (request lists are the big
#: entries — N-1 dataclasses each — so this is kept tighter).
DEFAULT_REQUEST_CAPACITY = 2_048


@dataclass(frozen=True)
class TrialEntry:
    """A resolved trial: its result plus the telemetry to replay.

    ``attempts`` is the number of connect attempts (one per source of
    every request); ``blocked_spans`` the ``(lo, hi)`` spans that found
    no free channel, in attempt order — exactly the ``csd.block`` events
    the live path emits.  ``grant_log`` holds the granted attempts as
    four parallel int64 arrays ``(cycles, lo, hi, channel)`` in grant
    order, where a cycle is one chaining request (request index + 1 —
    the live sampler's clock); it is what makes cached observation
    replay possible (``None`` only for entries built by older callers,
    which then re-resolve under observation).
    """

    result: SimulationResult
    attempts: int
    blocked_spans: Tuple[Tuple[int, int], ...]
    grant_log: Optional[
        Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
    ] = None


def _pack_grant_log(
    cycles: List[int], rows: List[Tuple[int, int, int]]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Freeze a resolved trial's grants into the compact array form."""
    return (
        np.asarray(cycles, dtype=np.int64),
        np.asarray([r[0] for r in rows], dtype=np.int64),
        np.asarray([r[1] for r in rows], dtype=np.int64),
        np.asarray([r[2] for r in rows], dtype=np.int64),
    )


class SweepEngine:
    """Memoizing trial runner shared by the fig3 and faults sweeps."""

    def __init__(
        self,
        trial_capacity: int = DEFAULT_TRIAL_CAPACITY,
        request_capacity: int = DEFAULT_REQUEST_CAPACITY,
        kernel: str = "route",
    ) -> None:
        if kernel not in ("route", "vector"):
            raise ValueError(
                f"unknown cold-path kernel {kernel!r} (want 'route' or 'vector')"
            )
        #: Cold-path backend: ``"route"`` resolves grants on the interned
        #: route memo; ``"vector"`` runs the numpy span-array kernel
        #: (:class:`repro.megascale.kernel.VectorCSDKernel`) — same
        #: results bit-for-bit, but per-trial cost that stays flat as
        #: ``n_objects`` grows into the thousands.
        self.kernel = kernel
        self._trials = LRUCache(trial_capacity)
        self._requests = LRUCache(request_capacity)
        self._memos: Dict[Tuple[int, int], RouteMemo] = {}
        #: Trials served from cache (replayed) vs. run on the live path.
        self.trials_cached = 0
        self.trials_live = 0

    # -- memo plumbing ------------------------------------------------------

    def _memo(self, n_channels: int, n_segments: int) -> RouteMemo:
        key = (n_channels, n_segments)
        memo = self._memos.get(key)
        if memo is None:
            memo = self._memos[key] = RouteMemo(n_channels, n_segments)
        return memo

    def trial_requests(
        self, n_objects: int, locality: float, seed: int, two_source: bool
    ):
        """The (cached) workload of one trial: ``(requests, realized_locality)``.

        Requests are frozen dataclasses drawn exactly as
        :class:`~repro.csd.locality.LocalityWorkload` draws them, so
        sharing one list between trials (and with callers) is safe.
        """
        key = (n_objects, locality, seed, two_source)
        cached = self._requests.get_or_miss(key)
        if cached is not MISSING:
            return cached
        workload = LocalityWorkload(n_objects, locality, seed=seed)
        requests = (
            workload.requests_two_source() if two_source else workload.requests()
        )
        entry = (requests, workload.realized_locality(requests))
        self._requests.put(key, entry)
        return entry

    # -- resolution ---------------------------------------------------------

    def _resolve_trial(
        self, n_objects: int, locality: float, seed: int, two_source: bool
    ) -> TrialEntry:
        """Resolve one trial purely on the active cold-path kernel (no
        live network): the route memo, or the vector span-array kernel."""
        requests, realized = self.trial_requests(
            n_objects, locality, seed, two_source
        )
        n_channels = 2 * n_objects if two_source else n_objects
        if self.kernel == "vector":
            return self._resolve_trial_vector(
                n_objects, locality, realized, requests, n_channels
            )
        memo = self._memo(n_channels, n_objects - 1)
        profiling = telemetry.profiler().enabled
        memo_before = memo.stats() if profiling else None
        state_id = memo.empty_state_id
        live_state = None
        attempts = 0
        blocked: List[Tuple[int, int]] = []
        grant_cycles: List[int] = []
        grant_rows: List[Tuple[int, int, int]] = []
        for req_index, req in enumerate(requests):
            for source in req.sources:
                if source == req.sink:  # cannot happen by construction
                    continue
                attempts += 1
                lo, hi = (
                    (source, req.sink) if source < req.sink else (req.sink, source)
                )
                if live_state is None:
                    step = memo.transition(state_id, lo, hi)
                    if step is not None:
                        granted, state_id = step
                        if granted is None:
                            blocked.append((lo, hi))
                        else:
                            grant_cycles.append(req_index + 1)
                            grant_rows.append((lo, hi, granted))
                        continue
                    # intern budget exhausted: finish on the live state
                    live_state = memo.state(state_id)
                granted, live_state = memo.resolve_live(live_state, lo, hi)
                if granted is None:
                    blocked.append((lo, hi))
                else:
                    grant_cycles.append(req_index + 1)
                    grant_rows.append((lo, hi, granted))
        if profiling:
            memo_after = memo.stats()
            for stat in ("transition_hits", "transition_misses", "states",
                         "fallbacks"):
                delta = memo_after[stat] - memo_before[stat]
                if delta:
                    telemetry.counter(f"profile.route.{stat}").inc(delta)
        final = live_state if live_state is not None else memo.state(state_id)
        highest = 0
        for idx in range(len(final) - 1, -1, -1):
            if final[idx]:
                highest = idx + 1
                break
        result = SimulationResult(
            n_objects=n_objects,
            locality_knob=locality,
            realized_locality=realized,
            used_channels=sum(1 for spans in final if spans),
            highest_channel=highest,
            requests=len(requests),
            blocked=len(blocked),
        )
        return TrialEntry(
            result, attempts, tuple(blocked),
            _pack_grant_log(grant_cycles, grant_rows),
        )

    def _resolve_trial_vector(
        self,
        n_objects: int,
        locality: float,
        realized: float,
        requests,
        n_channels: int,
    ) -> TrialEntry:
        """Vector-kernel twin of the route-memo resolution: identical
        attempt order, identical first-fit grants, identical blocks."""
        spans: List[Tuple[int, int]] = []
        span_cycles: List[int] = []
        for req_index, req in enumerate(requests):
            for source in req.sources:
                if source == req.sink:  # cannot happen by construction
                    continue
                spans.append(
                    (source, req.sink) if source < req.sink
                    else (req.sink, source)
                )
                span_cycles.append(req_index + 1)
        kern = VectorCSDKernel(n_channels, n_objects - 1)
        with telemetry.profile_stage("kernel.grant_many"):
            grants = kern.grant_many(spans)
        attempts = len(spans)
        blocked = [
            span for span, granted in zip(spans, grants) if granted is None
        ]
        grant_cycles = [
            c for c, granted in zip(span_cycles, grants) if granted is not None
        ]
        grant_rows = [
            (span[0], span[1], granted)
            for span, granted in zip(spans, grants)
            if granted is not None
        ]
        result = SimulationResult(
            n_objects=n_objects,
            locality_knob=locality,
            realized_locality=realized,
            used_channels=kern.used_channels(),
            highest_channel=kern.highest_used_channel(),
            requests=len(requests),
            blocked=len(blocked),
        )
        return TrialEntry(
            result, attempts, tuple(blocked),
            _pack_grant_log(grant_cycles, grant_rows),
        )

    @staticmethod
    def _replay(entry: TrialEntry) -> None:
        """Re-emit the telemetry the live trial would have produced.

        Counter totals, instrument creation, and ``csd.block`` event
        order all match the live path; instruments the live path never
        touches (e.g. grants in an all-blocked trial) stay untouched.
        """
        telemetry.counter("fig3.trials").inc()
        with telemetry.scope("fig3.trial"):
            telemetry.counter("csd.connect.requests").inc(entry.attempts)
            grants = entry.attempts - len(entry.blocked_spans)
            if grants:
                telemetry.counter("csd.connect.grants").inc(grants)
            for lo, hi in entry.blocked_spans:
                telemetry.counter("csd.connect.blocks").inc()
                telemetry.event("csd.block", lo=lo, hi=hi)

    @staticmethod
    def _replay_observation(
        entry: TrialEntry,
        n_objects: int,
        locality: float,
        two_source: bool,
        sample_series: bool,
    ) -> None:
        """Re-emit the observation the live trial would have produced.

        Mirrors the sampler block of :meth:`CSDSimulator.run_trial`: the
        same instruments are created (even when the stride yields zero
        samples), and :class:`VectorSampler` re-derives every probe
        reading from the grant log at the same stride — so documents,
        ring eviction, and cell-cap ``dropped`` tallies all match the
        live path byte for byte.
        """
        label = point_label(n=n_objects, loc=locality)
        stride = telemetry.observer().effective_stride(max(1, n_objects // 64))
        segment_heatmap = telemetry.heatmap(f"csd.segment_demand{label}")
        channel_heatmap = telemetry.heatmap(f"csd.channel_occupancy{label}")
        series = (
            telemetry.time_series(f"csd.used_channels{label}")
            if sample_series
            else None
        )
        n_channels = 2 * n_objects if two_source else n_objects
        cycles, lo, hi, ch = entry.grant_log
        sampler = VectorSampler(n_objects - 1, n_channels, stride)
        sampler.replay(
            cycles, lo, hi, ch, entry.result.requests,
            segment_heatmap, channel_heatmap, series=series,
        )

    def run_csd_trial(
        self,
        n_objects: int,
        locality: float,
        trial_seed: Optional[int],
        two_source: bool = False,
        faults=None,
        retry_policy=None,
        sample_series: bool = False,
    ) -> SimulationResult:
        """Run (or replay) one trial; see the module docstring for when
        the cached path engages.  Drop-in equivalent of
        :meth:`CSDSimulator.run_trial` with the same arguments."""
        # CSD-fault-freedom is per-kind, not per-plan: with the
        # CSD_SEGMENT rate at zero, FaultPlan.draw early-returns None
        # before touching any RNG and the channel filter keeps every
        # candidate without counters or ledger writes, so a plan that
        # only faults switches/links/flits still replays byte-identically.
        # A quarantined site in the CSD domain (degradation can force one
        # faulty regardless of the plan) disables the fast path.
        csd_fault_free = faults is None or (
            faults.plan.rate_for(FaultKind.CSD_SEGMENT) == 0.0
            and not any(
                site.startswith("csd/") for site in faults.quarantined_sites()
            )
        )
        observing = telemetry.observer().enabled
        fast = (
            trial_seed is not None
            and not telemetry.tracer().enabled
            and csd_fault_free
        )
        if fast:
            key = (n_objects, float(locality), int(trial_seed), bool(two_source))
            entry = self._trials.get_or_miss(key)
            if entry is MISSING or (observing and entry.grant_log is None):
                with telemetry.profile_stage("engine.resolve"):
                    entry = self._resolve_trial(
                        n_objects, float(locality), int(trial_seed),
                        bool(two_source),
                    )
                self._trials.put(key, entry)
            if retry_policy is None or not entry.blocked_spans:
                self.trials_cached += 1
                with telemetry.profile_stage("engine.replay"):
                    self._replay(entry)
                    if observing:
                        self._replay_observation(
                            entry, n_objects, locality, two_source,
                            sample_series,
                        )
                return entry.result
            # a blocked request under a retry policy exercises backoff
            # counters the replay cannot reproduce — run it live instead
        self.trials_live += 1
        return CSDSimulator(n_objects).run_trial(
            locality,
            trial_seed=trial_seed,
            two_source=two_source,
            faults=faults,
            retry_policy=retry_policy,
            sample_series=sample_series,
        )

    # -- introspection ------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        return {
            "kernel": self.kernel,
            "trials_cached": self.trials_cached,
            "trials_live": self.trials_live,
            "trial_cache": self._trials.stats(),
            "request_cache": self._requests.stats(),
            "route_memos": {
                f"ch{nc}xseg{ns}": memo.stats()
                for (nc, ns), memo in sorted(self._memos.items())
            },
        }

    def format_stats(self) -> str:
        """One status line (the CLI prints this to stderr)."""
        t = self._trials.stats()
        route_hits = sum(
            m.stats()["transition_hits"] for m in self._memos.values()
        )
        route_misses = sum(
            m.stats()["transition_misses"] for m in self._memos.values()
        )
        return (
            f"engine: trials cached={self.trials_cached} "
            f"live={self.trials_live} "
            f"trial-cache {t['hits']}h/{t['misses']}m "
            f"route {route_hits}h/{route_misses}m"
        )
