"""Batched, dynamically load-balanced sweep dispatch over the engine.

The legacy parallel paths (:func:`repro.csd.simulator.figure3_series`,
:func:`repro.faults.campaign.run_campaign`) fan out one *sweep point*
per pool task via ``Executor.map`` — fixed-size work units, one straggler
point stalls the tail.  This layer flattens every sweep into *(point,
trial)* tasks, chunks them into batches, and dispatches the batches with
``submit`` + ``as_completed`` so free workers steal whatever is left.
Each worker process keeps one persistent :class:`~repro.engine.core.SweepEngine`,
so route-memo and trial-cache state accumulates across the batches it
serves.

Determinism: batches are slices of the flattened task list, results are
reassembled by batch index (never completion order), per-trial telemetry
captures are summed in trial order, and the per-point aggregation is the
exact helper the serial paths use — so the batched output is
byte-identical to the serial one.  Tracing cannot be replayed from a
cache, so with tracing enabled these entry points delegate to the
legacy traced paths unchanged.  Observation *can* be replayed: cached
trials re-derive their samples from the grant log through
:class:`~repro.megascale.kernel.VectorSampler` (see
:mod:`repro.engine.core`), so ``--engine --observe`` runs stay batched
and cached — the worker payloads carry the observer (and profiler)
switches across the process boundary, and the parent sets the same
per-point gauges the legacy paths set.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.csd.simulator import (
    FIGURE3_NOBJECTS,
    SimulationResult,
    _aggregate_point,
    figure3_series,
    record_point_gauges,
)
from repro.faults.campaign import (
    CAMPAIGN_SCHEMA,
    DEFAULT_POLICY,
    _LOCALITY,
    _aggregate_campaign_point,
    _capture_before,
    _capture_delta,
    RetryPolicy,
    record_campaign_gauges,
    run_campaign,
    run_fault_trial,
)
from repro.engine.core import SweepEngine

__all__ = ["run_fig3", "run_faults", "DEFAULT_BATCHES_PER_WORKER"]

#: Batches per worker the auto batch size aims for: small enough that a
#: straggler batch costs ~1/4 of one worker's share, large enough that
#: dispatch overhead stays negligible.
DEFAULT_BATCHES_PER_WORKER = 4

#: Default localities of the full Figure 3 series (mirrors
#: :func:`repro.csd.simulator.figure3_series`).
_DEFAULT_LOCALITIES = [1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1, 0.0]

#: One engine per (worker process, kernel), created lazily on the first
#: batch and reused for every batch that lands on this worker — that
#: reuse is what keeps the route memo (or the vector kernel's trial
#: cache) warm across batches.  Keyed by kernel so a worker serving a
#: ``--kernel vector`` run never hands those batches a route-memo engine
#: left over from an earlier run in the same pool.
_WORKER_ENGINES: Dict[str, SweepEngine] = {}


def _worker_engine(kernel: str = "route") -> SweepEngine:
    engine = _WORKER_ENGINES.get(kernel)
    if engine is None:
        engine = _WORKER_ENGINES[kernel] = SweepEngine(kernel=kernel)
    return engine


def _traced() -> bool:
    return telemetry.tracer().enabled


def _worker_switches() -> Tuple[bool, int, bool]:
    """The instrumentation switches a pool worker must restore after its
    ``telemetry.reset()``: (observation on, observation stride, profiling
    on).  Tracing never reaches the engine pool (it delegates)."""
    obs = telemetry.observer()
    return (obs.enabled, obs.stride, telemetry.profiler().enabled)


def _apply_worker_switches(observe: bool, stride: int, profile: bool) -> None:
    if observe:
        telemetry.enable_observation(True, stride)
    if profile:
        telemetry.enable_profiling(True)


def _chunked(tasks: List[Any], workers: int, batch_size: Optional[int]):
    if batch_size is None:
        per = workers * DEFAULT_BATCHES_PER_WORKER
        batch_size = max(1, -(-len(tasks) // per))
    return [
        tuple(tasks[i : i + batch_size])
        for i in range(0, len(tasks), batch_size)
    ]


def _record_engine_telemetry(cached: int, live: int) -> None:
    """Engine effectiveness counters for ``--stats`` / snapshots.  Only
    touched when non-zero, so an engine run that cached nothing leaves
    the registry exactly as the legacy path would."""
    if cached:
        telemetry.counter("engine.trials.cached").inc(cached)
    if live:
        telemetry.counter("engine.trials.live").inc(live)


# -- Figure 3 ---------------------------------------------------------------


def _engine_fig3_point(
    engine: SweepEngine, n_objects: int, locality: float, n_trials: int, seed: int
) -> SimulationResult:
    """Serial engine twin of :func:`repro.csd.simulator._sweep_point`,
    including the per-point observer gauges."""
    with telemetry.scope("fig3.point"), telemetry.tracer().span(
        "fig3.point", kind="sweep", n_objects=n_objects,
        locality=locality, trials=n_trials, seed=seed,
    ):
        trials = [
            engine.run_csd_trial(
                n_objects, locality, seed + 1000 * t, sample_series=(t == 0)
            )
            for t in range(n_trials)
        ]
    point = _aggregate_point(n_objects, locality, trials)
    if telemetry.observer().enabled:
        record_point_gauges(point)
    return point


def _fig3_chunk(args):
    """Worker entry: run one batch of trials on this worker's persistent
    engine; ship the results with the batch's telemetry delta and its
    wall-clock latency."""
    chunk_index, items, kernel, observe, stride, profile = args
    telemetry.reset()
    _apply_worker_switches(observe, stride, profile)
    engine = _worker_engine(kernel)
    cached0, live0 = engine.trials_cached, engine.trials_live
    start = time.perf_counter()
    results = [
        engine.run_csd_trial(n, loc, trial_seed, sample_series=sample)
        for n, loc, trial_seed, sample in items
    ]
    elapsed = time.perf_counter() - start
    return (
        chunk_index,
        results,
        telemetry.snapshot(),
        elapsed,
        engine.trials_cached - cached0,
        engine.trials_live - live0,
    )


def run_fig3(
    localities: Optional[Sequence[float]] = None,
    n_trials: int = 5,
    seed: int = 42,
    n_objects_list: Sequence[int] = FIGURE3_NOBJECTS,
    workers: Optional[int] = None,
    engine: Optional[SweepEngine] = None,
    batch_size: Optional[int] = None,
    kernel: str = "route",
) -> Dict[int, List[SimulationResult]]:
    """Engine-path :func:`~repro.csd.simulator.figure3_series`: same
    return shape, byte-identical results, trial batching instead of
    per-point fan-out.  Observation rides along (cached trials replay
    their observation documents byte-for-byte); tracing alone still
    delegates to the legacy traced path, which has no vector cold path,
    so ``kernel`` must stay at its default there.

    ``kernel`` picks the cold-path backend of every engine this sweep
    creates (``"route"`` or ``"vector"``, see
    :class:`~repro.engine.core.SweepEngine`); a caller-supplied
    ``engine`` brings its own kernel and wins.
    """
    if localities is None:
        localities = list(_DEFAULT_LOCALITIES)
    if _traced():
        if kernel != "route":
            raise ValueError(
                "the vector kernel cannot replay tracing; "
                "run without --trace or with kernel='route'"
            )
        return figure3_series(
            localities=localities, n_trials=n_trials, seed=seed,
            n_objects_list=n_objects_list, workers=workers,
        )
    points = [(n, loc) for n in n_objects_list for loc in localities]
    if workers is not None and workers > 1:
        flat = _run_fig3_batched(
            points, n_trials, seed, workers, batch_size, kernel
        )
        results = []
        observing = telemetry.observer().enabled
        for index, (n, loc) in enumerate(points):
            trials = flat[index * n_trials : (index + 1) * n_trials]
            with telemetry.scope("fig3.point"), telemetry.tracer().span(
                "fig3.point", kind="sweep", n_objects=n, locality=loc,
                trials=n_trials, seed=seed,
            ):
                pass  # trials already ran in the pool; keep the timer's call count
            point = _aggregate_point(n, loc, trials)
            if observing:
                record_point_gauges(point)
            results.append(point)
    else:
        eng = engine if engine is not None else SweepEngine(kernel=kernel)
        cached0, live0 = eng.trials_cached, eng.trials_live
        results = [
            _engine_fig3_point(eng, n, loc, n_trials, seed) for n, loc in points
        ]
        _record_engine_telemetry(
            eng.trials_cached - cached0, eng.trials_live - live0
        )
    series: Dict[int, List[SimulationResult]] = {}
    for point in results:
        series.setdefault(point.n_objects, []).append(point)
    return series


def _run_fig3_batched(
    points: List[Tuple[int, float]],
    n_trials: int,
    seed: int,
    workers: int,
    batch_size: Optional[int],
    kernel: str,
) -> List[SimulationResult]:
    from concurrent.futures import ProcessPoolExecutor, as_completed

    tasks = [
        (n, loc, seed + 1000 * t, t == 0)
        for n, loc in points
        for t in range(n_trials)
    ]
    chunks = _chunked(tasks, workers, batch_size)
    observe, stride, profile = _worker_switches()
    payloads = [
        (i, chunk, kernel, observe, stride, profile)
        for i, chunk in enumerate(chunks)
    ]
    done: Dict[int, Tuple[List[SimulationResult], Dict[str, Any], float, int, int]] = {}
    with telemetry.profile_stage("engine.dispatch"):
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_fig3_chunk, payload) for payload in payloads]
            for future in as_completed(futures):
                index, results, snap, elapsed, cached, live = future.result()
                done[index] = (results, snap, elapsed, cached, live)
    flat: List[SimulationResult] = []
    latency = telemetry.histogram("engine.batch.seconds")
    for index in range(len(chunks)):
        results, snap, elapsed, cached, live = done[index]
        telemetry.merge(snap)  # batch-index order == serial trial order
        latency.observe(elapsed)
        _record_engine_telemetry(cached, live)
        flat.extend(results)
    return flat


# -- fault campaign ---------------------------------------------------------


def _faults_chunk(args):
    """Worker entry: one batch of fault trials, each with its own
    counter-delta/recovery capture so the parent can rebuild exact
    per-point captures regardless of how batches split the points."""
    (chunk_index, items, seed, policy_tuple, locality, kernel, csd_rate,
     observe, stride, profile) = args
    telemetry.reset()
    _apply_worker_switches(observe, stride, profile)
    engine = _worker_engine(kernel)
    cached0, live0 = engine.trials_cached, engine.trials_live
    policy = RetryPolicy(*policy_tuple)
    start = time.perf_counter()
    out = []
    for n_objects, rate, trial in items:
        before = _capture_before()
        result = run_fault_trial(
            n_objects, rate, trial, seed, policy=policy, locality=locality,
            engine=engine, csd_rate=csd_rate,
        )
        out.append((result, *_capture_delta(before)))
    elapsed = time.perf_counter() - start
    return (
        chunk_index,
        out,
        telemetry.snapshot(),
        elapsed,
        engine.trials_cached - cached0,
        engine.trials_live - live0,
    )


def run_faults(
    rates: Sequence[float],
    n_objects_list: Sequence[int] = (16, 32, 64),
    n_trials: int = 8,
    seed: int = 42,
    policy: RetryPolicy = DEFAULT_POLICY,
    locality: float = _LOCALITY,
    workers: Optional[int] = None,
    engine: Optional[SweepEngine] = None,
    batch_size: Optional[int] = None,
    kernel: str = "route",
    csd_rate: Optional[float] = None,
) -> Dict[str, Any]:
    """Engine-path :func:`~repro.faults.campaign.run_campaign`: same
    report schema, byte-identical content, trial batching instead of
    per-point fan-out.  Observation rides along (the fault phases sample
    live in the workers; cached CSD phases replay their samples); tracing
    alone still delegates to the legacy traced path.

    ``kernel`` picks the engines' cold-path backend (as in
    :func:`run_fig3`); ``csd_rate`` pins the CSD-segment fault rate
    independently of the swept ``rates`` (as in
    :func:`~repro.faults.campaign.run_campaign`) — ``csd_rate=0.0`` is
    what lets the vector kernel serve the datapath phase of a faulty
    reconfiguration campaign.
    """
    if _traced():
        if kernel != "route":
            raise ValueError(
                "the vector kernel cannot replay tracing; "
                "run without --trace or with kernel='route'"
            )
        return run_campaign(
            rates, n_objects_list=n_objects_list, n_trials=n_trials,
            seed=seed, policy=policy, locality=locality, workers=workers,
            csd_rate=csd_rate,
        )
    if not rates:
        raise ValueError("need at least one fault rate")
    if not n_objects_list:
        raise ValueError("need at least one array size")
    grid = [(n, r) for r in rates for n in n_objects_list]
    points: List[Dict[str, Any]]
    if workers is not None and workers > 1:
        points = _run_faults_batched(
            grid, n_trials, seed, policy, locality, workers, batch_size,
            kernel, csd_rate,
        )
    else:
        from repro.faults.campaign import campaign_point

        eng = engine if engine is not None else SweepEngine(kernel=kernel)
        cached0, live0 = eng.trials_cached, eng.trials_live
        points = [
            campaign_point(
                n, r, n_trials, seed, policy=policy, locality=locality,
                engine=eng, csd_rate=csd_rate,
            )
            for n, r in grid
        ]
        _record_engine_telemetry(
            eng.trials_cached - cached0, eng.trials_live - live0
        )
    report: Dict[str, Any] = {
        "schema": CAMPAIGN_SCHEMA,
        "seed": seed,
        "trials": n_trials,
        "locality": float(locality),
        "rates": [float(r) for r in rates],
        "n_objects": [int(n) for n in n_objects_list],
        "policy": {
            "max_attempts": policy.max_attempts,
            "base_backoff_cycles": policy.base_backoff_cycles,
            "backoff_multiplier": policy.backoff_multiplier,
        },
        "points": points,
    }
    if csd_rate is not None:
        report["csd_rate"] = float(csd_rate)
    return report


def _run_faults_batched(
    grid: List[Tuple[int, float]],
    n_trials: int,
    seed: int,
    policy: RetryPolicy,
    locality: float,
    workers: int,
    batch_size: Optional[int],
    kernel: str,
    csd_rate: Optional[float],
) -> List[Dict[str, Any]]:
    from concurrent.futures import ProcessPoolExecutor, as_completed

    policy_tuple = (
        policy.max_attempts,
        policy.base_backoff_cycles,
        policy.backoff_multiplier,
    )
    tasks = [(n, r, t) for n, r in grid for t in range(n_trials)]
    chunks = _chunked(tasks, workers, batch_size)
    observe, stride, profile = _worker_switches()
    done: Dict[int, Tuple[list, Dict[str, Any], float, int, int]] = {}
    with telemetry.profile_stage("engine.dispatch"):
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _faults_chunk,
                    (i, chunk, seed, policy_tuple, locality, kernel,
                     csd_rate, observe, stride, profile),
                )
                for i, chunk in enumerate(chunks)
            ]
            for future in as_completed(futures):
                index, out, snap, elapsed, cached, live = future.result()
                done[index] = (out, snap, elapsed, cached, live)
    flat: List[Tuple[Dict[str, Any], Dict[str, float], List[float]]] = []
    latency = telemetry.histogram("engine.batch.seconds")
    for index in range(len(chunks)):
        out, snap, elapsed, cached, live = done[index]
        telemetry.merge(snap)  # batch-index order == serial trial order
        latency.observe(elapsed)
        _record_engine_telemetry(cached, live)
        flat.extend(out)
    points: List[Dict[str, Any]] = []
    observing = telemetry.observer().enabled
    for index, (n_objects, rate) in enumerate(grid):
        window = flat[index * n_trials : (index + 1) * n_trials]
        trials = [w[0] for w in window]
        # per-trial captures summed in trial order == one point-wide capture
        deltas = {
            name: sum(w[1][name] for w in window)
            for name in window[0][1]
        }
        recovery: List[float] = []
        for w in window:
            recovery.extend(w[2])
        with telemetry.scope("faults.point"), telemetry.tracer().span(
            "faults.point", kind="campaign", n_objects=n_objects,
            rate=rate, trials=n_trials, seed=seed,
        ):
            pass  # trials already ran in the pool; keep the timer's call count
        if observing:
            record_campaign_gauges(n_objects, rate, trials, recovery)
        points.append(
            _aggregate_campaign_point(
                n_objects, rate, n_trials, locality, trials, deltas, recovery
            )
        )
    return points
