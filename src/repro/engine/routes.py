"""Route memoization: interned channel states + cached grant transitions.

The Figure 3 hot loop resolves the same routing subproblem over and
over: *given this pool occupancy, which channel does the priority
encoder grant for span ``[lo, hi)``?*  The live protocol
(:meth:`repro.csd.dynamic_csd.DynamicCSDNetwork.connect`) answers by
scanning every channel's occupant list per request.  This layer answers
from a cache instead:

* a **channel state** is the canonical immutable form of the pool — one
  tuple per channel of its occupied ``(lo, hi)`` spans, sorted — and is
  *interned* to a small integer id, so states reached by different trials
  through different request orders unify;
* a **transition** ``(state_id, lo, hi) -> (granted, next_state_id)``
  is resolved once with the same first-fit scan the hardware's priority
  encoder performs (lowest channel whose span is free), then served from
  a bounded LRU.

Both tables are bounded.  When the intern table fills, :meth:`transition`
returns ``None`` and the caller continues on live (un-interned) states
via :meth:`resolve_live` — correctness never depends on capacity.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.csd.priority_encoder import PriorityEncoder
from repro.engine.cache import LRUCache, MISSING

__all__ = ["ChannelState", "RouteMemo"]

#: Canonical pool occupancy: per channel, its occupied spans sorted.
ChannelState = Tuple[Tuple[Tuple[int, int], ...], ...]

#: Default intern budget — states are tiny tuples, but a 256-object
#: sweep can visit millions of distinct occupancies; the bound keeps the
#: table from growing with sweep length.
DEFAULT_MAX_STATES = 200_000

#: Default transition-cache capacity.
DEFAULT_MAX_TRANSITIONS = 400_000


class RouteMemo:
    """Grant-resolution cache for one ``(n_channels, n_segments)`` geometry."""

    def __init__(
        self,
        n_channels: int,
        n_segments: int,
        max_states: int = DEFAULT_MAX_STATES,
        max_transitions: int = DEFAULT_MAX_TRANSITIONS,
    ) -> None:
        if n_channels < 1:
            raise ValueError("need at least one channel")
        if n_segments < 1:
            raise ValueError("need at least one segment")
        self.n_channels = n_channels
        self.n_segments = n_segments
        self.max_states = max_states
        self.encoder = PriorityEncoder(n_channels)
        empty: ChannelState = tuple(() for _ in range(n_channels))
        self._state_ids: Dict[ChannelState, int] = {empty: 0}
        self._states: List[ChannelState] = [empty]
        self._transitions: LRUCache = LRUCache(max_transitions)
        #: Transitions that could not be interned (state budget full).
        self.fallbacks = 0

    @property
    def empty_state_id(self) -> int:
        return 0

    def state(self, state_id: int) -> ChannelState:
        return self._states[state_id]

    def state_count(self) -> int:
        return len(self._states)

    # -- resolution --------------------------------------------------------

    def resolve_live(
        self, state: ChannelState, lo: int, hi: int
    ) -> Tuple[Optional[int], ChannelState]:
        """First-fit grant on an explicit state, no caching.

        Mirrors the live protocol exactly: the request survives on every
        channel whose span fits (within the segment range, overlapping no
        occupant) and the priority encoder grants the lowest survivor.
        """
        if hi > self.n_segments:
            return None, state

        def is_free(idx: int) -> bool:
            return all(
                hi <= s_lo or s_hi <= lo for s_lo, s_hi in state[idx]
            )

        granted = self.encoder.grant_first_fit(is_free)
        if granted is None:
            return None, state
        spans = tuple(sorted(state[granted] + ((lo, hi),)))
        return granted, state[:granted] + (spans,) + state[granted + 1 :]

    def transition(
        self, state_id: int, lo: int, hi: int
    ) -> Optional[Tuple[Optional[int], int]]:
        """Cached grant: ``(granted_channel_or_None, next_state_id)``.

        Returns ``None`` (not a transition) only when the successor
        state would exceed the intern budget — the caller must then
        materialize the state and continue with :meth:`resolve_live`.
        """
        key = (state_id, lo, hi)
        cached = self._transitions.get_or_miss(key)
        if cached is not MISSING:
            return cached
        granted, next_state = self.resolve_live(self._states[state_id], lo, hi)
        if granted is None:
            result = (None, state_id)
        else:
            next_id = self._state_ids.get(next_state)
            if next_id is None:
                if len(self._states) >= self.max_states:
                    self.fallbacks += 1
                    return None
                next_id = len(self._states)
                self._state_ids[next_state] = next_id
                self._states.append(next_state)
            result = (granted, next_id)
        self._transitions.put(key, result)
        return result

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, int]:
        out = {"states": len(self._states), "fallbacks": self.fallbacks}
        out.update(
            {f"transition_{k}": v for k, v in self._transitions.stats().items()}
        )
        return out
