"""A small bounded LRU cache with hit/miss accounting.

The engine's memoization layers (trial results, request sets, route
transitions) all need the same thing: a dict with an eviction policy and
enough bookkeeping to report a hit rate.  ``functools.lru_cache`` wraps
functions, not keys the caller constructs, and carries no eviction
counter — so the engine owns this ~60-line cache instead.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional

__all__ = ["LRUCache", "MISSING"]

#: Public miss sentinel returned by :meth:`LRUCache.get_or_miss` — the
#: only value the cache can never store, so a cached ``None`` (or any
#: other falsy result) is distinguishable from a genuine miss.
MISSING = object()

_MISSING = MISSING


class LRUCache:
    """Bounded mapping with least-recently-used eviction.

    ``get`` refreshes recency; ``put`` inserts (or refreshes) and evicts
    the stalest entry once ``capacity`` is exceeded.  ``hits`` /
    ``misses`` / ``evictions`` make cache effectiveness observable.
    """

    __slots__ = ("capacity", "hits", "misses", "evictions", "_data")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("cache needs capacity for at least one entry")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()

    def get(self, key: Hashable, default: Any = None) -> Any:
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def get_or_miss(self, key: Hashable) -> Any:
        """Like :meth:`get`, but a miss returns the :data:`MISSING`
        sentinel instead of ``None`` — callers that may legitimately
        cache falsy values (``None``, ``0``, ``()``) must use this, or
        every such entry is recomputed (and miscounted as a miss)
        forever."""
        value = self._data.get(key, MISSING)
        if value is MISSING:
            self.misses += 1
            return MISSING
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        # membership test, deliberately without touching recency or stats
        return key in self._data

    def clear(self) -> None:
        """Drop every entry; the hit/miss tallies survive (they describe
        lifetime effectiveness, not current contents)."""
        self._data.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "size": len(self._data),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LRUCache(size={len(self._data)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )
