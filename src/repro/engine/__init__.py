"""High-throughput batched sweep engine (shared by the fig3/faults CLIs).

Layers, bottom up:

* :mod:`repro.engine.cache` — the bounded LRU both caches sit on;
* :mod:`repro.engine.routes` — :class:`RouteMemo`, the interned
  channel-occupancy state machine with a memoized transition table;
* :mod:`repro.engine.core` — :class:`SweepEngine`, the memoizing trial
  runner with byte-identical telemetry replay;
* :mod:`repro.engine.sweep` — batched, load-balanced dispatch of whole
  sweeps (:func:`run_fig3`, :func:`run_faults`).

Everything here is an accelerator, never an oracle: any cache miss,
capacity overflow, or instrumentation request falls back to the live
simulator, and cached output is byte-identical to the serial paths.
"""

from repro.engine.cache import LRUCache, MISSING
from repro.engine.core import SweepEngine, TrialEntry
from repro.engine.routes import RouteMemo
from repro.engine.sweep import run_faults, run_fig3

__all__ = [
    "LRUCache",
    "MISSING",
    "RouteMemo",
    "SweepEngine",
    "TrialEntry",
    "run_fig3",
    "run_faults",
]
