"""Seeded async load generator for the fabric service.

``build_script`` expands a :class:`LoadConfig` into per-tenant request
scripts — pure functions of the seed, independent of any runtime state.
Each tenant gets its own :class:`random.Random` stream (seeded
``seed * 1_000_003 + index``), a shard *slot* pinned to
``index * quota`` on the serpentine fold (so placement never depends on
admission order), and a closed loop of create / scale / send / destroy
traffic whose issue cycles advance by jittered inter-arrival gaps drawn
around ``CYCLES_PER_SECOND / rps``.

``run_load`` drives the scripts concurrently — every tenant is an
asyncio task, over an in-process client or a real TCP connection — then
folds the completion records into one canonical report.  The report
carries **no wall-clock values and no transport marks**: requests and
latencies are counted in simulated cycles, records are sorted by
``(tenant, seq)`` before aggregation, and JSON is rendered with sorted
keys.  Same seed → byte-identical report, whatever the event loop did.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import random
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.service.fabric import ResidentFabric
from repro.service.protocol import PROTOCOL_SCHEMA, make_request
from repro.service.server import (
    FabricServer,
    FabricService,
    InProcessClient,
    TCPClient,
)

__all__ = [
    "CYCLES_PER_SECOND",
    "REPORT_SCHEMA",
    "RECORDS_SCHEMA",
    "LoadConfig",
    "build_script",
    "execute_load",
    "run_load",
    "build_report",
    "records_document",
    "report_json",
]

#: Exchange rate between the requested wall-clock ``rps`` and the
#: simulated issue-cycle gaps the scripts are built from.
CYCLES_PER_SECOND = 1_000_000

#: Version tag of the canonical load report.  /2 added per-tenant
#: latency percentiles and the per-op-kind latency breakdown.
REPORT_SCHEMA = "repro.service.load/2"

#: Version tag of the raw completion-record dump (``--records``), the
#: input ``repro slo-report`` evaluates objectives over.
RECORDS_SCHEMA = "repro.service.records/1"


@dataclass(frozen=True)
class LoadConfig:
    """Everything the load generator's output is a function of."""

    tenants: int = 4
    #: Operations per tenant, between its ``hello`` and its ``bye``.
    requests: int = 32
    #: Nominal request rate each tenant aims for (converted to
    #: simulated inter-arrival gaps via :data:`CYCLES_PER_SECOND`).
    rps: float = 500.0
    seed: int = 42
    rows: int = 8
    cols: int = 8

    def __post_init__(self) -> None:
        if self.tenants < 1:
            raise ValueError("need at least one tenant")
        if self.requests < 0:
            raise ValueError("requests per tenant cannot be negative")
        if self.rps <= 0:
            raise ValueError("rps must be positive")
        if self.rows < 1 or self.cols < 1:
            raise ValueError("die needs at least one cluster")
        if self.quota < 1:
            raise ValueError(
                f"{self.tenants} tenants cannot shard a "
                f"{self.rows}x{self.cols} die (quota would be zero)"
            )

    @property
    def quota(self) -> int:
        """Clusters each tenant's shard gets (equal slices of the fold)."""
        return (self.rows * self.cols) // self.tenants


def build_script(config: LoadConfig, index: int) -> List[Dict[str, Any]]:
    """The full request script for tenant ``index`` — seed-pure.

    The script tracks its own optimistic model of the tenant's
    processors to keep most requests admissible; the ones that still
    get rejected (shard fragmentation the model cannot see) are
    rejected identically on every run, so they do not hurt determinism.
    """
    rng = random.Random(config.seed * 1_000_003 + index)
    name = f"t{index:02d}"
    quota = config.quota
    gap_mean = max(1, round(CYCLES_PER_SECOND / config.rps))
    procs: Dict[str, int] = {}
    created = 0
    cycle = rng.randint(0, gap_mean)
    script = [
        make_request(
            "hello", name, 0, cycle,
            clusters=quota, processors=4, mailbox_slots=8,
            slot=index * quota,
        )
    ]
    for seq in range(1, config.requests + 1):
        cycle += rng.randint(1, 2 * gap_mean - 1) if gap_mean > 1 else 1
        owned = sum(procs.values())
        ops: List[str] = ["stats"]
        if len(procs) < 4 and owned < quota:
            ops += ["create"] * 4
        if procs and owned < quota:
            ops += ["scale_up"] * 3
        if any(n > 1 for n in procs.values()):
            ops += ["scale_down"] * 2
        if procs:
            ops += ["destroy"]
        if len(procs) >= 2:
            ops += ["send"] * 3
        op = rng.choice(ops)
        if op == "create":
            proc = f"p{created}"
            created += 1
            clusters = rng.randint(1, max(1, min(3, quota - owned)))
            procs[proc] = clusters
            script.append(
                make_request(
                    "create", name, seq, cycle,
                    processor=proc, clusters=clusters,
                )
            )
        elif op == "scale_up":
            proc = rng.choice(sorted(procs))
            extra = rng.randint(1, max(1, min(2, quota - owned)))
            procs[proc] += extra
            script.append(
                make_request(
                    "scale_up", name, seq, cycle, processor=proc, extra=extra
                )
            )
        elif op == "scale_down":
            proc = rng.choice(sorted(p for p, n in procs.items() if n > 1))
            drop = rng.randint(1, procs[proc] - 1)
            procs[proc] -= drop
            script.append(
                make_request(
                    "scale_down", name, seq, cycle, processor=proc, drop=drop
                )
            )
        elif op == "destroy":
            proc = rng.choice(sorted(procs))
            del procs[proc]
            script.append(
                make_request("destroy", name, seq, cycle, processor=proc)
            )
        elif op == "send":
            src, dst = rng.sample(sorted(procs), 2)
            script.append(
                make_request(
                    "send", name, seq, cycle,
                    src=src, dst=dst, key=f"k{seq}", value=seq,
                )
            )
        else:
            script.append(make_request("stats", name, seq, cycle))
    cycle += rng.randint(1, 2 * gap_mean - 1) if gap_mean > 1 else 1
    script.append(make_request("bye", name, config.requests + 1, cycle))
    return script


# -- execution ---------------------------------------------------------------


async def _run_tenant(client: Any, script: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Closed loop: each request waits for its predecessor's response."""
    responses = []
    try:
        for request in script:
            responses.append(await client.request(request))
    finally:
        await client.close()
    return responses


async def _execute_inproc(config: LoadConfig) -> List[Dict[str, Any]]:
    service = FabricService(ResidentFabric(config.rows, config.cols))
    tasks = [
        _run_tenant(InProcessClient(service), build_script(config, i))
        for i in range(config.tenants)
    ]
    batches = await asyncio.gather(*tasks)
    return [response for batch in batches for response in batch]


async def _execute_tcp(config: LoadConfig) -> List[Dict[str, Any]]:
    service = FabricService(ResidentFabric(config.rows, config.cols))
    async with FabricServer(service) as server:
        clients = [
            await TCPClient.connect(server.host, server.port)
            for _ in range(config.tenants)
        ]
        tasks = [
            _run_tenant(clients[i], build_script(config, i))
            for i in range(config.tenants)
        ]
        batches = await asyncio.gather(*tasks)
    return [response for batch in batches for response in batch]


async def _execute_connect(
    config: LoadConfig, host: str, port: int
) -> List[Dict[str, Any]]:
    """Drive the scripts against an already-running external server."""
    clients = [
        await TCPClient.connect(host, port) for _ in range(config.tenants)
    ]
    tasks = [
        _run_tenant(clients[i], build_script(config, i))
        for i in range(config.tenants)
    ]
    batches = await asyncio.gather(*tasks)
    return [response for batch in batches for response in batch]


def execute_load(
    config: LoadConfig,
    transport: str = "inproc",
    connect: Optional[Tuple[str, int]] = None,
) -> List[Dict[str, Any]]:
    """Run the seeded load and return the raw completion records.

    ``transport`` is ``"inproc"`` (frame round-trip against the service
    object) or ``"tcp"`` (a real :class:`FabricServer` on an ephemeral
    localhost port).  ``connect=(host, port)`` instead drives an
    external, already-running ``repro serve`` — which is how CI scrapes
    a live ``/metrics`` endpoint mid-load.
    """
    if connect is not None:
        return asyncio.run(_execute_connect(config, *connect))
    if transport == "inproc":
        return asyncio.run(_execute_inproc(config))
    if transport == "tcp":
        return asyncio.run(_execute_tcp(config))
    raise ValueError(f"unknown transport {transport!r}")


def run_load(config: LoadConfig, transport: str = "inproc") -> Dict[str, Any]:
    """Run the whole seeded load and return its canonical report.

    The returned report is transport-free: CI compares the ``inproc``
    and ``tcp`` renderings byte-for-byte.
    """
    return build_report(config, execute_load(config, transport))


# -- reporting ---------------------------------------------------------------


def _percentile(ordered: List[int], p: int) -> int:
    """Nearest-rank percentile of an ascending list (0 when empty)."""
    if not ordered:
        return 0
    rank = max(1, -(-len(ordered) * p // 100))
    return ordered[rank - 1]


def _latency_stats(latencies: List[int]) -> Dict[str, int]:
    """The canonical percentile block over an ascending latency list."""
    return {
        "p50": _percentile(latencies, 50),
        "p95": _percentile(latencies, 95),
        "p99": _percentile(latencies, 99),
        "max": latencies[-1] if latencies else 0,
    }


def _per_op_breakdown(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Latency percentiles per op kind, sorted by op name.

    Accepted requests are grouped under their op; every rejection lands
    under the ``"reject"`` pseudo-kind regardless of the op that was
    refused — the admission path has one latency profile, not one per
    refused verb.
    """
    groups: Dict[str, List[int]] = {}
    counts: Dict[str, Dict[str, int]] = {}
    for record in records:
        op = record["op"]
        stats = counts.setdefault(op, {"requests": 0, "ok": 0, "rejected": 0})
        stats["requests"] += 1
        if record["ok"]:
            stats["ok"] += 1
            groups.setdefault(op, []).append(record["latency_cycles"])
        else:
            stats["rejected"] += 1
            groups.setdefault("reject", []).append(record["latency_cycles"])
    breakdown = []
    for op in sorted(set(groups) | set(counts)):
        stats = counts.get(op, {"requests": 0, "ok": 0, "rejected": 0})
        entry: Dict[str, Any] = {"op": op}
        if op == "reject":
            entry["requests"] = len(groups.get("reject", []))
        else:
            entry.update(stats)
        entry["latency_cycles"] = _latency_stats(
            sorted(groups.get(op, []))
        )
        breakdown.append(entry)
    return breakdown


def build_report(
    config: LoadConfig, records: List[Dict[str, Any]]
) -> Dict[str, Any]:
    """Fold completion records into the canonical report.

    Records are sorted by ``(tenant, seq)`` first — the report is a
    function of the *set* of completions, never of arrival order.
    """
    records = sorted(records, key=lambda r: (r["tenant"], r["seq"]))
    ok = [r for r in records if r["ok"]]
    latencies = sorted(r["latency_cycles"] for r in ok)
    makespan = max((r["completion_cycle"] for r in records), default=0)
    n_clusters = config.rows * config.cols

    per_tenant = []
    total_cluster_cycles = 0
    for name in sorted({r["tenant"] for r in records}):
        mine = [r for r in records if r["tenant"] == name]
        bye = next(
            (r for r in mine if r["op"] == "bye" and r["ok"]), None
        )
        cluster_cycles = bye["result"]["cluster_cycles"] if bye else 0
        total_cluster_cycles += cluster_cycles
        per_tenant.append(
            {
                "tenant": name,
                "requests": len(mine),
                "ok": sum(1 for r in mine if r["ok"]),
                "rejected": sum(1 for r in mine if not r["ok"]),
                "final_cycle": max(r["completion_cycle"] for r in mine),
                "cluster_cycles": cluster_cycles,
                "latency_cycles": _latency_stats(
                    sorted(r["latency_cycles"] for r in mine if r["ok"])
                ),
            }
        )

    canonical_records = json.dumps(
        records, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return {
        "schema": REPORT_SCHEMA,
        "protocol": PROTOCOL_SCHEMA,
        "config": asdict(config),
        "requests": {
            "total": len(records),
            "ok": len(ok),
            "rejected": len(records) - len(ok),
        },
        "latency_cycles": _latency_stats(latencies),
        "per_op": _per_op_breakdown(records),
        "fabric": {
            "clusters": n_clusters,
            "makespan_cycles": makespan,
            "cluster_cycles": total_cluster_cycles,
            "utilization": (
                total_cluster_cycles / (n_clusters * makespan)
                if makespan
                else 0.0
            ),
        },
        "per_tenant": per_tenant,
        "records_sha256": hashlib.sha256(canonical_records).hexdigest(),
    }


def records_document(
    config: LoadConfig, records: List[Dict[str, Any]]
) -> Dict[str, Any]:
    """The raw completion-record dump ``repro slo-report`` re-reads.

    Records are sorted by ``(tenant, seq)`` so the document, like every
    report here, is a function of the completion *set* only.
    """
    return {
        "schema": RECORDS_SCHEMA,
        "protocol": PROTOCOL_SCHEMA,
        "config": asdict(config),
        "records": sorted(records, key=lambda r: (r["tenant"], r["seq"])),
    }


def report_json(report: Dict[str, Any]) -> str:
    """Render a report canonically (sorted keys, trailing newline)."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"
