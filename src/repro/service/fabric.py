"""The resident fabric: one live die shared by many tenants.

Before this module every workload constructed a fresh
:class:`~repro.core.vlsi_processor.VLSIProcessor`, ran one trial, and
threw it away — "``run_trial`` owns the world".  A :class:`ResidentFabric`
inverts that: the processor, its S-topology, and its wormhole
configurator live for the whole service lifetime, and *tenants* come
and go around them.

Multi-tenancy rests on three mechanisms:

* **Shards** — admission carves the die's serpentine fold into disjoint
  per-tenant slices.  Every allocation and every up-scale a tenant
  requests is confined to its shard (the ``within=`` scope added to
  :class:`~repro.core.allocation.ClusterAllocator` and
  :class:`~repro.core.scaling.ScalingController`), so no tenant's
  placement can observe — or collide with — another tenant's occupancy.
* **Quotas** — per-tenant caps on clusters, live processors, and
  mailbox slots.  Exceeding one raises :class:`~repro.errors.QuotaError`
  before any fabric state is touched.
* **Reservation flags** — every mutating scale-up runs the §3.3
  reserve→commit worm through the shared
  :class:`~repro.noc.wormhole.WormholeConfigurator`; a failed worm
  (fault, conflict, disconnect-triggered abort) rolls its flags back,
  so the fabric never carries a partial configuration between requests.

Every operation returns ``(result, cost_cycles)``; the cost is a
deterministic function of the operation and the tenant's own shard
state — the foundation of the service's byte-identical latency reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro import telemetry
from repro.errors import (
    AdmissionError,
    ConfigurationError,
    QuotaError,
    ServiceError,
)
from repro.core.scaling import ScalingController
from repro.core.states import ProcessorState
from repro.core.vlsi_processor import ProcessorInstance, VLSIProcessor
from repro.topology.metrics import manhattan

__all__ = ["TenantQuota", "Tenant", "ResidentFabric"]

Coord = Tuple[int, int]


@dataclass(frozen=True)
class TenantQuota:
    """Admission-time resource caps for one tenant."""

    #: Shard size: the tenant may never own more clusters than this.
    clusters: int
    #: Maximum simultaneously-live processors.
    processors: int = 8
    #: Mailbox capacity (distinct occupied slots) per processor.
    mailbox_slots: int = 64

    def __post_init__(self) -> None:
        if self.clusters < 1:
            raise ValueError("quota needs at least one cluster")
        if self.processors < 1:
            raise ValueError("quota needs at least one processor")
        if self.mailbox_slots < 1:
            raise ValueError("quota needs at least one mailbox slot")


@dataclass
class Tenant:
    """One admitted tenant's shard, quota, and virtual clock."""

    name: str
    shard: Tuple[Coord, ...]
    quota: TenantQuota
    #: Simulated cycle at which the tenant's last operation completed.
    clock: int = 0
    #: Switch writes + config flits the planner has saved this tenant
    #: versus release-then-reconfigure (stays 0 without a planner).
    rewires_saved: int = 0
    #: Integration mark for :attr:`cluster_cycles` (last accounted cycle).
    mark: int = 0
    #: ∫ owned-clusters d(cycle) — the tenant's share of fabric occupancy.
    cluster_cycles: int = 0
    requests: int = 0
    rejections: int = 0
    _shard_set: frozenset = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._shard_set = frozenset(self.shard)

    @property
    def shard_set(self) -> frozenset:
        return self._shard_set


class ResidentFabric:
    """A long-lived :class:`VLSIProcessor` multiplexed across tenants.

    Parameters
    ----------
    rows, cols:
        Die dimensions.
    max_tenants:
        Admission cap; ``None`` means "as many as the die can shard".
    with_network:
        Attach the cycle-level router network so configuration worms
        are actually delivered and timed (their measured delivery
        latency feeds the service's cost model).
    planner:
        ``None`` (default) keeps the pre-planner behaviour
        byte-identical; ``"minimal"`` routes tenant resize operations
        through :class:`repro.planner.MinimalPlanner` (an up-scale with
        no free adjacent extension relocates the processor inside its
        shard as one delta rewire instead of failing, and rewiring
        savings surface in responses and ``tenant_stats``).  A planner
        instance may also be passed directly.
    """

    def __init__(
        self,
        rows: int = 8,
        cols: int = 8,
        max_tenants: Optional[int] = None,
        with_network: bool = True,
        planner: Optional[Any] = None,
    ) -> None:
        if planner == "minimal":
            # imported lazily so the default service path never touches
            # the planner package
            from repro.planner import MinimalPlanner

            planner = MinimalPlanner()
        self.planner = planner
        self.vlsi = VLSIProcessor(rows, cols, with_network=with_network)
        self.scaler = ScalingController(self.vlsi, planner=planner)
        self.max_tenants = max_tenants
        self.tenants: Dict[str, Tenant] = {}
        self._shard_owner: Dict[Coord, str] = {}
        #: Tenants admitted over the fabric's lifetime (monotonic).
        self.admitted_total = 0

    # -- admission control -------------------------------------------------

    def admit(
        self,
        name: str,
        clusters: int,
        processors: int = 8,
        mailbox_slots: int = 64,
        slot: Optional[int] = None,
    ) -> Tuple[Tenant, int]:
        """Admit a tenant, carving its shard out of the fold.

        ``slot`` pins the shard to ``linear_order()[slot:slot+clusters]``
        — a placement hint clients use for cross-run determinism (the
        load generator always passes one).  Without it the first free
        run of un-sharded clusters along the fold is taken, which
        depends on who is currently resident.

        Returns ``(tenant, cost_cycles)``.

        Raises
        ------
        AdmissionError
            Duplicate tenant, tenant cap reached, shard slot out of
            bounds or overlapping a resident tenant, or no free run of
            the requested scale.
        """
        if name in self.tenants:
            raise AdmissionError(f"tenant {name!r} already admitted")
        if self.max_tenants is not None and len(self.tenants) >= self.max_tenants:
            raise AdmissionError(
                f"tenant cap reached ({self.max_tenants} resident)"
            )
        quota = TenantQuota(clusters, processors, mailbox_slots)
        order = self.vlsi.fabric.linear_order()
        if slot is not None:
            if slot < 0 or slot + clusters > len(order):
                raise AdmissionError(
                    f"shard slot {slot}+{clusters} outside the "
                    f"{len(order)}-cluster fold"
                )
            shard = tuple(order[slot : slot + clusters])
            taken = [c for c in shard if c in self._shard_owner]
            if taken:
                raise AdmissionError(
                    f"shard slot {slot}+{clusters} overlaps tenant "
                    f"{self._shard_owner[taken[0]]!r} at {taken[0]}"
                )
        else:
            shard = self._first_free_run(order, clusters)
            if shard is None:
                raise AdmissionError(
                    f"no free {clusters}-cluster shard on the fold "
                    f"({len(order) - len(self._shard_owner)} un-sharded)"
                )
        tenant = Tenant(name=name, shard=shard, quota=quota)
        self.tenants[name] = tenant
        for coord in shard:
            self._shard_owner[coord] = name
        self.admitted_total += 1
        telemetry.counter("service.admissions").inc()
        # shard scan + switch-flag initialisation: one cycle per cluster
        return tenant, 1 + clusters

    def _first_free_run(
        self, order: List[Coord], n: int
    ) -> Optional[Tuple[Coord, ...]]:
        run: List[Coord] = []
        for coord in order:
            if coord in self._shard_owner:
                run = []
                continue
            run.append(coord)
            if len(run) == n:
                return tuple(run)
        return None

    def evict(self, name: str) -> Tuple[Dict[str, Any], int]:
        """Remove a tenant: destroy its processors, free its shard.

        Used both by a graceful ``bye`` and by the server's disconnect
        cleanup.  Returns ``(summary, cost_cycles)``.
        """
        tenant = self._tenant(name)
        released = 0
        for proc in sorted(self._tenant_processors(name)):
            released += len(self.vlsi.processor(proc).region)
            self.vlsi.destroy_processor(proc)
        for coord in tenant.shard:
            del self._shard_owner[coord]
        del self.tenants[name]
        telemetry.counter("service.evictions").inc()
        summary = {
            "released_clusters": released,
            "cluster_cycles": tenant.cluster_cycles,
            "requests": tenant.requests,
            "rejections": tenant.rejections,
        }
        return summary, 1 + released

    # -- tenant operations -------------------------------------------------

    def create(
        self, name: str, proc: str, clusters: int
    ) -> Tuple[Dict[str, Any], int]:
        """Create a processor of ``clusters`` clusters inside the shard."""
        tenant = self._tenant(name)
        if clusters < 1:
            raise ServiceError("need at least one cluster")
        self._check_cluster_quota(tenant, clusters)
        if len(self._tenant_processors(name)) >= tenant.quota.processors:
            raise QuotaError(
                f"tenant {name!r} at its processor quota "
                f"({tenant.quota.processors})"
            )
        qualified = self._qualify(name, proc)
        instance = self.vlsi.create_processor(
            qualified, clusters, within=tenant.shard_set
        )
        instance.mailbox.capacity = tenant.quota.mailbox_slots
        cost = 1 + instance.config_cycles + len(instance.region)
        return {
            "processor": proc,
            "clusters": len(instance.region),
            "head": list(instance.region.path[0]),
            "config_cycles": instance.config_cycles,
        }, cost

    def scale_up(
        self, name: str, proc: str, extra: int
    ) -> Tuple[Dict[str, Any], int]:
        """Chain ``extra`` free shard clusters onto the processor's tail.

        The extension runs the full §3.3 reserve→commit worm; a failed
        worm rolls back its reservation flags and leaves the processor
        at its previous scale.
        """
        tenant = self._tenant(name)
        if extra < 1:
            raise ServiceError("need at least one extra cluster")
        self._check_cluster_quota(tenant, extra)
        qualified = self._qualify(name, proc)
        instance = self.scaler.up_scale(
            qualified, extra, within=tenant.shard_set
        )
        # per-operation worm latency, not the lifetime total the
        # instance now accumulates — keeps the cost model (and the
        # byte-identical latency reports) exactly as before
        cost = 1 + instance.last_config_cycles + extra
        result = {
            "processor": proc,
            "clusters": len(instance.region),
            "config_cycles": instance.last_config_cycles,
        }
        if self.planner is not None:
            saved = self.scaler.last_rewire_saved
            tenant.rewires_saved += saved
            result["rewires_saved"] = saved
        return result, cost

    def scale_down(
        self, name: str, proc: str, drop: int
    ) -> Tuple[Dict[str, Any], int]:
        """Unchain ``drop`` clusters from the processor's tail."""
        tenant = self._tenant(name)
        if drop < 1:
            raise ServiceError("need at least one cluster to drop")
        qualified = self._qualify(name, proc)
        instance = self.scaler.down_scale(qualified, drop)
        # "clearing active state": two switch writes per dropped junction
        result = {
            "processor": proc,
            "clusters": len(instance.region),
        }
        if self.planner is not None:
            saved = self.scaler.last_rewire_saved
            tenant.rewires_saved += saved
            result["rewires_saved"] = saved
        return result, 1 + 2 * drop

    def destroy(self, name: str, proc: str) -> Tuple[Dict[str, Any], int]:
        """Down-scale a processor to nothing (back to the release pool)."""
        self._tenant(name)
        qualified = self._qualify(name, proc)
        released = len(self.vlsi.processor(qualified).region)
        self.vlsi.destroy_processor(qualified)
        return {"processor": proc, "released_clusters": released}, 1 + released

    def send(
        self, name: str, src: str, dst: str, key: str, value: Any
    ) -> Tuple[Dict[str, Any], int]:
        """§3.4 delivery between two of the tenant's processors."""
        self._tenant(name)
        src_q = self._qualify(name, src)
        dst_q = self._qualify(name, dst)
        src_head = self.vlsi.processor(src_q).region.path[0]
        dst_head = self.vlsi.processor(dst_q).region.path[0]
        self.vlsi.send(src_q, dst_q, key, value)
        # the store crosses the chain network head-to-head
        return {
            "src": src,
            "dst": dst,
            "key": key,
        }, 1 + manhattan(src_head, dst_head)

    def tenant_stats(self, name: str) -> Tuple[Dict[str, Any], int]:
        """The tenant's own occupancy — what the ``stats`` op returns.

        Deliberately scoped to the requesting tenant: a fabric-wide
        snapshot is a function of the live interleaving (who else is
        resident *right now*), which would leak scheduling into the
        completion records and break byte-identical reports.  The
        global view stays available to operators via :meth:`stats`.
        """
        tenant = self._tenant(name)
        result = {
            "processors": len(self._tenant_processors(name)),
            "owned_clusters": self.owned_clusters(name),
            "shard_clusters": len(tenant.shard),
            "quota_clusters": tenant.quota.clusters,
        }
        if self.planner is not None:
            result["rewires_saved"] = tenant.rewires_saved
        return result, 1

    def stats(self) -> Tuple[Dict[str, Any], int]:
        """Fabric-wide occupancy snapshot, for operators (``repro
        serve`` logging) — not exposed through the request protocol;
        see :meth:`tenant_stats` for why."""
        return {
            "tenants": len(self.tenants),
            "processors": len(self.vlsi.processors),
            "free_clusters": self.vlsi.free_clusters(),
            "utilization": self.vlsi.utilization(),
            "reserved_switches": self.reserved_switch_count(),
        }, 1

    # -- queries -----------------------------------------------------------

    def owned_clusters(self, name: str) -> int:
        """Clusters currently owned by ``name``'s processors."""
        return sum(
            len(self.vlsi.processor(p).region)
            for p in self._tenant_processors(name)
        )

    def reserved_switch_count(self) -> int:
        """Reservation flags currently planted on the fabric — zero
        whenever no scaling worm is in flight (the rollback invariant
        the admission tests pin)."""
        return sum(
            1 for sw in self.vlsi.fabric.all_switches() if sw.is_reserved
        )

    def lifecycle_census(self) -> Dict[str, int]:
        return self.vlsi.lifecycle_census()

    def processor_state(self, name: str, proc: str) -> ProcessorState:
        return self.vlsi.processor(self._qualify(name, proc)).state.state

    def instance(self, name: str, proc: str) -> ProcessorInstance:
        return self.vlsi.processor(self._qualify(name, proc))

    # -- internals ---------------------------------------------------------

    def _tenant(self, name: str) -> Tenant:
        try:
            return self.tenants[name]
        except KeyError:
            raise ServiceError(f"tenant {name!r} not admitted") from None

    def _tenant_processors(self, name: str) -> List[str]:
        prefix = f"{name}/"
        return [p for p in self.vlsi.processors if p.startswith(prefix)]

    def _check_cluster_quota(self, tenant: Tenant, extra: int) -> None:
        owned = self.owned_clusters(tenant.name)
        if owned + extra > tenant.quota.clusters:
            raise QuotaError(
                f"tenant {tenant.name!r} owns {owned} clusters; {extra} more "
                f"would exceed its quota of {tenant.quota.clusters}"
            )

    @staticmethod
    def _qualify(name: str, proc: str) -> str:
        if not proc or "/" in proc:
            raise ConfigurationError(
                f"processor name {proc!r} must be non-empty and free of '/'"
            )
        return f"{name}/{proc}"
