"""The fabric service: request handling, virtual clocks, transports.

:class:`FabricService` is the transport-free heart — a *synchronous*
``handle(request) -> response`` (synchronous on purpose: under asyncio a
handler that never awaits is atomic, so every fabric mutation and its
reservation worm runs to completion or rolls back before any other
request is looked at).  :class:`FabricServer` wraps it in an asyncio TCP
front end; :class:`InProcessClient` and :class:`TCPClient` drive it over
either transport through the identical frame round-trip.

Latency accounting is the part worth reading twice.  Each tenant carries
a **virtual clock** in simulated cycles::

    start      = max(issue_cycle, tenant.clock)   # queue behind own ops
    completion = start + cost                      # deterministic cost
    latency    = completion - issue_cycle

Tenants occupy disjoint shards, so one tenant's operations never change
what another tenant's cost — and the event-loop interleaving of their
requests never leaks into any clock.  That is the whole determinism
argument: the report is a function of (seed, config), not of scheduling.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional

from repro import telemetry
from repro.errors import ProtocolError, ReproError
from repro.telemetry.observe import Sampler, point_label
from repro.service.fabric import ResidentFabric, Tenant
from repro.service.protocol import (
    PROTOCOL_SCHEMA,
    decode_payload,
    encode_frame,
    read_frame,
    validate_request,
    write_frame,
)

__all__ = ["FabricService", "FabricServer", "InProcessClient", "TCPClient"]

#: Simulated cost of a rejected request: one cycle of admission logic.
REJECT_COST = 1

#: Virtual-cycle bucket width of the ``service.rejections`` heatmap —
#: the admission-rejection panel's time resolution.
SERVICE_WINDOW_CYCLES = 8192


class FabricService:
    """Stateless-per-request handler over a :class:`ResidentFabric`."""

    def __init__(self, fabric: Optional[ResidentFabric] = None) -> None:
        self.fabric = fabric if fabric is not None else ResidentFabric()
        self.handled = 0
        #: Per-tenant occupancy samplers, built lazily while observation
        #: is enabled and ticked along each tenant's own virtual clock.
        self._samplers: Dict[str, Sampler] = {}

    # -- request handling --------------------------------------------------

    def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Execute one request, returning its response envelope.

        Domain failures (admission, quota, region, state, fault-aborted
        worms — anything deriving from :class:`~repro.errors.ReproError`)
        become ``ok: false`` responses with a one-cycle cost; they never
        tear the connection down.  Non-domain exceptions propagate —
        those are bugs, not rejections.
        """
        with telemetry.profile_stage("service.handle"):
            response = self._handle(request)
        self.handled += 1
        telemetry.counter("service.requests").inc()
        if response["ok"]:
            telemetry.counter(f"service.ops.{response['op']}").inc()
            telemetry.histogram("service.latency.cycles").observe(
                response["latency_cycles"]
            )
        else:
            telemetry.counter("service.rejections").inc()
            if telemetry.observer().enabled:
                # admission-rejection heatmap: tenant row, windowed cycle
                window = SERVICE_WINDOW_CYCLES
                telemetry.heatmap("service.rejections").add(
                    response["tenant"],
                    (response["completion_cycle"] // window) * window,
                    1.0,
                )
        tracer = telemetry.tracer()
        if tracer.enabled:
            self._trace_request(tracer, response)
        return response

    @staticmethod
    def _trace_request(tracer: Any, response: Dict[str, Any]) -> None:
        """Emit the causal span tree of one handled request.

        Timestamps are the envelope's **virtual-clock** cycles (issue,
        start, completion), never wall time, so the exported Chrome
        trace is byte-identical across transports and reruns.  The root
        ``service.request`` span carries tenant/seq/op; its children
        decompose the cost model: admission (queueing behind the
        tenant's own clock), the quota check, the allocation/scaling
        apply, and the response encode cycle.
        """
        issue = response["issue_cycle"]
        start = response["start_cycle"]
        completion = response["completion_cycle"]
        root = tracer.start(
            "service.request",
            kind="service",
            cycle=issue,
            tenant=response["tenant"],
            seq=response["seq"],
            op=response["op"],
        )
        tracer.complete(
            "service.admission", cycle_start=issue, cycle_end=start,
            kind="service",
        )
        if response["ok"]:
            encode_at = max(start, completion - 1)
            tracer.complete(
                "service.quota", cycle_start=start, cycle_end=start,
                kind="service",
            )
            tracer.complete(
                "service.apply", cycle_start=start, cycle_end=encode_at,
                kind="service", op=response["op"],
            )
            tracer.complete(
                "service.encode", cycle_start=encode_at,
                cycle_end=completion, kind="service",
            )
            root.end(cycle=completion)
        else:
            tracer.instant(
                "service.reject", cycle=start,
                error=response["error"]["kind"],
            )
            tracer.complete(
                "service.encode", cycle_start=start, cycle_end=completion,
                kind="service",
            )
            root.end(cycle=completion, status="rejected")

    def _handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        try:
            validate_request(request)
        except ProtocolError as exc:
            return self._envelope(
                op=str(request.get("op")),
                tenant=str(request.get("tenant")),
                seq=request.get("seq") if isinstance(request.get("seq"), int) else -1,
                issue=request.get("issue_cycle")
                if isinstance(request.get("issue_cycle"), int)
                else 0,
                start=0,
                cost=REJECT_COST,
                error=exc,
            )
        op = request["op"]
        name = request["tenant"]
        seq = request["seq"]
        issue = request["issue_cycle"]

        if op == "hello":
            return self._handle_hello(request, name, seq, issue)
        if op == "metrics":
            return self._handle_metrics(name, seq, issue)

        tenant = self.fabric.tenants.get(name)
        if tenant is None:
            return self._envelope(
                op=op,
                tenant=name,
                seq=seq,
                issue=issue,
                start=issue,
                cost=REJECT_COST,
                error=ProtocolError(f"tenant {name!r} not admitted (hello first)"),
            )
        tenant.requests += 1
        owned_before = self.fabric.owned_clusters(name)
        start = max(issue, tenant.clock)
        try:
            result, cost = self._dispatch(op, name, request)
        except ReproError as exc:
            tenant.rejections += 1
            self._advance(tenant, owned_before, issue, start, REJECT_COST)
            return self._envelope(
                op=op, tenant=name, seq=seq, issue=issue,
                start=start, cost=REJECT_COST, error=exc,
                owned=owned_before,
            )
        completion = self._advance(tenant, owned_before, issue, start, cost)
        owned_after = self.fabric.owned_clusters(name)
        if op == "bye":
            # the eviction summary predates this request's own interval;
            # patch in the final integrated occupancy
            result["cluster_cycles"] = tenant.cluster_cycles
            result["completion_cycle"] = completion
            self._samplers.pop(name, None)
        return self._envelope(
            op=op, tenant=name, seq=seq, issue=issue,
            start=start, cost=cost, result=result, owned=owned_after,
        )

    def _handle_metrics(self, name: str, seq: int, issue: int) -> Dict[str, Any]:
        """The ``metrics`` frame: the canonical OpenMetrics snapshot of
        the live registry, as one response envelope.

        Operator-scoped — it touches no tenant clock and costs one
        admission cycle, so interleaving scrapes with tenant traffic
        never perturbs any latency.  The text is the same
        :func:`~repro.telemetry.exposition.to_openmetrics` rendering the
        ``/metrics`` HTTP endpoint and an ``--observe`` bundle serve.
        """
        from repro.telemetry.exposition import (
            observation_document,
            to_openmetrics,
        )

        doc = observation_document(telemetry.snapshot(), title="service metrics")
        return self._envelope(
            op="metrics", tenant=name, seq=seq, issue=issue,
            start=issue, cost=1,
            result={"openmetrics": to_openmetrics(doc),
                    "schema": PROTOCOL_SCHEMA},
        )

    def _handle_hello(
        self, request: Dict[str, Any], name: str, seq: int, issue: int
    ) -> Dict[str, Any]:
        try:
            tenant, cost = self.fabric.admit(
                name,
                clusters=self._int_field(request, "clusters", 1),
                processors=self._int_field(request, "processors", 8),
                mailbox_slots=self._int_field(request, "mailbox_slots", 64),
                slot=self._opt_int_field(request, "slot"),
            )
        except ReproError as exc:
            return self._envelope(
                op="hello", tenant=name, seq=seq, issue=issue,
                start=issue, cost=REJECT_COST, error=exc,
            )
        tenant.requests = 1
        completion = issue + cost
        tenant.clock = completion
        tenant.mark = completion
        if telemetry.observer().enabled:
            self._observe_completion(tenant, issue, completion, cost,
                                     prev_mark=issue)
        order = self.fabric.vlsi.fabric.linear_order()
        result = {
            "clusters": len(tenant.shard),
            "slot": order.index(tenant.shard[0]),
            "schema": PROTOCOL_SCHEMA,
        }
        return self._envelope(
            op="hello", tenant=name, seq=seq, issue=issue,
            start=issue, cost=cost, result=result, owned=0,
        )

    def _dispatch(self, op, name, request):
        fabric = self.fabric
        if op == "create":
            return fabric.create(
                name,
                self._str_field(request, "processor"),
                self._int_field(request, "clusters", 1),
            )
        if op == "scale_up":
            return fabric.scale_up(
                name,
                self._str_field(request, "processor"),
                self._int_field(request, "extra", 1),
            )
        if op == "scale_down":
            return fabric.scale_down(
                name,
                self._str_field(request, "processor"),
                self._int_field(request, "drop", 1),
            )
        if op == "destroy":
            return fabric.destroy(name, self._str_field(request, "processor"))
        if op == "send":
            return fabric.send(
                name,
                self._str_field(request, "src"),
                self._str_field(request, "dst"),
                self._str_field(request, "key"),
                request.get("value"),
            )
        if op == "stats":
            return fabric.tenant_stats(name)
        if op == "bye":
            return fabric.evict(name)
        raise ProtocolError(f"unhandled op {op!r}")  # pragma: no cover

    def disconnect(self, name: str) -> None:
        """Clean up a tenant whose connection died without a ``bye``.

        Eviction destroys the tenant's processors and frees its shard;
        any in-flight worm already rolled its reservation flags back
        (handlers are atomic), so the fabric is flag-clean afterwards.
        """
        if name in self.fabric.tenants:
            self.fabric.evict(name)
            self._samplers.pop(name, None)
            telemetry.counter("service.disconnects").inc()

    # -- clock plumbing ----------------------------------------------------

    def _advance(
        self, tenant: Tenant, owned_before: int, issue: int, start: int,
        cost: int,
    ) -> int:
        prev_mark = tenant.mark
        completion = start + cost
        tenant.cluster_cycles += owned_before * (completion - tenant.mark)
        tenant.mark = completion
        tenant.clock = completion
        if telemetry.observer().enabled:
            self._observe_completion(tenant, issue, completion, cost,
                                     prev_mark=prev_mark)
        return completion

    def _observe_completion(
        self, tenant: Tenant, issue: int, completion: int, cost: int,
        prev_mark: int,
    ) -> None:
        """Record one completed op into the per-tenant instruments.

        Series names carry the tenant through :func:`point_label`, which
        escapes hostile characters — a tenant named ``a=b,[c]`` cannot
        corrupt the label grammar, the OpenMetrics exposition, or the
        dashboard HTML.  Occupancy samples flow through a per-tenant
        :class:`~repro.telemetry.observe.Sampler` ticked along the
        tenant's *own* virtual clock, so the sample multiset is a pure
        function of that tenant's deterministic request sequence — never
        of event-loop interleaving.
        """
        label = point_label(tenant=tenant.name)
        telemetry.time_series(f"service.tenant.cost{label}").record(
            completion, float(cost)
        )
        telemetry.time_series(f"service.tenant.latency{label}").record(
            completion, float(completion - issue)
        )
        telemetry.gauge(f"service.tenant.clock{label}").set(
            float(tenant.clock)
        )
        sampler = self._samplers.get(tenant.name)
        if sampler is None:
            sampler = Sampler(
                stride=telemetry.observer().effective_stride(auto=1)
            )
            sampler.cycle = prev_mark
            fabric = self.fabric
            tenant_name = tenant.name
            sampler.attach_series(
                telemetry.time_series(f"service.tenant.occupancy{label}"),
                lambda: float(fabric.owned_clusters(tenant_name)),
            )
            self._samplers[tenant.name] = sampler
        sampler.tick_to(completion)

    @staticmethod
    def _envelope(
        op: str,
        tenant: str,
        seq: int,
        issue: int,
        start: int,
        cost: int,
        result: Optional[Dict[str, Any]] = None,
        error: Optional[BaseException] = None,
        owned: Optional[int] = None,
    ) -> Dict[str, Any]:
        completion = start + cost
        envelope: Dict[str, Any] = {
            "op": op,
            "tenant": tenant,
            "seq": seq,
            "ok": error is None,
            "issue_cycle": issue,
            "start_cycle": start,
            "completion_cycle": completion,
            "latency_cycles": completion - issue,
        }
        if owned is not None:
            # clusters owned after this op completed — the step function
            # SLO utilization windows integrate (repro.telemetry.slo)
            envelope["owned_clusters"] = owned
        if error is None:
            envelope["result"] = result if result is not None else {}
        else:
            envelope["error"] = {
                "kind": type(error).__name__,
                "message": str(error),
            }
        return envelope

    # -- field coercion ----------------------------------------------------

    @staticmethod
    def _int_field(request: Dict[str, Any], field: str, default: int) -> int:
        value = request.get(field, default)
        if not isinstance(value, int) or isinstance(value, bool):
            raise ProtocolError(f"field {field!r} must be an integer, got {value!r}")
        return value

    @staticmethod
    def _opt_int_field(request: Dict[str, Any], field: str) -> Optional[int]:
        value = request.get(field)
        if value is None:
            return None
        if not isinstance(value, int) or isinstance(value, bool):
            raise ProtocolError(f"field {field!r} must be an integer, got {value!r}")
        return value

    @staticmethod
    def _str_field(request: Dict[str, Any], field: str) -> str:
        value = request.get(field)
        if not isinstance(value, str) or not value:
            raise ProtocolError(
                f"field {field!r} must be a non-empty string, got {value!r}"
            )
        return value


class FabricServer:
    """Asyncio TCP front end for a :class:`FabricService`.

    One connection may carry requests for many tenants (the load
    generator multiplexes).  Tenants first seen on a connection are
    tracked; if the connection dies before their ``bye``, they are
    evicted — processors destroyed, shard freed — so a crashed client
    cannot leak die area.
    """

    def __init__(
        self,
        service: Optional[FabricService] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service if service is not None else FabricService()
        self.host = host
        self._requested_port = port
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("server is not running")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self._requested_port
        )

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "FabricServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session_tenants: set = set()
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except ProtocolError as exc:
                    # corrupt stream: report once, then hang up
                    await write_frame(
                        writer,
                        {
                            "ok": False,
                            "error": {
                                "kind": type(exc).__name__,
                                "message": str(exc),
                            },
                        },
                    )
                    break
                if request is None:
                    break
                tenant = request.get("tenant")
                if isinstance(tenant, str):
                    if request.get("op") == "bye":
                        session_tenants.discard(tenant)
                    else:
                        session_tenants.add(tenant)
                await write_frame(writer, self.service.handle(request))
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            for tenant in sorted(session_tenants):
                self.service.disconnect(tenant)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


class InProcessClient:
    """Drives a :class:`FabricService` through the full frame round-trip.

    Requests are encoded and decoded exactly as the TCP path does, so a
    report produced in-process and one produced over TCP differ only in
    transport — which the byte-identical-report check in CI then proves
    is not at all.
    """

    def __init__(self, service: FabricService) -> None:
        self.service = service

    async def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        frame = encode_frame(message)
        response = self.service.handle(decode_payload(frame[4:]))
        return decode_payload(encode_frame(response)[4:])

    async def close(self) -> None:  # symmetry with TCPClient
        return None


class TCPClient:
    """One framed connection to a :class:`FabricServer`."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "TCPClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        await write_frame(self._writer, message)
        response = await read_frame(self._reader)
        if response is None:
            raise ProtocolError("server closed the connection mid-request")
        return response

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
