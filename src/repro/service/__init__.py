"""repro.service — the fabric as a long-lived multi-tenant service.

Every workload before this package was a batch ``run_trial`` that owned
the whole die.  Here the fabric becomes *resident*: one
:class:`~repro.core.vlsi_processor.VLSIProcessor` lives across requests,
the die is sharded into per-tenant slices, and an asyncio server admits
many concurrent tenants that stream scale-up / scale-down / IPC
requests at it over a length-prefixed JSON protocol (§3.3's reservation
flags guard every mutating worm, so concurrent scaling operations never
conflict).

Layers:

* :mod:`repro.service.protocol` — framing (4-byte length prefix +
  canonical JSON) and the request envelope;
* :mod:`repro.service.fabric` — :class:`ResidentFabric`: admission
  control, per-tenant shards and quotas, namespaced processors, and the
  deterministic simulated-cycle cost of every operation;
* :mod:`repro.service.server` — :class:`FabricService` (transport-free
  request handler with the per-tenant virtual clock) and
  :class:`FabricServer` (the asyncio TCP front end), plus in-process
  and TCP clients;
* :mod:`repro.service.loadgen` — the seeded async load generator behind
  ``repro service-load`` and its canonical p50/p95/p99 report;
* :mod:`repro.service.metrics` — the optional asyncio HTTP ``/metrics``
  endpoint ``repro serve --metrics-port`` exposes, serving the
  canonical OpenMetrics snapshot of the live telemetry registry.

Latency is reported in **simulated cycles**, not wall-clock seconds:
each tenant carries a virtual clock advanced by the deterministic cost
of its own operations, so the same seed produces a byte-identical
report regardless of event-loop interleaving or transport (in-process
vs. TCP) — the same determinism discipline the sweep engine holds.
"""

from repro.service.fabric import ResidentFabric, Tenant, TenantQuota
from repro.service.loadgen import (
    LoadConfig,
    build_report,
    build_script,
    execute_load,
    records_document,
    report_json,
    run_load,
)
from repro.service.metrics import MetricsEndpoint
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_SCHEMA,
    REQUEST_OPS,
    encode_frame,
    decode_payload,
    read_frame,
    validate_request,
    write_frame,
)
from repro.service.server import (
    FabricServer,
    FabricService,
    InProcessClient,
    TCPClient,
)

__all__ = [
    "ResidentFabric",
    "Tenant",
    "TenantQuota",
    "FabricService",
    "FabricServer",
    "InProcessClient",
    "TCPClient",
    "LoadConfig",
    "build_script",
    "execute_load",
    "run_load",
    "build_report",
    "records_document",
    "report_json",
    "MetricsEndpoint",
    "PROTOCOL_SCHEMA",
    "MAX_FRAME_BYTES",
    "REQUEST_OPS",
    "encode_frame",
    "decode_payload",
    "read_frame",
    "write_frame",
    "validate_request",
]
