"""The service wire protocol: length-prefixed canonical JSON frames.

A frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON.  The JSON is rendered *canonically* (sorted keys,
compact separators) so a frame is a pure function of its message — the
same discipline every canonical report in this repo follows.

The request envelope carried by every frame::

    {"op": <one of REQUEST_OPS>, "tenant": <str>, "seq": <int>,
     "issue_cycle": <int>, ...op-specific fields}

``issue_cycle`` is the tenant's simulated submission time; the service
computes latency against it (see DESIGN.md, "Why simulated cycles").
``seq`` orders a tenant's requests and is echoed in the response, which
is how the load generator sorts completion records canonically before
rendering a report.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict, Optional

from repro.errors import ProtocolError

__all__ = [
    "PROTOCOL_SCHEMA",
    "MAX_FRAME_BYTES",
    "REQUEST_OPS",
    "encode_frame",
    "decode_payload",
    "read_frame",
    "write_frame",
    "make_request",
    "validate_request",
]

#: Version tag of the request/response protocol (bump on breaking
#: change).  /2 added the ``metrics`` op and the ``owned_clusters``
#: field on tenant-scoped response envelopes.
PROTOCOL_SCHEMA = "repro.service/2"

#: Upper bound on one frame's payload; a bigger prefix is treated as a
#: corrupt stream, not an allocation request.
MAX_FRAME_BYTES = 1 << 20

#: The operations a tenant may request.
REQUEST_OPS = frozenset(
    {
        "hello",
        "create",
        "scale_up",
        "scale_down",
        "destroy",
        "send",
        "stats",
        "metrics",
        "bye",
    }
)

_LENGTH = struct.Struct(">I")


def encode_frame(message: Dict[str, Any]) -> bytes:
    """Render ``message`` as one length-prefixed canonical-JSON frame."""
    try:
        payload = json.dumps(
            message, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"message is not JSON-serialisable: {exc}") from exc
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )
    return _LENGTH.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> Dict[str, Any]:
    """Parse one frame's payload back into a message object."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame payload is not JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(message).__name__}"
        )
    return message


async def read_frame(reader: asyncio.StreamReader) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on a clean EOF at a frame boundary.

    Raises
    ------
    ProtocolError
        On a truncated frame, an oversized length prefix, or a payload
        that is not a JSON object.
    """
    prefix = await reader.read(_LENGTH.size)
    if not prefix:
        return None
    while len(prefix) < _LENGTH.size:
        more = await reader.read(_LENGTH.size - len(prefix))
        if not more:
            raise ProtocolError(
                f"stream ended inside a length prefix ({len(prefix)} of "
                f"{_LENGTH.size} bytes)"
            )
        prefix += more
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"stream ended inside a frame ({len(exc.partial)} of "
            f"{length} bytes)"
        ) from exc
    return decode_payload(payload)


async def write_frame(
    writer: asyncio.StreamWriter, message: Dict[str, Any]
) -> None:
    """Encode ``message`` and write it, draining the transport."""
    writer.write(encode_frame(message))
    await writer.drain()


def make_request(
    op: str, tenant: str, seq: int, issue_cycle: int, **fields: Any
) -> Dict[str, Any]:
    """Build a request envelope (validated, so tests fail early)."""
    request = {
        "op": op,
        "tenant": tenant,
        "seq": seq,
        "issue_cycle": issue_cycle,
    }
    request.update(fields)
    return validate_request(request)


def validate_request(message: Dict[str, Any]) -> Dict[str, Any]:
    """Check the request envelope; returns the message unchanged.

    Raises
    ------
    ProtocolError
        On a missing/ill-typed envelope field or an unknown op.
    """
    op = message.get("op")
    if not isinstance(op, str) or op not in REQUEST_OPS:
        raise ProtocolError(
            f"unknown op {op!r} (want one of {sorted(REQUEST_OPS)})"
        )
    tenant = message.get("tenant")
    if not isinstance(tenant, str) or not tenant:
        raise ProtocolError("request needs a non-empty string 'tenant'")
    if "/" in tenant:
        # '/' namespaces tenant-owned processors on the resident fabric
        raise ProtocolError(f"tenant name {tenant!r} may not contain '/'")
    for field in ("seq", "issue_cycle"):
        value = message.get(field)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise ProtocolError(
                f"request needs a non-negative integer {field!r}, "
                f"got {value!r}"
            )
    return message
