"""Asyncio HTTP exposition endpoint for the resident fabric server.

``repro serve --metrics-port P`` starts a :class:`MetricsEndpoint` next
to the TCP frame server: a deliberately tiny HTTP/1.1 responder (no
framework, no dependency) that serves

* ``GET /metrics`` — the canonical OpenMetrics rendering of the live
  registry (the same :func:`~repro.telemetry.exposition.to_openmetrics`
  text an ``--observe`` bundle and the ``metrics`` protocol frame
  carry);
* ``GET /healthz`` — a liveness probe (``ok``).

Responses carry no ``Date`` header and no server banner: the body is a
pure function of the registry state, so scraping after identical load
runs yields byte-identical snapshots — which CI checks with ``cmp``.
One request per connection (``Connection: close``); a scrape endpoint
needs no keep-alive.
"""

from __future__ import annotations

import asyncio
from typing import Any, Optional

from repro import telemetry

__all__ = ["MetricsEndpoint"]

#: Cap on the request head (request line + headers) a scraper may send.
_MAX_HEAD_BYTES = 16_384

_OPENMETRICS_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"


class MetricsEndpoint:
    """One-shot HTTP scrape endpoint over the default telemetry registry."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self._requested_port = port
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("metrics endpoint is not running")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self._requested_port
        )

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "MetricsEndpoint":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    def render_metrics(self) -> str:
        """The OpenMetrics snapshot body — one canonical rendering
        shared by the HTTP path and the ``metrics`` protocol frame."""
        from repro.telemetry.exposition import (
            observation_document,
            to_openmetrics,
        )

        doc = observation_document(
            telemetry.snapshot(), title="service metrics"
        )
        return to_openmetrics(doc)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            path = await self._read_request_path(reader)
            if path is None:
                status, body, ctype = (
                    "400 Bad Request", "bad request\n", "text/plain; charset=utf-8"
                )
            elif path == "/metrics":
                status, body, ctype = "200 OK", self.render_metrics(), _OPENMETRICS_TYPE
            elif path == "/healthz":
                status, body, ctype = (
                    "200 OK", "ok\n", "text/plain; charset=utf-8"
                )
            else:
                status, body, ctype = (
                    "404 Not Found", f"no route {path}\n",
                    "text/plain; charset=utf-8",
                )
            payload = body.encode("utf-8")
            head = (
                f"HTTP/1.1 {status}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n"
                "\r\n"
            )
            writer.write(head.encode("ascii") + payload)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    @staticmethod
    async def _read_request_path(
        reader: asyncio.StreamReader,
    ) -> Optional[str]:
        """Parse ``GET <path>`` off the request head; ``None`` when the
        head is oversized, truncated, or not a GET."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            return None
        except asyncio.IncompleteReadError as exc:
            head = exc.partial
            if not head.endswith((b"\r\n\r\n", b"\n\n")):
                return None
        if len(head) > _MAX_HEAD_BYTES:
            return None
        request_line = head.split(b"\r\n", 1)[0].decode("latin-1")
        parts = request_line.split()
        if len(parts) != 3 or parts[0] != "GET":
            return None
        return parts[1]
