"""Command-line interface: regenerate the paper's tables from a shell.

Usage::

    python -m repro table 1          # Tables 1-3 (area budgets)
    python -m repro table 4          # Table 4 (APs / delay / GOPS)
    python -m repro fig3             # Figure 3 channel-demand series
    python -m repro fig3 --workers 4 --stats  # parallel sweep + telemetry
    python -m repro fig3 --engine --workers 4 # batched route-memoized engine
    python -m repro fig3 --trace out.json     # Perfetto-loadable span trace
    python -m repro fig3 --observe out/       # OpenMetrics + dashboard bundle
    python -m repro fig3 --engine --kernel vector --observe out/  # replayed obs
    python -m repro fig3 --engine --profile --observe out/  # stage self-timing
    python -m repro trace-report out.json     # critical path / latencies
    python -m repro observe-report out/       # summarise an --observe bundle
    python -m repro profile out/              # summarise the self-profile layer
    python -m repro faults --rate 0.05 --trials 4 --workers 2 --stats
    python -m repro baseline record --bench fig3 --out BENCH_fig3.json
    python -m repro baseline check BENCH_fig3.json --skip-wallclock
    python -m repro chip --rows 8 --cols 8   # fabric summary
    python -m repro defrag --plan minimal --report defrag.json
                                             # planned compaction costs
    python -m repro serve --port 7013            # resident fabric server
    python -m repro service-load --tenants 4 --rps 500 --seed 42 \
        --report service.json                    # seeded service load

The heavier experiments (Figures 1-7 with cycle-level simulation, the
ablations) live in the benchmark harness: ``pytest benchmarks/
--benchmark-only -s``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__, telemetry
from repro.analysis.reporting import format_series, format_table
from repro.costmodel.areas import (
    control_objects_budget,
    memory_block_budget,
    physical_object_budget,
)
from repro.costmodel.performance import table4

__all__ = ["main"]


def _print_area_table(budget) -> None:
    rows = [
        (name, f"{proc:.2f}", f"{area:.3e}") for name, proc, area in budget.rows()
    ]
    rows.append(("Total", "", f"{budget.total_lambda2:.3e}"))
    print(format_table(["Module", "Process [um]", "Area [lambda^2]"], rows,
                       title=budget.title))


def _cmd_table(number: int) -> int:
    if number == 1:
        _print_area_table(physical_object_budget())
    elif number == 2:
        _print_area_table(memory_block_budget())
    elif number == 3:
        _print_area_table(control_objects_budget())
    elif number == 4:
        rows = [
            (p.year, f"{p.feature_nm:.0f}", p.available_aps,
             f"{p.wire_delay_ns:.2f}", f"{p.peak_gops:.0f}")
            for p in table4()
        ]
        print(format_table(
            ["Year", "Process[nm]", "#APs", "Wire-Delay[ns]", "Peak GOPS"],
            rows,
            title="Table 4: Number of APs, Wire Delay, and Peak GOPS",
        ))
    else:
        print(f"no table {number}; the paper has tables 1-4", file=sys.stderr)
        return 2
    return 0


def _engine_stderr_summary(command: str) -> None:
    """One engine-effectiveness line on stderr (stdout stays byte-identical
    to the legacy path, so cache stats must not land there)."""
    counters = telemetry.snapshot().get("counters", {})
    cached = counters.get("engine.trials.cached", 0)
    live = counters.get("engine.trials.live", 0)
    print(
        f"{command}: engine trials cached={cached} live={live}",
        file=sys.stderr,
    )


def _numpy_version() -> str:
    import numpy

    return numpy.__version__


def _cmd_fig3(
    n_objects: List[int],
    trials: int,
    workers: Optional[int] = None,
    stats: bool = False,
    seed: int = 42,
    trace: Optional[str] = None,
    observe: Optional[str] = None,
    quiet: bool = False,
    engine: bool = False,
    kernel: str = "route",
    profile: bool = False,
) -> int:
    from repro.csd.simulator import figure3_series

    use_engine = engine and not trace
    if kernel == "vector" and (not engine or trace):
        # the vector kernel only exists inside the engine's cold path,
        # and the engine cannot replay traces — so this is a
        # contradiction in the request, not something to paper over
        # (observation is fine: cached trials replay their samples)
        print(
            "fig3: --kernel vector needs --engine and is incompatible "
            "with --trace",
            file=sys.stderr,
        )
        return 2
    if engine and not use_engine:
        print(
            "fig3: --engine cannot replay traces; "
            "running the traced path instead",
            file=sys.stderr,
        )
    localities = [1.0, 0.8, 0.6, 0.4, 0.2, 0.0]
    if stats or trace or observe or profile:
        if not quiet:
            # reproducibility banner: everything needed to reconstruct
            # this run (the sweep derives every trial seed from these);
            # numpy's version pins the vector kernels' numerics
            print(
                f"repro {__version__} fig3: seed={seed} trials={trials} "
                f"workers={workers if workers else 1} "
                f"n_objects={','.join(str(n) for n in n_objects)} "
                f"localities={','.join(f'{x:g}' for x in localities)} "
                f"numpy={_numpy_version()}"
            )
        telemetry.reset()  # report only this sweep's counters/spans
    if trace:
        telemetry.enable_tracing()
    if observe:
        telemetry.enable_observation()
    if profile:
        telemetry.enable_profiling()
    try:
        if use_engine:
            from repro.engine import run_fig3

            raw = run_fig3(
                localities=localities,
                n_trials=trials,
                n_objects_list=n_objects,
                seed=seed,
                workers=workers,
                kernel=kernel,
            )
        else:
            raw = figure3_series(
                localities=localities,
                n_trials=trials,
                n_objects_list=n_objects,
                seed=seed,
                workers=workers,
            )
    finally:
        if trace:
            telemetry.enable_tracing(False)
        if observe:
            telemetry.enable_observation(False)
        if profile:
            telemetry.enable_profiling(False)
    series = {
        f"Nobject={n}": [
            (p.locality_knob, p.used_channels) for p in raw[n]
        ]
        for n in n_objects
    }
    print(format_series(
        series, x_label="locality", y_label="used_channels",
        title="Figure 3: Locality versus Number of Used Channels",
    ))
    if trace:
        from repro.telemetry.export import write_chrome_trace

        n_spans = write_chrome_trace(telemetry.tracer(), trace)
        print(
            f"wrote {n_spans} spans to {trace} "
            "(load it at https://ui.perfetto.dev or chrome://tracing)"
        )
    if observe:
        _write_observe_bundle(observe, title="fig3 observation")
    if profile:
        _print_profile_summary("fig3 profile")
    if stats:
        reg = telemetry.get_registry()
        print()
        print(
            f"grants={reg.counter('csd.connect.grants').value}  "
            f"blocks={reg.counter('csd.connect.blocks').value}  "
            f"rollbacks={reg.counter('chained.connect.rollbacks').value}"
        )
        telemetry.TextSink(sys.stdout).emit(reg)
    if use_engine:
        _engine_stderr_summary("fig3")
    return 0


def _print_profile_summary(title: str) -> None:
    from repro.telemetry.exposition import (
        format_profile_report,
        observation_document,
    )

    doc = observation_document(telemetry.snapshot(), title=title)
    print(format_profile_report(doc), end="")


def _write_observe_bundle(outdir: str, title: str) -> None:
    from repro.telemetry.exposition import write_observation

    written = write_observation(telemetry.snapshot(), outdir, title=title)
    print(
        f"wrote observation bundle to {outdir}: "
        + ", ".join(sorted(written))
    )


def _cmd_faults(
    rates: List[float],
    n_objects: List[int],
    trials: int,
    workers: Optional[int] = None,
    stats: bool = False,
    seed: int = 42,
    trace: Optional[str] = None,
    report_path: Optional[str] = None,
    observe: Optional[str] = None,
    quiet: bool = False,
    engine: bool = False,
    kernel: str = "route",
    csd_rate: Optional[float] = None,
    profile: bool = False,
) -> int:
    from repro.faults.campaign import report_json, run_campaign

    use_engine = engine and not trace
    if kernel == "vector" and (not engine or trace):
        print(
            "faults: --kernel vector needs --engine and is incompatible "
            "with --trace",
            file=sys.stderr,
        )
        return 2
    if engine and not use_engine:
        print(
            "faults: --engine cannot replay traces; "
            "running the traced path instead",
            file=sys.stderr,
        )
    if not quiet:
        # reproducibility banner: the campaign derives every fault draw
        # and every trial seed from exactly these knobs; numpy's version
        # pins the vector kernels' numerics
        print(
            f"repro {__version__} faults: seed={seed} trials={trials} "
            f"workers={workers if workers else 1} "
            f"rates={','.join(f'{r:g}' for r in rates)} "
            f"n_objects={','.join(str(n) for n in n_objects)} "
            f"numpy={_numpy_version()}"
        )
    telemetry.reset()  # report only this campaign's counters/spans
    if trace:
        telemetry.enable_tracing()
    if observe:
        telemetry.enable_observation()
    if profile:
        telemetry.enable_profiling()
    try:
        if use_engine:
            from repro.engine import run_faults

            report = run_faults(
                rates,
                n_objects_list=n_objects,
                n_trials=trials,
                seed=seed,
                workers=workers,
                kernel=kernel,
                csd_rate=csd_rate,
            )
        else:
            report = run_campaign(
                rates,
                n_objects_list=n_objects,
                n_trials=trials,
                seed=seed,
                workers=workers,
                csd_rate=csd_rate,
            )
    finally:
        if trace:
            telemetry.enable_tracing(False)
        if observe:
            telemetry.enable_observation(False)
        if profile:
            telemetry.enable_profiling(False)
    rows = []
    for p in report["points"]:
        rc = p["reconfig"]
        rows.append((
            p["n_objects"],
            f"{p['rate']:g}",
            p["fault_triggers"],
            f"{p['csd']['served_fraction']:.3f}",
            f"{rc['first_try']}/{rc['recovered']}/{rc['degraded']}/{rc['lost']}",
            p["chained"]["splits"],
            f"{p['survival']:.2f}",
        ))
    print(format_table(
        ["Nobject", "rate", "faults", "CSD served",
         "ok/rec/deg/lost", "splits", "survival"],
        rows,
        title="Fault campaign: survival by fault rate",
    ))
    if report_path:
        with open(report_path, "w", encoding="utf-8") as fh:
            fh.write(report_json(report))
        print(f"wrote campaign report to {report_path}")
    if trace:
        from repro.telemetry.export import write_chrome_trace

        n_spans = write_chrome_trace(telemetry.tracer(), trace)
        print(
            f"wrote {n_spans} spans to {trace} "
            "(load it at https://ui.perfetto.dev or chrome://tracing)"
        )
    if observe:
        _write_observe_bundle(observe, title="faults observation")
    if profile:
        _print_profile_summary("faults profile")
    if stats:
        reg = telemetry.get_registry()
        rec = reg.histogram("faults.recovery.cycles")
        print()
        print(
            f"triggered={reg.counter('faults.triggered').value}  "
            f"healed={reg.counter('faults.healed').value}  "
            f"retries={reg.counter('faults.recovery.retries').value}  "
            f"recovered={reg.counter('faults.recovery.recovered').value}  "
            f"exhausted={reg.counter('faults.recovery.exhausted').value}  "
            f"degradations={reg.counter('faults.degradations').value}"
        )
        print(
            f"recovery cycles: n={rec.count} "
            f"p50={rec.percentile(50):g} p95={rec.percentile(95):g} "
            f"p99={rec.percentile(99):g}"
        )
        telemetry.TextSink(sys.stdout).emit(reg)
    if use_engine:
        _engine_stderr_summary("faults")
    return 0


def _cmd_trace_report(path: str) -> int:
    from repro.telemetry.analysis import format_trace_report, load_chrome_trace

    try:
        spans = load_chrome_trace(path)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(f"cannot read trace {path!r}: {exc}", file=sys.stderr)
        return 2
    print(format_trace_report(spans))
    return 0


def _load_observe_path(path: str):
    import os

    from repro.telemetry.exposition import load_observation

    target = path
    if os.path.isdir(target):
        target = os.path.join(target, "observe.json")
    return load_observation(target)


def _cmd_observe_report(path: str) -> int:
    from repro.telemetry.exposition import format_observe_report

    try:
        doc = _load_observe_path(path)
    except (OSError, ValueError) as exc:
        print(f"cannot read observation {path!r}: {exc}", file=sys.stderr)
        return 2
    print(format_observe_report(doc), end="")
    return 0


def _cmd_profile_report(path: str) -> int:
    from repro.telemetry.exposition import format_profile_report

    try:
        doc = _load_observe_path(path)
    except (OSError, ValueError) as exc:
        print(f"cannot read observation {path!r}: {exc}", file=sys.stderr)
        return 2
    print(format_profile_report(doc), end="")
    return 0


def _cmd_baseline(args) -> int:
    from repro.telemetry.baseline import (
        BENCHES,
        check_baseline,
        load_baseline,
        record_baseline,
        write_baseline,
    )

    if args.action == "record":
        if args.bench not in BENCHES:
            print(
                f"unknown bench {args.bench!r} (want one of {sorted(BENCHES)})",
                file=sys.stderr,
            )
            return 2
        baseline = record_baseline(args.bench)
        out = args.out or f"BENCH_{args.bench}.json"
        write_baseline(baseline, out)
        print(
            f"recorded {args.bench} baseline to {out}: "
            f"{len(baseline['deterministic'])} deterministic metrics, "
            f"{baseline['wallclock']['points_per_s']:.2f} points/s"
        )
        return 0
    # action == "check"
    try:
        baseline = load_baseline(args.baseline_file)
    except (OSError, ValueError) as exc:
        print(f"cannot read baseline: {exc}", file=sys.stderr)
        return 2
    regressions = check_baseline(
        baseline,
        throughput_tolerance=args.throughput_tolerance,
        latency_tolerance=args.latency_tolerance,
        skip_wallclock=args.skip_wallclock,
    )
    if regressions:
        print(f"{args.baseline_file}: {len(regressions)} regression(s):")
        for line in regressions:
            print(f"  - {line}")
        return 1
    print(
        f"{args.baseline_file}: baseline holds "
        f"({len(baseline['deterministic'])} metrics"
        + (", wall-clock skipped" if args.skip_wallclock else "")
        + ")"
    )
    return 0


def _cmd_serve(
    host: str, port: int, rows: int, cols: int,
    max_tenants: Optional[int] = None,
    metrics_port: Optional[int] = None,
) -> int:
    import asyncio

    from repro.service import FabricServer, FabricService, ResidentFabric

    if metrics_port is not None:
        # the scrape endpoint is only useful with live instruments
        telemetry.reset()
        telemetry.enable_observation()

    async def _serve() -> None:
        fabric = ResidentFabric(rows, cols, max_tenants=max_tenants)
        endpoint = None
        if metrics_port is not None:
            from repro.service import MetricsEndpoint

            endpoint = MetricsEndpoint(host=host, port=metrics_port)
            await endpoint.start()
        try:
            async with FabricServer(
                FabricService(fabric), host=host, port=port
            ) as server:
                print(
                    f"repro {__version__} serve: resident {rows}x{cols} "
                    f"fabric on {server.host}:{server.port} "
                    f"(max_tenants="
                    f"{max_tenants if max_tenants else 'unbounded'})"
                    + (
                        f"  metrics on http://{endpoint.host}:"
                        f"{endpoint.port}/metrics"
                        if endpoint
                        else ""
                    ),
                    flush=True,
                )
                await asyncio.Event().wait()  # until interrupted
        finally:
            if endpoint is not None:
                await endpoint.close()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("serve: interrupted, fabric released", file=sys.stderr)
    return 0


def _cmd_service_load(
    tenants: int,
    requests: int,
    rps: float,
    seed: int = 42,
    rows: int = 8,
    cols: int = 8,
    transport: str = "inproc",
    report_path: Optional[str] = None,
    observe: Optional[str] = None,
    profile: bool = False,
    quiet: bool = False,
    slo: Optional[str] = None,
    trace: Optional[str] = None,
    records_path: Optional[str] = None,
    connect: Optional[str] = None,
) -> int:
    from repro.service import (
        LoadConfig,
        build_report,
        execute_load,
        records_document,
        report_json,
    )

    try:
        config = LoadConfig(
            tenants=tenants, requests=requests, rps=rps,
            seed=seed, rows=rows, cols=cols,
        )
    except ValueError as exc:
        print(f"service-load: {exc}", file=sys.stderr)
        return 2
    connect_to: Optional[tuple] = None
    if connect is not None:
        if trace or observe or profile:
            # those planes live in the server process, not this driver
            print(
                "service-load: --trace/--observe/--profile record in the "
                "serving process; they cannot be combined with --connect",
                file=sys.stderr,
            )
            return 2
        host, sep, port_text = connect.rpartition(":")
        if not sep or not host or not port_text.isdigit():
            print(
                f"service-load: --connect wants HOST:PORT, got {connect!r}",
                file=sys.stderr,
            )
            return 2
        connect_to = (host, int(port_text))
    objectives = None
    if slo:
        from repro.telemetry.slo import load_spec

        try:
            objectives = load_spec(slo)
        except (OSError, ValueError) as exc:
            print(f"service-load: bad SLO spec: {exc}", file=sys.stderr)
            return 2
    if not quiet:
        # reproducibility banner: the report is a pure function of these
        print(
            f"repro {__version__} service-load: seed={seed} "
            f"tenants={tenants} requests={requests} rps={rps:g} "
            f"die={rows}x{cols} "
            + (
                f"connect={connect}"
                if connect
                else f"transport={transport}"
            )
        )
    telemetry.reset()  # report only this load's counters/series
    if observe:
        telemetry.enable_observation()
    if profile:
        telemetry.enable_profiling()
    if trace:
        telemetry.enable_tracing()
    try:
        records = execute_load(
            config, transport=transport, connect=connect_to
        )
    finally:
        if observe:
            telemetry.enable_observation(False)
        if profile:
            telemetry.enable_profiling(False)
        if trace:
            telemetry.enable_tracing(False)
    report = build_report(config, records)
    slo_report = None
    if objectives is not None:
        from repro.telemetry.slo import evaluate_slos, record_slo_observation

        slo_report = evaluate_slos(objectives, records, rows * cols)
        report["slo"] = slo_report
        if observe:
            record_slo_observation(slo_report)
    if trace:
        from repro.telemetry.export import select_trees, write_chrome_trace

        tracer = telemetry.tracer()
        # only service-rooted trees: spans from the layers below carry
        # interleaving-dependent op ids that would break byte-identity
        n_spans = write_chrome_trace(select_trees(tracer, "service."), trace)
        # surface truncation: a capped tracer silently drops spans
        report["trace"] = {"spans": n_spans, "dropped": tracer.dropped}
    rendered = report_json(report)
    if report_path:
        with open(report_path, "w", encoding="utf-8") as fh:
            fh.write(rendered)
        print(f"wrote service report to {report_path}")
    else:
        print(rendered, end="")
    if records_path:
        with open(records_path, "w", encoding="utf-8") as fh:
            fh.write(report_json(records_document(config, records)))
        print(f"wrote completion records to {records_path}")
    lat = report["latency_cycles"]
    req = report["requests"]
    print(
        f"service-load: {req['total']} requests "
        f"({req['ok']} ok, {req['rejected']} rejected)  "
        f"latency cycles p50={lat['p50']} p95={lat['p95']} "
        f"p99={lat['p99']}  "
        f"utilization={report['fabric']['utilization']:.3f}"
    )
    if trace:
        print(
            f"wrote {report['trace']['spans']} spans to {trace} "
            f"({report['trace']['dropped']} dropped)"
        )
    if slo_report is not None:
        from repro.telemetry.slo import format_slo_report

        print(format_slo_report(slo_report), end="")
    if observe:
        _write_observe_bundle(observe, title="service-load observation")
    if profile:
        _print_profile_summary("service-load profile")
    return 1 if slo_report is not None and slo_report["breached"] else 0


def _cmd_slo_report(
    spec_path: str,
    records_file: str,
    report_path: Optional[str] = None,
) -> int:
    """Re-evaluate SLO objectives over a saved records dump; exit 1 when
    any error budget is exhausted (2 on malformed inputs)."""
    import json as _json

    from repro.service.loadgen import RECORDS_SCHEMA
    from repro.telemetry.slo import (
        evaluate_slos,
        format_slo_report,
        load_spec,
        slo_report_json,
    )

    try:
        objectives = load_spec(spec_path)
    except (OSError, ValueError) as exc:
        print(f"slo-report: bad SLO spec: {exc}", file=sys.stderr)
        return 2
    try:
        with open(records_file, "r", encoding="utf-8") as fh:
            document = _json.load(fh)
    except (OSError, _json.JSONDecodeError) as exc:
        print(f"slo-report: cannot read records: {exc}", file=sys.stderr)
        return 2
    if (
        not isinstance(document, dict)
        or document.get("schema") != RECORDS_SCHEMA
        or not isinstance(document.get("records"), list)
    ):
        print(
            f"slo-report: {records_file} is not a {RECORDS_SCHEMA} "
            "records document (write one with service-load --records)",
            file=sys.stderr,
        )
        return 2
    config = document.get("config", {})
    clusters = config.get("rows", 8) * config.get("cols", 8)
    try:
        slo_report = evaluate_slos(
            objectives, document["records"], clusters
        )
    except (KeyError, TypeError, ValueError) as exc:
        print(f"slo-report: cannot evaluate: {exc}", file=sys.stderr)
        return 2
    if report_path:
        with open(report_path, "w", encoding="utf-8") as fh:
            fh.write(slo_report_json(slo_report))
        print(f"wrote SLO report to {report_path}")
    print(format_slo_report(slo_report), end="")
    return 1 if slo_report["breached"] else 0


def _cmd_defrag(
    scenario: str,
    plan: str,
    mode: str,
    max_passes: int,
    report_path: Optional[str] = None,
    quiet: bool = False,
) -> int:
    from repro.planner import scenario_names
    from repro.planner.report import defrag_report, report_json

    if scenario == "all":
        names = scenario_names()
    elif scenario in scenario_names():
        names = [scenario]
    else:
        print(
            f"defrag: unknown scenario {scenario!r} "
            f"(want 'all' or one of {', '.join(scenario_names())})",
            file=sys.stderr,
        )
        return 2
    if not quiet:
        # reproducibility banner: the strategy lives here, NOT in the
        # report — CI byte-compares naive's report against legacy's
        print(
            f"repro {__version__} defrag: plan={plan}"
            + (f" mode={mode}" if plan == "minimal" else "")
            + f" max_passes={max_passes} "
            f"scenarios={','.join(names)}"
        )
    report = defrag_report(
        names, plan=plan, mode=mode, max_passes=max_passes
    )
    rendered = report_json(report)
    if report_path:
        with open(report_path, "w", encoding="utf-8") as fh:
            fh.write(rendered)
        print(f"wrote defrag report to {report_path}")
    else:
        print(rendered, end="")
    total = report["total"]
    print(
        f"defrag: {total['moves']} moves across {len(names)} scenario(s)  "
        f"switch_writes={total['switch_writes']} "
        f"config_flits={total['config_flits']} "
        f"downtime={total['downtime_cycles']} cycles "
        f"(naive {total['naive_downtime_cycles']}, "
        f"saved {total['rewires_saved']})"
    )
    return 0


def _cmd_chip(rows: int, cols: int) -> int:
    from repro.core.vlsi_processor import VLSIProcessor
    from repro.costmodel.areas import ap_area

    chip = VLSIProcessor(rows, cols, with_network=False)
    print(f"{rows}x{cols} S-topology: {len(chip.fabric)} clusters, "
          f"{chip.fabric.switch_count()[0]} chain switches")
    print(f"minimum AP: {chip.fabric.resources.compute_objects} compute + "
          f"{chip.fabric.resources.memory_objects} memory objects, "
          f"{ap_area():.3e} lambda^2")
    print(chip.render())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Takano's Very Large-Scale Integrated "
        "Processor (IJNC 2013)",
    )
    parser.add_argument(
        "--version", action="version",
        version=f"repro {__version__} (numpy {_numpy_version()})",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_table = sub.add_parser("table", help="print a paper table (1-4)")
    p_table.add_argument("number", type=int, choices=(1, 2, 3, 4))

    p_fig3 = sub.add_parser("fig3", help="run the Figure 3 CSD sweep")
    p_fig3.add_argument(
        "--n-objects", type=int, nargs="+", default=[16, 64, 256]
    )
    p_fig3.add_argument("--trials", type=int, default=5)
    p_fig3.add_argument(
        "--workers", type=int, default=None,
        help="fan locality points out over N worker processes "
        "(bit-identical to the serial sweep)",
    )
    p_fig3.add_argument(
        "--stats", action="store_true",
        help="print the repro.telemetry summary (grants, blocks, "
        "rollbacks, per-phase timings) after the sweep",
    )
    p_fig3.add_argument(
        "--seed", type=int, default=42,
        help="sweep seed every trial seed derives from (default 42)",
    )
    p_fig3.add_argument(
        "--trace", metavar="FILE", default=None,
        help="record causal spans (request/grant/ack, per-trial) and "
        "write a Perfetto-loadable Chrome-trace JSON file",
    )
    p_fig3.add_argument(
        "--observe", metavar="DIR", default=None,
        help="sample per-cycle fabric state (segment demand, channel "
        "occupancy, used channels) and write the observation bundle "
        "(OpenMetrics, CSV, JSON, HTML dashboard) into DIR",
    )
    p_fig3.add_argument(
        "--quiet", action="store_true",
        help="suppress the reproducibility banner",
    )
    p_fig3.add_argument(
        "--engine", action="store_true",
        help="run trials through the batched, route-memoized sweep "
        "engine (byte-identical stdout and --observe bundle; cache "
        "stats go to stderr; ignored under --trace)",
    )
    p_fig3.add_argument(
        "--kernel", choices=("route", "vector"), default="route",
        help="cold-path backend of the sweep engine: 'route' (interned "
        "route memo) or 'vector' (numpy span-array kernel, flat "
        "per-trial cost at mega-N); requires --engine, bit-identical "
        "stdout either way",
    )
    p_fig3.add_argument(
        "--profile", action="store_true",
        help="time the engine's own stages (resolve, replay, kernel "
        "batch, pool dispatch) and print a self-profile summary; the "
        "profile.* families also land in the --observe bundle",
    )

    p_faults = sub.add_parser(
        "faults",
        help="run the Monte-Carlo fault-injection campaign "
        "(retry, degradation, survival curves)",
    )
    p_faults.add_argument(
        "--rate", type=float, default=None,
        help="single fault rate to sweep (shorthand for --rates RATE)",
    )
    p_faults.add_argument(
        "--rates", type=float, nargs="+", default=None,
        help="fault rates to sweep (default 0 0.02 0.05 0.1 0.2)",
    )
    p_faults.add_argument(
        "--n-objects", type=int, nargs="+", default=[16, 32, 64]
    )
    p_faults.add_argument("--trials", type=int, default=8)
    p_faults.add_argument(
        "--workers", type=int, default=None,
        help="fan campaign points out over N worker processes "
        "(bit-identical report to the serial run)",
    )
    p_faults.add_argument(
        "--stats", action="store_true",
        help="print fault/recovery telemetry (triggered, healed, "
        "retries, recovery-latency p50/p95/p99) after the campaign",
    )
    p_faults.add_argument(
        "--seed", type=int, default=42,
        help="campaign seed every fault draw and trial seed derives "
        "from (default 42)",
    )
    p_faults.add_argument(
        "--trace", metavar="FILE", default=None,
        help="record causal spans (fault triggers, retries, "
        "degradations) and write a Perfetto-loadable trace",
    )
    p_faults.add_argument(
        "--report", metavar="FILE", default=None,
        help="write the canonical JSON campaign report (sorted keys, "
        "byte-identical for the same seed)",
    )
    p_faults.add_argument(
        "--observe", metavar="DIR", default=None,
        help="sample per-cycle fabric state (lifecycle census, switch "
        "settings, junction states, NoC buffer depths) and write the "
        "observation bundle into DIR",
    )
    p_faults.add_argument(
        "--quiet", action="store_true",
        help="suppress the reproducibility banner",
    )
    p_faults.add_argument(
        "--engine", action="store_true",
        help="run the CSD phase of every trial through the batched, "
        "route-memoized sweep engine (byte-identical report and "
        "--observe bundle; cache stats go to stderr; ignored under "
        "--trace)",
    )
    p_faults.add_argument(
        "--kernel", choices=("route", "vector"), default="route",
        help="cold-path backend of the sweep engine (see fig3 --kernel); "
        "requires --engine",
    )
    p_faults.add_argument(
        "--csd-rate", type=float, default=None,
        help="pin the CSD-segment fault rate at this value while --rates "
        "sweeps every other fault kind (0 keeps the datapath fault-free "
        "so the engine's cached/vector kernels stay engaged); recorded "
        "in the report as 'csd_rate'",
    )
    p_faults.add_argument(
        "--profile", action="store_true",
        help="time the engine's own stages and print a self-profile "
        "summary (see fig3 --profile)",
    )

    p_report = sub.add_parser(
        "trace-report",
        help="analyse a --trace file: critical path, p50/p95/p99 phase "
        "latencies, blocking hotspots",
    )
    p_report.add_argument("trace_file", help="JSON file written by --trace")

    p_observe = sub.add_parser(
        "observe-report",
        help="summarise an --observe bundle (gauges, series, heatmaps, "
        "dropped-sample warnings)",
    )
    p_observe.add_argument(
        "observe_path",
        help="an --observe output directory, or its observe.json file",
    )

    p_profile = sub.add_parser(
        "profile",
        help="summarise the self-profiling layer of an --observe bundle "
        "(profile.* stage timers and route-memo counters)",
    )
    p_profile.add_argument(
        "observe_path",
        help="an --observe output directory (from a --profile run), or "
        "its observe.json file",
    )

    p_baseline = sub.add_parser(
        "baseline",
        help="record or check BENCH_*.json performance baselines",
    )
    baseline_sub = p_baseline.add_subparsers(dest="action", required=True)
    p_record = baseline_sub.add_parser(
        "record", help="run a bench and write its baseline file"
    )
    p_record.add_argument(
        "--bench", required=True,
        help="fig3, faults, engine, megascale, service, or planner",
    )
    p_record.add_argument(
        "--out", default=None,
        help="output path (default BENCH_<bench>.json)",
    )
    p_check = baseline_sub.add_parser(
        "check",
        help="re-run a baseline's bench and fail (exit 1) on regression",
    )
    p_check.add_argument("baseline_file", help="a BENCH_*.json file")
    p_check.add_argument(
        "--throughput-tolerance", type=float, default=0.15,
        help="max relative throughput drop before failing (default 0.15)",
    )
    p_check.add_argument(
        "--latency-tolerance", type=float, default=0.15,
        help="max relative p95 recovery-latency growth (default 0.15)",
    )
    p_check.add_argument(
        "--skip-wallclock", action="store_true",
        help="check only deterministic metrics (for CI runners whose "
        "speed is not comparable to the recording machine)",
    )

    p_chip = sub.add_parser("chip", help="summarise a fabric")
    p_chip.add_argument("--rows", type=int, default=8)
    p_chip.add_argument("--cols", type=int, default=8)

    p_defrag = sub.add_parser(
        "defrag",
        help="compact the deterministic defrag scenario suite under one "
        "reconfiguration strategy and emit the canonical cost report",
    )
    p_defrag.add_argument(
        "--scenario", default="all",
        help="one scenario name, or 'all' for the whole suite (default)",
    )
    p_defrag.add_argument(
        "--plan", choices=("legacy", "naive", "minimal"), default="minimal",
        help="execution strategy: 'legacy' (the release-then-reconfigure "
        "loop), 'naive' (same moves planned first; byte-identical report "
        "to legacy), or 'minimal' (delta rewiring; default)",
    )
    p_defrag.add_argument(
        "--mode", choices=("auto", "greedy", "exact"), default="auto",
        help="minimal-planner mode: 'auto' (exact when <=16 regions are "
        "movable, else greedy), 'greedy', or 'exact' (only with "
        "--plan minimal)",
    )
    p_defrag.add_argument(
        "--max-passes", type=int, default=8,
        help="compaction pass budget (default 8, like compact_until_stable)",
    )
    p_defrag.add_argument(
        "--report", metavar="FILE", default=None,
        help="write the canonical JSON report here instead of stdout "
        "(sorted keys; byte-identical for the same strategy)",
    )
    p_defrag.add_argument(
        "--quiet", action="store_true",
        help="suppress the reproducibility banner",
    )

    p_serve = sub.add_parser(
        "serve",
        help="run the resident fabric as a TCP service (length-prefixed "
        "JSON frames; see repro.service.protocol)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=0,
        help="listen port (default 0: pick an ephemeral port)",
    )
    p_serve.add_argument("--rows", type=int, default=8)
    p_serve.add_argument("--cols", type=int, default=8)
    p_serve.add_argument(
        "--max-tenants", type=int, default=None,
        help="admission cap on resident tenants (default unbounded)",
    )
    p_serve.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="also serve the live OpenMetrics snapshot over HTTP at "
        "/metrics on this port (enables observation; 0 picks an "
        "ephemeral port)",
    )

    p_sload = sub.add_parser(
        "service-load",
        help="drive a seeded multi-tenant load at a resident fabric and "
        "emit the canonical latency/utilization report (simulated "
        "cycles; byte-identical for the same seed)",
    )
    p_sload.add_argument(
        "--tenants", type=int, default=4,
        help="concurrent tenants, each with its own die shard (default 4)",
    )
    p_sload.add_argument(
        "--requests", type=int, default=32,
        help="operations per tenant between hello and bye (default 32)",
    )
    p_sload.add_argument(
        "--rps", type=float, default=500.0,
        help="nominal per-tenant request rate, converted to simulated "
        "inter-arrival cycles (default 500)",
    )
    p_sload.add_argument(
        "--seed", type=int, default=42,
        help="seed every tenant's script derives from (default 42)",
    )
    p_sload.add_argument("--rows", type=int, default=8)
    p_sload.add_argument("--cols", type=int, default=8)
    p_sload.add_argument(
        "--transport", choices=("inproc", "tcp"), default="inproc",
        help="drive the service in-process or over a real localhost TCP "
        "server (identical report either way)",
    )
    p_sload.add_argument(
        "--report", metavar="FILE", default=None,
        help="write the canonical JSON report here instead of stdout",
    )
    p_sload.add_argument(
        "--observe", metavar="DIR", default=None,
        help="record service gauges/series (per-tenant clocks, latency "
        "histogram) and write the observation bundle into DIR",
    )
    p_sload.add_argument(
        "--profile", action="store_true",
        help="time the service's request handling (profile.* stages) "
        "and print a self-profile summary",
    )
    p_sload.add_argument(
        "--quiet", action="store_true",
        help="suppress the reproducibility banner",
    )
    p_sload.add_argument(
        "--slo", metavar="SPEC", default=None,
        help="evaluate SLO objectives from a TOML/JSON spec over the "
        "run's records, embed the report, and exit 1 if any error "
        "budget is exhausted",
    )
    p_sload.add_argument(
        "--trace", metavar="FILE", default=None,
        help="record one causal span tree per request and write a "
        "Chrome trace (virtual-cycle timestamps; byte-identical "
        "across reruns and transports)",
    )
    p_sload.add_argument(
        "--records", metavar="FILE", default=None,
        help="dump the raw completion records (the input 'repro "
        "slo-report' re-evaluates offline)",
    )
    p_sload.add_argument(
        "--connect", metavar="HOST:PORT", default=None,
        help="drive an external, already-running 'repro serve' instead "
        "of an in-process fabric (incompatible with --trace/--observe/"
        "--profile, which record in the serving process)",
    )

    p_slo = sub.add_parser(
        "slo-report",
        help="re-evaluate SLO objectives over a saved service-load "
        "records dump; exits 1 when an error budget is exhausted",
    )
    p_slo.add_argument(
        "spec", metavar="SPEC",
        help="SLO spec file ([[objective]] tables; TOML subset or JSON)",
    )
    p_slo.add_argument(
        "--records", metavar="FILE", required=True,
        help="records document written by service-load --records",
    )
    p_slo.add_argument(
        "--report", metavar="FILE", default=None,
        help="also write the canonical JSON SLO report here",
    )

    args = parser.parse_args(argv)
    if args.command == "table":
        return _cmd_table(args.number)
    if args.command == "fig3":
        return _cmd_fig3(
            args.n_objects, args.trials, workers=args.workers,
            stats=args.stats, seed=args.seed, trace=args.trace,
            observe=args.observe, quiet=args.quiet, engine=args.engine,
            kernel=args.kernel, profile=args.profile,
        )
    if args.command == "faults":
        if args.rates is not None:
            rates = args.rates
        elif args.rate is not None:
            rates = [args.rate]
        else:
            rates = [0.0, 0.02, 0.05, 0.1, 0.2]
        return _cmd_faults(
            rates, args.n_objects, args.trials, workers=args.workers,
            stats=args.stats, seed=args.seed, trace=args.trace,
            report_path=args.report, observe=args.observe,
            quiet=args.quiet, engine=args.engine, kernel=args.kernel,
            csd_rate=args.csd_rate, profile=args.profile,
        )
    if args.command == "trace-report":
        return _cmd_trace_report(args.trace_file)
    if args.command == "observe-report":
        return _cmd_observe_report(args.observe_path)
    if args.command == "profile":
        return _cmd_profile_report(args.observe_path)
    if args.command == "baseline":
        return _cmd_baseline(args)
    if args.command == "chip":
        return _cmd_chip(args.rows, args.cols)
    if args.command == "defrag":
        return _cmd_defrag(
            args.scenario, args.plan, args.mode, args.max_passes,
            report_path=args.report, quiet=args.quiet,
        )
    if args.command == "serve":
        return _cmd_serve(
            args.host, args.port, args.rows, args.cols,
            max_tenants=args.max_tenants, metrics_port=args.metrics_port,
        )
    if args.command == "service-load":
        return _cmd_service_load(
            args.tenants, args.requests, args.rps, seed=args.seed,
            rows=args.rows, cols=args.cols, transport=args.transport,
            report_path=args.report, observe=args.observe,
            profile=args.profile, quiet=args.quiet, slo=args.slo,
            trace=args.trace, records_path=args.records,
            connect=args.connect,
        )
    if args.command == "slo-report":
        return _cmd_slo_report(
            args.spec, args.records, report_path=args.report
        )
    return 2  # pragma: no cover


if __name__ == "__main__":
    raise SystemExit(main())
