"""Workloads: dataflow graphs, generators, and example programs.

The paper evaluates with synthetic datapath configurations (Figure 3's
locality-controlled random datapaths) and motivates the architecture
with streaming and control-flow examples (Figure 7's conditional).  This
package provides the application-side IR those experiments need:

* :mod:`repro.workloads.dataflow` — a dataflow-graph IR convertible to a
  configuration stream, an object library, and an executable datapath;
* :mod:`repro.workloads.generators` — random DAGs with controlled
  locality, streaming chains, and classic kernels (SAXPY, FIR, Horner);
* :mod:`repro.workloads.programs` — the Figure 7 conditional program
  partitioned into basic blocks;
* :mod:`repro.workloads.traces` — object-reference traces with
  controlled reuse distance for the CACHE-model benches.
"""

from repro.workloads.dataflow import DataflowGraph, DFNode
from repro.workloads.generators import (
    random_dag,
    streaming_chain,
    saxpy_graph,
    fir_filter_graph,
    horner_graph,
)
from repro.workloads.programs import (
    BasicBlock,
    PartitionedProgram,
    figure7_program,
)
from repro.workloads.traces import (
    geometric_reuse_trace,
    looping_trace,
    scan_trace,
)
from repro.workloads.objectcode import parse_object_code, emit_object_code

__all__ = [
    "DataflowGraph",
    "DFNode",
    "random_dag",
    "streaming_chain",
    "saxpy_graph",
    "fir_filter_graph",
    "horner_graph",
    "BasicBlock",
    "PartitionedProgram",
    "figure7_program",
    "geometric_reuse_trace",
    "looping_trace",
    "scan_trace",
    "parse_object_code",
    "emit_object_code",
]
