"""Workload generators: random DAGs and classic streaming kernels.

The random-DAG generator mirrors the Figure 3 configuration model at the
application level (locality-controlled source selection); the named
kernels are the "streaming application with a large (data) dependency"
class the introduction motivates the VLSI processor with.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.ap.objects import Operation
from repro.workloads.dataflow import DataflowGraph, DFNode

__all__ = [
    "random_dag",
    "streaming_chain",
    "saxpy_graph",
    "fir_filter_graph",
    "horner_graph",
]

#: Binary operations the random generator draws from.
_BINARY_OPS = (
    Operation.FADD,
    Operation.FSUB,
    Operation.FMUL,
    Operation.MIN,
    Operation.MAX,
)


def random_dag(
    n_nodes: int,
    locality: float = 0.5,
    n_inputs: int = 2,
    seed: Optional[int] = None,
) -> DataflowGraph:
    """A random, always-valid dataflow DAG with controlled locality.

    Node *i*'s sources are drawn from the ``spread`` most recent earlier
    nodes, where ``spread = max(1, round((1-locality) * i))`` — locality 1
    chains neighbours (a deep pipeline), locality 0 reaches anywhere back
    (long dependency distances that stress the stack).

    Parameters
    ----------
    n_nodes:
        Total node count including inputs.
    locality:
        In [0, 1], as in :mod:`repro.csd.locality`.
    n_inputs:
        Leading CONST input nodes.
    """
    if n_nodes < 2:
        raise ValueError("need at least two nodes")
    if not 0.0 <= locality <= 1.0:
        raise ValueError("locality must be in [0, 1]")
    if not 1 <= n_inputs < n_nodes:
        raise ValueError("inputs must be in [1, n_nodes)")
    rng = np.random.default_rng(seed)
    graph = DataflowGraph()
    for i in range(n_inputs):
        graph.add(i, Operation.CONST, init_data=float(i + 1))
    for i in range(n_inputs, n_nodes):
        spread = max(1, round((1.0 - locality) * i))
        lo = max(0, i - spread)
        a = int(rng.integers(lo, i))
        b = int(rng.integers(lo, i))
        op = _BINARY_OPS[int(rng.integers(len(_BINARY_OPS)))]
        graph.add(i, op, sources=(a, b))
    return graph


def streaming_chain(depth: int, op: Operation = Operation.FADD) -> DataflowGraph:
    """A straight pipeline: input → op(.., c) → op(.., c) → ...

    The maximally-local datapath: every dependency distance is 1 — the
    shape the S-topology's folded linear array serves without any global
    wiring.
    """
    if depth < 1:
        raise ValueError("depth must be positive")
    graph = DataflowGraph()
    graph.add(0, Operation.CONST, init_data=0.0)  # stream input placeholder
    graph.add(1, Operation.CONST, init_data=1.0)  # per-stage coefficient
    prev = 0
    for i in range(2, depth + 2):
        graph.add(i, op, sources=(prev, 1))
        prev = i
    return graph


def saxpy_graph() -> DataflowGraph:
    """``z = a*x + y`` — the canonical streaming kernel."""
    graph = DataflowGraph()
    graph.add(0, Operation.CONST, init_data=2.0)  # a
    graph.add(1, Operation.CONST, init_data=0.0)  # x (stream input)
    graph.add(2, Operation.CONST, init_data=0.0)  # y (stream input)
    graph.add(3, Operation.FMUL, sources=(0, 1))  # a*x
    graph.add(4, Operation.FADD, sources=(3, 2))  # a*x + y
    return graph


def fir_filter_graph(taps: Sequence[float]) -> DataflowGraph:
    """A transposed-form FIR filter over explicit delay-line inputs.

    Inputs are nodes ``0..len(taps)-1`` (the delay line x[n-k]); node IDs
    then alternate multiply and accumulate stages.  Output is the last
    accumulate node.
    """
    if not taps:
        raise ValueError("FIR needs at least one tap")
    graph = DataflowGraph()
    n = len(taps)
    for k in range(n):
        graph.add(k, Operation.CONST, init_data=0.0)  # x[n-k]
    coeff_base = n
    for k, c in enumerate(taps):
        graph.add(coeff_base + k, Operation.CONST, init_data=float(c))
    mul_base = 2 * n
    for k in range(n):
        graph.add(mul_base + k, Operation.FMUL, sources=(k, coeff_base + k))
    acc = mul_base  # first product
    acc_base = 3 * n
    for k in range(1, n):
        graph.add(acc_base + k - 1, Operation.FADD, sources=(acc, mul_base + k))
        acc = acc_base + k - 1
    return graph


def horner_graph(coefficients: Sequence[float]) -> DataflowGraph:
    """Polynomial evaluation by Horner's rule: deep, serial dependency.

    ``p(x) = (((c_n x + c_{n-1}) x + ...) x + c_0)`` — the worst case for
    ILP, the best case for a chained linear datapath.
    """
    if len(coefficients) < 2:
        raise ValueError("need at least two coefficients")
    graph = DataflowGraph()
    graph.add(0, Operation.CONST, init_data=0.0)  # x (stream input)
    coeffs = list(coefficients)
    base = 1
    for i, c in enumerate(coeffs):
        graph.add(base + i, Operation.CONST, init_data=float(c))
    acc = base  # c_n
    nid = base + len(coeffs)
    for i in range(1, len(coeffs)):
        graph.add(nid, Operation.FMUL, sources=(acc, 0))
        graph.add(nid + 1, Operation.FADD, sources=(nid, base + i))
        acc = nid + 1
        nid += 2
    return graph
