"""Textual object code (paper section 2.4).

"The dependency distance can be observed by an object code showing the
object IDs."  This module defines that observable form: a tiny
line-oriented assembly for configuration streams and object libraries,
used by the examples and handy for debugging datapaths by hand.

Grammar (one statement per line, ``#`` comments)::

    <id> = const <value>          ; a CONST logical object
    <id> = <op> <src> [<src>...]  ; an operator chained to its sources
    <id> = input                  ; an external input (CONST placeholder)

Example::

    0 = input          # x
    1 = const 2.0      # a
    2 = fmul 1 0       # a*x
    3 = input          # y
    4 = fadd 2 3       # a*x + y
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import StreamFormatError
from repro.ap.objects import Operation
from repro.workloads.dataflow import DataflowGraph

__all__ = ["parse_object_code", "emit_object_code"]

_OP_NAMES: Dict[str, Operation] = {op.value: op for op in Operation}


def parse_object_code(text: str) -> DataflowGraph:
    """Parse object code into a :class:`DataflowGraph`.

    Raises
    ------
    StreamFormatError
        On any malformed line, unknown operation, bad arity (checked at
        lowering), or duplicate ID.
    """
    graph = DataflowGraph()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            lhs, rhs = (part.strip() for part in line.split("=", 1))
        except ValueError:
            raise StreamFormatError(
                f"line {lineno}: expected '<id> = <op> ...', got {raw!r}"
            ) from None
        try:
            node_id = int(lhs)
        except ValueError:
            raise StreamFormatError(
                f"line {lineno}: object ID {lhs!r} is not an integer"
            ) from None
        tokens = rhs.split()
        if not tokens:
            raise StreamFormatError(f"line {lineno}: empty right-hand side")
        mnemonic = tokens[0].lower()
        if mnemonic == "input":
            graph.add(node_id, Operation.CONST, init_data=0.0)
            continue
        if mnemonic == "const":
            if len(tokens) != 2:
                raise StreamFormatError(
                    f"line {lineno}: const takes exactly one value"
                )
            graph.add(node_id, Operation.CONST, init_data=_number(tokens[1], lineno))
            continue
        op = _OP_NAMES.get(mnemonic)
        if op is None:
            raise StreamFormatError(
                f"line {lineno}: unknown operation {mnemonic!r}"
            )
        try:
            sources = tuple(int(t) for t in tokens[1:])
        except ValueError:
            raise StreamFormatError(
                f"line {lineno}: sources must be integer object IDs"
            ) from None
        graph.add(node_id, op, sources=sources)
    return graph


def emit_object_code(graph: DataflowGraph) -> str:
    """Render a graph back to object code (inverse of the parser)."""
    lines: List[str] = []
    for node in graph:
        if node.operation is Operation.CONST:
            if node.init_data in (0, 0.0):
                lines.append(f"{node.node_id} = input")
            else:
                lines.append(f"{node.node_id} = const {node.init_data}")
        else:
            srcs = " ".join(str(s) for s in node.sources)
            lines.append(f"{node.node_id} = {node.operation.value} {srcs}".rstrip())
    return "\n".join(lines)


def _number(token: str, lineno: int) -> float:
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        raise StreamFormatError(
            f"line {lineno}: {token!r} is not a number"
        ) from None
