"""Object-reference traces with controlled reuse behaviour.

Inputs for the CACHE-model benches (section 2.4): traces whose stack-
distance profile is known by construction, so hit-rate predictions can
be validated.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

__all__ = ["geometric_reuse_trace", "looping_trace", "scan_trace"]


def geometric_reuse_trace(
    length: int,
    n_objects: int,
    p_reuse: float = 0.7,
    seed: Optional[int] = None,
) -> List[int]:
    """A trace where each reference reuses a recent object with
    probability ``p_reuse`` (geometric recency preference) and otherwise
    touches a uniformly random object.

    Higher ``p_reuse`` concentrates stack distances near the top —
    higher temporal locality, higher hit rate at small capacity.
    """
    if length < 0:
        raise ValueError("length cannot be negative")
    if n_objects < 1:
        raise ValueError("need at least one object")
    if not 0.0 <= p_reuse <= 1.0:
        raise ValueError("p_reuse must be a probability")
    rng = np.random.default_rng(seed)
    recent: List[int] = []
    trace: List[int] = []
    for _ in range(length):
        if recent and rng.random() < p_reuse:
            # geometric preference for the most recent entries
            idx = min(int(rng.geometric(0.5)) - 1, len(recent) - 1)
            obj = recent[idx]
        else:
            obj = int(rng.integers(n_objects))
        trace.append(obj)
        if obj in recent:
            recent.remove(obj)
        recent.insert(0, obj)
        recent = recent[:32]
    return trace


def looping_trace(n_objects: int, n_loops: int) -> List[int]:
    """``0,1,...,N-1`` repeated — every re-reference has stack distance
    exactly ``N-1``, so a capacity-N cache hits everything after the
    first lap and a capacity-(N-1) cache hits nothing (the classic LRU
    looping pathology)."""
    if n_objects < 1 or n_loops < 1:
        raise ValueError("need positive sizes")
    return list(range(n_objects)) * n_loops


def scan_trace(n_objects: int) -> List[int]:
    """A one-pass scan: no reuse at all, hit rate 0 at any capacity."""
    if n_objects < 0:
        raise ValueError("length cannot be negative")
    return list(range(n_objects))
