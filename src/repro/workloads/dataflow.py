"""Dataflow-graph IR bridging applications and the AP substrate.

A :class:`DataflowGraph` is the application-side description of a
datapath: nodes with operations, edges with dependencies.  It lowers to
the three AP-side artifacts:

* a **configuration stream** (:meth:`DataflowGraph.to_config_stream`) —
  the global configuration data that requests and chains the objects;
* an **object library** (:meth:`DataflowGraph.to_library`) — the logical
  objects stored in memory blocks;
* an executable **datapath** (:meth:`DataflowGraph.to_datapath`) for
  functional simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.ap.config_stream import ConfigElement, ConfigStream
from repro.ap.datapath import Datapath
from repro.ap.objects import LogicalObject, ObjectKind, Operation
from repro.ap.virtual_hw import ObjectLibrary

__all__ = ["DFNode", "DataflowGraph"]


@dataclass(frozen=True)
class DFNode:
    """One application operation."""

    node_id: int
    operation: Operation
    sources: Tuple[int, ...] = ()
    init_data: Any = None
    kind: ObjectKind = ObjectKind.COMPUTE

    def to_logical(self) -> LogicalObject:
        return LogicalObject(self.node_id, self.operation, self.init_data, self.kind)


class DataflowGraph:
    """An ordered collection of :class:`DFNode` in definition order.

    Definition order matters: it becomes the configuration-stream order,
    which in turn fixes the dependency distances the stack sees.
    """

    def __init__(self, nodes: Sequence[DFNode] = ()) -> None:
        self._nodes: List[DFNode] = []
        self._by_id: Dict[int, DFNode] = {}
        for node in nodes:
            self.add_node(node)

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self):
        return iter(self._nodes)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._by_id

    def node(self, node_id: int) -> DFNode:
        try:
            return self._by_id[node_id]
        except KeyError:
            raise ConfigurationError(f"no node {node_id} in graph") from None

    def add_node(self, node: DFNode) -> DFNode:
        if node.node_id in self._by_id:
            raise ConfigurationError(f"duplicate node id {node.node_id}")
        self._nodes.append(node)
        self._by_id[node.node_id] = node
        return node

    def add(
        self,
        node_id: int,
        operation: Operation,
        sources: Sequence[int] = (),
        init_data: Any = None,
    ) -> DFNode:
        """Convenience builder."""
        return self.add_node(DFNode(node_id, operation, tuple(sources), init_data))

    # -- lowering ---------------------------------------------------------

    def to_config_stream(self) -> ConfigStream:
        """The global configuration data stream for this graph."""
        return ConfigStream(
            [ConfigElement(n.node_id, n.sources) for n in self._nodes]
        )

    def to_library(self, load_latency: int = 4) -> ObjectLibrary:
        """The object library holding every node's logical object."""
        return ObjectLibrary(
            [n.to_logical() for n in self._nodes], load_latency=load_latency
        )

    def to_datapath(self) -> Datapath:
        """An executable datapath (validates arities and acyclicity)."""
        dp = Datapath()
        for node in self._nodes:
            dp.add(node.to_logical(), node.sources)
        dp.topological_order()  # raise early on cycles/missing sources
        return dp

    # -- analysis -----------------------------------------------------------

    def input_ids(self) -> List[int]:
        """Nodes no other node feeds — the graph's external inputs
        (CONST nodes count as inputs too)."""
        return [n.node_id for n in self._nodes if not n.sources]

    def output_ids(self) -> List[int]:
        """Nodes nothing consumes — the graph's results."""
        consumed = {s for n in self._nodes for s in n.sources}
        return [n.node_id for n in self._nodes if n.node_id not in consumed]

    def edge_count(self) -> int:
        return sum(len(n.sources) for n in self._nodes)

    def execute(self, inputs: Optional[Dict[int, Any]] = None) -> Dict[int, Any]:
        """One-shot functional evaluation (via the datapath lowering)."""
        return self.to_datapath().execute(inputs=inputs)
