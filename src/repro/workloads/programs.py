"""Basic-block partitioned programs (paper Figure 7).

"The application can be partitioned into four atomic blocks ... The
first processor sends data to either the second or third processor
depending on the condition.  The second or third processor is activated
and sends the result to the fourth processor."

The example program::

    if (x > y)
        z = x + 1;
    else
        z = y + 2;
    z = buff

partitions into four blocks — condition, then-branch, else-branch, and
merge — each small enough to run on one minimum AP, communicating
through memory blocks (section 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.ap.objects import Operation
from repro.workloads.dataflow import DataflowGraph

__all__ = ["BasicBlock", "PartitionedProgram", "figure7_program"]


@dataclass
class BasicBlock:
    """One atomic block: a dataflow graph plus control-flow successors.

    Attributes
    ----------
    name:
        Block label ("cond", "then", ...).
    graph:
        The block's datapath.
    input_ids:
        Graph node IDs that receive values from predecessors (or program
        inputs).
    output_ids:
        Graph node IDs whose values are sent onward.
    successors:
        ``[(condition, block_name)]`` — ``condition`` is the output key
        whose truthiness picks the successor, or ``None`` for an
        unconditional edge.
    """

    name: str
    graph: DataflowGraph
    input_ids: List[int] = field(default_factory=list)
    output_ids: List[int] = field(default_factory=list)
    successors: List[Tuple[Optional[Any], str]] = field(default_factory=list)

    def run(self, inputs: Dict[int, Any]) -> Dict[int, Any]:
        """Execute the block; returns ``{output_id: value}``."""
        values = self.graph.execute(inputs=inputs)
        return {oid: values[oid] for oid in self.output_ids}


class PartitionedProgram:
    """A control-flow graph of basic blocks with one entry block."""

    def __init__(self, entry: str) -> None:
        self.entry = entry
        self._blocks: Dict[str, BasicBlock] = {}

    def add_block(self, block: BasicBlock) -> BasicBlock:
        if block.name in self._blocks:
            raise ConfigurationError(f"duplicate block {block.name!r}")
        self._blocks[block.name] = block
        return block

    def block(self, name: str) -> BasicBlock:
        try:
            return self._blocks[name]
        except KeyError:
            raise ConfigurationError(f"no block {name!r}") from None

    def blocks(self) -> List[BasicBlock]:
        return list(self._blocks.values())

    def __len__(self) -> int:
        return len(self._blocks)

    def validate(self) -> None:
        """Check the entry exists and every successor is defined."""
        if self.entry not in self._blocks:
            raise ConfigurationError(f"entry block {self.entry!r} missing")
        for block in self._blocks.values():
            for _, succ in block.successors:
                if succ not in self._blocks:
                    raise ConfigurationError(
                        f"block {block.name!r} targets unknown block {succ!r}"
                    )


def figure7_program(x_id: int = 100, y_id: int = 101) -> PartitionedProgram:
    """The paper's Figure 7 example, partitioned into four atomic blocks.

    Program inputs are delivered to the condition block under IDs
    ``x_id`` and ``y_id``; the final buffered ``z`` is the merge block's
    single output.
    """
    program = PartitionedProgram(entry="cond")

    # Block 1: if (x > y) — sends x to "then" or y to "else"
    cond = DataflowGraph()
    cond.add(x_id, Operation.CONST, init_data=0)
    cond.add(y_id, Operation.CONST, init_data=0)
    cond.add(0, Operation.CMP_GT, sources=(x_id, y_id))
    program.add_block(
        BasicBlock(
            name="cond",
            graph=cond,
            input_ids=[x_id, y_id],
            output_ids=[0, x_id, y_id],
            successors=[(0, "then"), (None, "else")],
        )
    )

    # Block 2: t = x + 1; send t to buff
    then_g = DataflowGraph()
    then_g.add(x_id, Operation.CONST, init_data=0)
    then_g.add(1, Operation.CONST, init_data=1)
    then_g.add(2, Operation.IADD, sources=(x_id, 1))
    program.add_block(
        BasicBlock(
            name="then",
            graph=then_g,
            input_ids=[x_id],
            output_ids=[2],
            successors=[(None, "merge")],
        )
    )

    # Block 3: f = y + 2; send f to buff
    else_g = DataflowGraph()
    else_g.add(y_id, Operation.CONST, init_data=0)
    else_g.add(1, Operation.CONST, init_data=2)
    else_g.add(2, Operation.IADD, sources=(y_id, 1))
    program.add_block(
        BasicBlock(
            name="else",
            graph=else_g,
            input_ids=[y_id],
            output_ids=[2],
            successors=[(None, "merge")],
        )
    )

    # Block 4: z = buff
    merge_g = DataflowGraph()
    merge_g.add(0, Operation.CONST, init_data=0)  # buff
    merge_g.add(1, Operation.PASS, sources=(0,))
    program.add_block(
        BasicBlock(
            name="merge",
            graph=merge_g,
            input_ids=[0],
            output_ids=[1],
            successors=[],
        )
    )

    program.validate()
    return program
