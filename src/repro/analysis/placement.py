"""Placement analysis: chaining distance in Manhattan terms (abstract, §4).

"We analyzed the cost in terms of the available number of clusters ...
and delay in Manhattan-distance of the chip" — this module makes that
analysis available for *actual* placements: objects of a configured
datapath are laid along a region's linear (stack) order, every chaining
gets a physical Manhattan length on the cluster grid, and lengths
convert to RC delays through the §4 wire model.

The punchline the paper builds on: on the folded linear array, a
dependency of distance *d* in the stream is at most *d* clusters away
on silicon, so locality in the object code is locality in metal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ap.config_stream import ConfigStream
from repro.costmodel.wire_delay import WireParameters, elmore_delay_s
from repro.topology.metrics import manhattan
from repro.topology.regions import Region

__all__ = ["PlacedChain", "PlacementReport", "analyze_placement"]

Coord = Tuple[int, int]


@dataclass(frozen=True)
class PlacedChain:
    """One source→sink chaining with its physical geometry."""

    source_id: int
    sink_id: int
    source_cluster: Coord
    sink_cluster: Coord

    @property
    def manhattan_clusters(self) -> int:
        return manhattan(self.source_cluster, self.sink_cluster)


@dataclass(frozen=True)
class PlacementReport:
    """Geometry statistics of one datapath placed on one region."""

    chains: Tuple[PlacedChain, ...]
    objects_per_cluster: int

    @property
    def max_distance(self) -> int:
        return max((c.manhattan_clusters for c in self.chains), default=0)

    @property
    def mean_distance(self) -> float:
        if not self.chains:
            return 0.0
        return float(np.mean([c.manhattan_clusters for c in self.chains]))

    @property
    def local_fraction(self) -> float:
        """Fraction of chains staying within one cluster (distance 0)."""
        if not self.chains:
            return 1.0
        return sum(1 for c in self.chains if c.manhattan_clusters == 0) / len(
            self.chains
        )

    def critical_delay_ns(
        self, params: WireParameters, cluster_pitch_um: float
    ) -> float:
        """RC delay of the longest chain: Manhattan distance × cluster
        pitch through the §4 wire model."""
        if cluster_pitch_um <= 0:
            raise ValueError("cluster pitch must be positive")
        length_um = self.max_distance * cluster_pitch_um
        if length_um == 0:
            return 0.0
        return elmore_delay_s(params, length_um) * 1e9


def analyze_placement(
    stream: ConfigStream,
    region: Region,
    objects_per_cluster: int = 16,
) -> PlacementReport:
    """Place a configuration stream's objects along a region and measure
    every chaining's Manhattan distance.

    Placement follows the stack discipline: objects occupy linear
    positions in first-reference order (each new object enters the
    array; the fold maps linear position → cluster).

    Raises
    ------
    ValueError
        If the datapath needs more objects than the region holds.
    """
    if objects_per_cluster < 1:
        raise ValueError("objects per cluster must be positive")
    # assign linear positions in first-reference order
    position: Dict[int, int] = {}
    for element in stream:
        for oid in element.referenced_ids:
            if oid not in position:
                position[oid] = len(position)
    capacity = len(region) * objects_per_cluster
    if len(position) > capacity:
        raise ValueError(
            f"datapath of {len(position)} objects exceeds the region's "
            f"{capacity} object slots"
        )

    def cluster_of(oid: int) -> Coord:
        return region.path[position[oid] // objects_per_cluster]

    chains: List[PlacedChain] = []
    for element in stream:
        for src in element.sources:
            if src not in position:
                continue  # references an object outside this datapath
            chains.append(
                PlacedChain(
                    source_id=src,
                    sink_id=element.sink,
                    source_cluster=cluster_of(src),
                    sink_cluster=cluster_of(element.sink),
                )
            )
    return PlacementReport(tuple(chains), objects_per_cluster)
