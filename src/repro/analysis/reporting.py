"""Fixed-width table formatting for the benchmark harness.

Every bench prints the rows/series it regenerates in the same layout the
paper's tables use, so paper-vs-measured comparisons read side by side.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence

from repro.telemetry.metrics import Histogram

__all__ = ["format_table", "format_series", "format_telemetry"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str = "",
) -> str:
    """Render an ASCII table with right-aligned numeric-ish columns."""
    rows = [[_cell(v) for v in row] for row in rows]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    series: Dict[Any, Sequence[Any]],
    x_label: str = "x",
    y_label: str = "y",
    title: str = "",
) -> str:
    """Render ``{series_key: [(x, y), ...]}`` as grouped rows."""
    lines: List[str] = []
    if title:
        lines.append(title)
    for key in series:
        lines.append(f"[{key}]")
        for x, y in series[key]:
            lines.append(f"  {x_label}={_cell(x):>8}  {y_label}={_cell(y)}")
    return "\n".join(lines)


def format_telemetry(snapshot: Dict[str, Any], title: str = "") -> str:
    """Render a telemetry registry snapshot as counter/timer tables.

    Zero-valued instruments are elided so a sweep's summary shows only
    the paths that actually fired.
    """
    sections: List[str] = []
    counters = [
        (name, value)
        for name, value in snapshot.get("counters", {}).items()
        if value
    ]
    if counters:
        sections.append(
            format_table(["Counter", "Count"], counters, title=title)
        )
    timers = [
        (name, stats["calls"], f"{stats['total_s']:.4f}",
         f"{stats['total_s'] / stats['calls'] * 1e3:.3f}")
        for name, stats in snapshot.get("timers", {}).items()
        if stats["calls"]
    ]
    if timers:
        sections.append(
            format_table(
                ["Timer", "Calls", "Total [s]", "Mean [ms]"],
                timers,
                title="" if sections else title,
            )
        )
    histograms = [
        (name, hist.count, hist.min, hist.p50, hist.p95, hist.p99,
         hist.max, hist.stddev)
        for name, hist in (
            (name, Histogram(name, values))
            for name, values in snapshot.get("histograms", {}).items()
        )
        if hist.count
    ]
    if histograms:
        sections.append(
            format_table(
                ["Histogram", "Count", "Min", "p50", "p95", "p99",
                 "Max", "Stddev"],
                histograms,
                title="" if sections else title,
            )
        )
    gauges = [
        (name, state.get("value", 0.0), state.get("updates", 0))
        for name, state in sorted(snapshot.get("gauges", {}).items())
        if state.get("updates")
    ]
    if gauges:
        sections.append(
            format_table(
                ["Gauge", "Value", "Updates"],
                gauges,
                title="" if sections else title,
            )
        )
    series = [
        (
            name,
            len(samples),
            min(v for _, v in samples),
            max(v for _, v in samples),
            samples[-1][1],
        )
        for name, samples in (
            (name, state.get("samples", []))
            for name, state in sorted(snapshot.get("series", {}).items())
        )
        if samples
    ]
    if series:
        sections.append(
            format_table(
                ["Series", "Samples", "Min", "Max", "Last"],
                series,
                title="" if sections else title,
            )
        )
    heatmaps = [
        (
            name,
            len({r for r, _, _ in cells}),
            len({c for _, c, _ in cells}),
            sum(v for _, _, v in cells),
        )
        for name, cells in (
            (name, state.get("cells", []))
            for name, state in sorted(snapshot.get("heatmaps", {}).items())
        )
        if cells
    ]
    if heatmaps:
        sections.append(
            format_table(
                ["Heatmap", "Rows", "Cycles", "Sum"],
                heatmaps,
                title="" if sections else title,
            )
        )
    dropped = snapshot.get("events_dropped", 0)
    if dropped:
        sections.append(
            f"events dropped: {dropped} (ring buffer full — "
            "older events were discarded)"
        )
    if not sections:
        return f"{title}\n(no events recorded)" if title else "(no events recorded)"
    return "\n\n".join(sections)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)
