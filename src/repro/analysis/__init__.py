"""Analysis and reporting helpers shared by the benchmark harness.

* :mod:`repro.analysis.stack_distance` — dependency-distance and stack-
  distance profiling of configuration streams (the §2.4 CACHE model);
* :mod:`repro.analysis.channel_usage` — summarising CSD simulation
  series (Figure 3);
* :mod:`repro.analysis.reporting` — fixed-width table/series formatting
  so every bench prints the same layout the paper's tables use.
"""

from repro.analysis.stack_distance import (
    DistanceProfile,
    profile_stream,
    profile_trace,
)
from repro.analysis.channel_usage import ChannelUsageSummary, summarize_series
from repro.analysis.placement import (
    PlacedChain,
    PlacementReport,
    analyze_placement,
)
from repro.analysis.reporting import format_table, format_series

__all__ = [
    "DistanceProfile",
    "profile_stream",
    "profile_trace",
    "ChannelUsageSummary",
    "summarize_series",
    "PlacedChain",
    "PlacementReport",
    "analyze_placement",
    "format_table",
    "format_series",
]
