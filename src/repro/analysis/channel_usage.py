"""Channel-usage summaries and the §2.7 locality decomposition.

"The number of channels required for a dynamic CSD network is
determined by the spatial locality, for deciding the dependency
distance, the temporal locality indicating how frequently communicated,
and the communication orders to consume the channels that decides the
communication path allocation on channels."

:func:`locality_decomposition` measures those three determinants for a
request sequence; :func:`order_sensitivity` quantifies the third one
directly by re-allocating the *same* request multiset in shuffled
orders and reporting the channel-count spread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.csd.dynamic_csd import DynamicCSDNetwork
from repro.csd.locality import ChainingRequest
from repro.csd.simulator import SimulationResult

__all__ = [
    "ChannelUsageSummary",
    "summarize_series",
    "locality_decomposition",
    "order_sensitivity",
]


@dataclass(frozen=True)
class ChannelUsageSummary:
    """Aggregates one Figure 3 curve (fixed N, locality swept)."""

    n_objects: int
    max_used: int
    min_used: int
    max_fraction: float
    half_n_sufficient: bool
    never_used_full_n: bool


def summarize_series(series: Sequence[SimulationResult]) -> ChannelUsageSummary:
    """Summarise one locality-swept curve against the paper's claims.

    Raises
    ------
    ValueError
        On an empty series or mixed array sizes.
    """
    if not series:
        raise ValueError("empty series")
    sizes = {r.n_objects for r in series}
    if len(sizes) != 1:
        raise ValueError(f"series mixes array sizes {sizes}")
    n = sizes.pop()
    used = [r.used_channels for r in series]
    return ChannelUsageSummary(
        n_objects=n,
        max_used=max(used),
        min_used=min(used),
        max_fraction=max(used) / n,
        half_n_sufficient=max(used) <= n // 2 + max(1, n // 16),
        never_used_full_n=max(used) < n,
    )


def locality_decomposition(
    requests: Sequence[ChainingRequest], n_objects: int
) -> Dict[str, float]:
    """The three §2.7 channel-demand determinants of a request sequence.

    Returns
    -------
    dict with:
    ``spatial_locality``
        1 − mean dependency distance / N (1 = all neighbours).
    ``temporal_locality``
        Fraction of requests repeating an earlier (source, sink) pair —
        repeats reuse an existing chain instead of a new channel.
    ``request_count``
        The raw communication-order length (demand scales with it).
    """
    if n_objects < 2:
        raise ValueError("need at least two objects")
    if not requests:
        return {
            "spatial_locality": 1.0,
            "temporal_locality": 0.0,
            "request_count": 0,
        }
    spans = [r.span_length for r in requests]
    seen: set = set()
    repeats = 0
    for r in requests:
        key = (r.source, r.sink)
        if key in seen:
            repeats += 1
        seen.add(key)
    return {
        "spatial_locality": 1.0 - float(np.mean(spans)) / n_objects,
        "temporal_locality": repeats / len(requests),
        "request_count": len(requests),
    }


def order_sensitivity(
    requests: Sequence[ChainingRequest],
    n_objects: int,
    n_shuffles: int = 10,
    seed: int = 0,
) -> Tuple[int, int]:
    """Channel demand of the same request multiset under shuffled orders.

    Returns ``(min_used, max_used)`` across the shuffles — the §2.7
    "communication orders" effect isolated from spatial and temporal
    locality (which shuffling preserves).
    """
    if n_shuffles < 1:
        raise ValueError("need at least one shuffle")
    rng = np.random.default_rng(seed)
    counts: List[int] = []
    order = list(requests)
    for i in range(n_shuffles):
        if i > 0:
            rng.shuffle(order)
        net = DynamicCSDNetwork(n_objects, n_channels=n_objects)
        for req in order:
            net.connect(req.source, req.sink)
        counts.append(net.used_channels())
    return min(counts), max(counts)
