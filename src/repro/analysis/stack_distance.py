"""Stack-distance / dependency-distance profiling (paper section 2.4).

"The stack distance is equivalent to the dependency distance in the
CACHE model.  The dependency distance can be observed by an object code
showing the object IDs."

:func:`profile_trace` runs the Mattson analysis over a raw reference
trace; :func:`profile_stream` does the same for a configuration stream
and also reports the stream's dependency distances, making the §2.4
equivalence claim measurable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.ap.cache_model import hit_rate_curve, stack_distances
from repro.ap.config_stream import ConfigStream

__all__ = ["DistanceProfile", "profile_trace", "profile_stream"]


@dataclass(frozen=True)
class DistanceProfile:
    """Distance statistics plus the hit-rate curve they imply."""

    references: int
    cold_misses: int
    mean_distance: float
    max_distance: float
    hit_rates: Dict[int, float]

    def required_capacity(self, target_hit_rate: float) -> int:
        """Smallest evaluated capacity meeting the target warm-hit rate.

        Returns the largest evaluated capacity if none suffices.
        """
        if not 0.0 <= target_hit_rate <= 1.0:
            raise ValueError("target must be a probability")
        for cap in sorted(self.hit_rates):
            if self.hit_rates[cap] >= target_hit_rate:
                return cap
        return max(self.hit_rates) if self.hit_rates else 0


def profile_trace(
    trace: Sequence[int], capacities: Sequence[int] = (4, 8, 16, 32, 64, 128)
) -> DistanceProfile:
    """Mattson profile of a raw object-ID reference trace."""
    distances = stack_distances(trace)
    finite = [d for d in distances if not math.isinf(d)]
    return DistanceProfile(
        references=len(distances),
        cold_misses=len(distances) - len(finite),
        mean_distance=float(np.mean(finite)) if finite else 0.0,
        max_distance=float(max(finite)) if finite else 0.0,
        hit_rates=hit_rate_curve(trace, capacities),
    )


def profile_stream(
    stream: ConfigStream, capacities: Sequence[int] = (4, 8, 16, 32, 64, 128)
) -> DistanceProfile:
    """Profile a configuration stream's object-reference behaviour.

    Uses the flattened reference trace (sink then sources per element),
    which is exactly what the pipeline's request stage sees.
    """
    return profile_trace(stream.reference_trace(), capacities)


def dependency_vs_stack_distance(stream: ConfigStream) -> Dict[str, float]:
    """Quantify the §2.4 equivalence: mean dependency distance (stream
    elements) vs mean warm stack distance (objects).

    The two measure the same reuse structure in different units; both
    shrink together as locality rises.
    """
    dep = stream.dependency_distances()
    distances = [
        d for d in stack_distances(stream.reference_trace()) if not math.isinf(d)
    ]
    return {
        "mean_dependency_distance": float(np.mean(dep)) if dep else 0.0,
        "mean_stack_distance": float(np.mean(distances)) if distances else 0.0,
    }
