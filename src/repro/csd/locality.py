"""Locality-controlled random datapath workload (paper section 2.6.2).

The Figure 3 experiment: "A random request of a sink object and a
locality based request of a source object were used.  Regarding the
source object ID, the preceding sink object ID and an offset are used,
and therefore by controlling the offset we can generate a random
configuration with the locality, where a higher locality takes a very
small number or is equal to zero."

In the global configuration stream an element is a sink ID followed by
its source ID(s), so "the preceding sink object ID" is the sink the
source belongs to.  Request *t* of a datapath configuration is therefore

    sink_t   ~ Uniform[0, N)
    source_t = clamp(sink_t + offset_t, 0, N-1)          (one-source model)
    offset_t ~ Uniform[-spread, +spread] \\ {0}

where ``spread`` is the locality knob: ``spread = max(1, round((1 - locality) · N))``
— ``locality = 1`` keeps sources adjacent to their sink (offset
magnitude ≈ 1, "a higher locality takes a very small number or is equal
to zero"), ``locality = 0`` spreads them across the whole array.  The
realised locality of a generated configuration is reported as the mean
|source − sink| dependency distance normalised by N.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

__all__ = ["ChainingRequest", "LocalityWorkload"]


@dataclass(frozen=True)
class ChainingRequest:
    """One element of a datapath configuration: chain ``source → sink``.

    The paper's Figure 3 uses the one-source model; the two-source model
    (a binary operator's second operand) populates ``source2``.
    """

    sink: int
    source: int
    source2: Optional[int] = None

    @property
    def span_length(self) -> int:
        """Dependency distance in array positions (primary source)."""
        return abs(self.sink - self.source)

    @property
    def sources(self) -> tuple:
        """All sources, one or two."""
        if self.source2 is None:
            return (self.source,)
        return (self.source, self.source2)


class LocalityWorkload:
    """Generates random datapath configurations with controlled locality.

    Parameters
    ----------
    n_objects:
        Array size N (the paper sweeps 16–256).
    locality:
        Knob in ``[0, 1]``; 1 = maximally local, 0 = fully random.
    seed:
        Seed for the underlying :class:`numpy.random.Generator`.
    """

    def __init__(self, n_objects: int, locality: float, seed: Optional[int] = None):
        if n_objects < 2:
            raise ValueError("need at least two objects")
        if not 0.0 <= locality <= 1.0:
            raise ValueError("locality must be in [0, 1]")
        self.n_objects = n_objects
        self.locality = locality
        self.spread = max(1, round((1.0 - locality) * n_objects))
        self._rng = np.random.default_rng(seed)

    def requests(self, n_requests: Optional[int] = None) -> List[ChainingRequest]:
        """One datapath configuration of ``n_requests`` chaining requests.

        Defaults to ``n_objects - 1`` requests — every object except the
        first configured once as a sink, matching a fully configured
        linear datapath.
        """
        if n_requests is None:
            n_requests = self.n_objects - 1
        if n_requests < 1:
            raise ValueError("need at least one request")
        out: List[ChainingRequest] = []
        for _ in range(n_requests):
            sink = int(self._rng.integers(0, self.n_objects))
            source = self._source_near(sink, avoid=sink)
            out.append(ChainingRequest(sink=sink, source=source))
        return out

    def requests_two_source(
        self, n_requests: Optional[int] = None
    ) -> List[ChainingRequest]:
        """The two-source model §2.6.2 sets aside: each sink chains two
        independently drawn, locality-controlled sources (a binary
        operator's operands).  Channel demand roughly doubles, which is
        why the paper evaluates the one-source model first.
        """
        if n_requests is None:
            n_requests = self.n_objects - 1
        if n_requests < 1:
            raise ValueError("need at least one request")
        out: List[ChainingRequest] = []
        for _ in range(n_requests):
            sink = int(self._rng.integers(0, self.n_objects))
            s1 = self._source_near(sink, avoid=sink)
            s2 = self._source_near(sink, avoid=sink)
            out.append(ChainingRequest(sink=sink, source=s1, source2=s2))
        return out

    def _source_near(self, anchor: int, avoid: int) -> int:
        """Draw a source ID = anchor + offset, clamped, != ``avoid``."""
        for _ in range(64):
            offset = int(self._rng.integers(-self.spread, self.spread + 1))
            source = min(max(anchor + offset, 0), self.n_objects - 1)
            if source != avoid:
                return source
        # pathological corner (tiny array, avoid sits on the clamp target):
        # walk to the nearest distinct position
        source = avoid + 1 if avoid + 1 < self.n_objects else avoid - 1
        return source

    def realized_locality(self, requests: List[ChainingRequest]) -> float:
        """Mean dependency distance normalised by N — the measured
        locality of a generated configuration (lower = more local)."""
        if not requests:
            return 0.0
        return float(np.mean([r.span_length for r in requests])) / self.n_objects

    def stream(self) -> Iterator[ChainingRequest]:
        """Endless request stream (for long-running simulations)."""
        while True:
            sink = int(self._rng.integers(0, self.n_objects))
            yield ChainingRequest(sink=sink, source=self._source_near(sink, sink))
