"""Non-segmented baseline network (paper section 2.6, the problem case).

"In general the number of channels used for global interconnection
network chaining between a sink and source objects is linearly increased
by the number of physical objects."

Without segmentation every live communication monopolises a whole
channel regardless of how short its span is, so channel demand equals
the number of concurrent communications — for a fully configured
datapath of N objects that is ~N channels.  This baseline exists so the
Figure 3 bench and the channel-budget ablation can show the dynamic
CSD's saving.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ChannelAllocationError

__all__ = ["StaticConnection", "StaticCSDNetwork"]


@dataclass(frozen=True)
class StaticConnection:
    """A whole-channel communication on the static baseline."""

    conn_id: int
    channel: int
    source: int
    sink: int


class StaticCSDNetwork:
    """Baseline: one whole (unsegmented) channel per live communication."""

    def __init__(self, n_objects: int, n_channels: Optional[int] = None) -> None:
        if n_objects < 2:
            raise ValueError("the array needs at least two objects")
        self.n_objects = n_objects
        self.n_channels = n_channels if n_channels is not None else n_objects
        if self.n_channels < 1:
            raise ValueError("need at least one channel")
        self._busy: Dict[int, StaticConnection] = {}  # channel -> connection
        self._ids = itertools.count()

    def connect(self, source: int, sink: int) -> StaticConnection:
        """Claim the lowest free channel outright."""
        for pos in (source, sink):
            if not 0 <= pos < self.n_objects:
                raise ValueError(f"position {pos} outside array of {self.n_objects}")
        if source == sink:
            raise ValueError("source cannot be its own sink")
        for ch in range(self.n_channels):
            if ch not in self._busy:
                conn = StaticConnection(next(self._ids), ch, source, sink)
                self._busy[ch] = conn
                return conn
        raise ChannelAllocationError(
            f"all {self.n_channels} static channels busy"
        )

    def disconnect(self, conn: StaticConnection) -> None:
        if self._busy.get(conn.channel) is not conn:
            raise ChannelAllocationError(f"connection {conn.conn_id} not live")
        del self._busy[conn.channel]

    def used_channels(self) -> int:
        return len(self._busy)

    @property
    def connections(self) -> Tuple[StaticConnection, ...]:
        return tuple(self._busy.values())
