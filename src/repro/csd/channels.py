"""Segmented channels (paper section 2.6.2).

"Our approach is to make a dynamic CSD network with chaining or
unchaining in which each channel is completely segmented with a single
hop.  Segments are chained at the initial state, and unchained through a
routing procedure."

A channel running along a linear array of ``n_objects`` objects has
``n_objects - 1`` single-hop segments.  A communication between positions
``a`` and ``b`` occupies the contiguous segment interval
``[min(a,b), max(a,b))``; two communications can share the *same channel
index* when their segment intervals do not overlap — that is the whole
point of segmentation, and what makes channel demand a function of
datapath locality rather than array size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, List, Optional, Tuple

from repro.errors import ChannelAllocationError

__all__ = ["Span", "Channel", "ChannelPool"]


@dataclass(frozen=True)
class Span:
    """A contiguous, half-open interval of segment indices ``[lo, hi)``.

    ``Span.between(a, b)`` builds the span a communication between object
    positions ``a`` and ``b`` needs.
    """

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo < 0:
            raise ValueError("span cannot start below segment 0")
        if self.hi <= self.lo:
            raise ValueError(f"empty or inverted span [{self.lo}, {self.hi})")

    @classmethod
    def between(cls, a: int, b: int) -> "Span":
        """Span of segments a communication between positions a, b occupies."""
        if a == b:
            raise ValueError("a communication needs two distinct positions")
        return cls(min(a, b), max(a, b))

    def overlaps(self, other: "Span") -> bool:
        return self.lo < other.hi and other.lo < self.hi

    def shifted(self, amount: int) -> "Span":
        """The span after the occupying objects stack-shift by ``amount``.

        Index 0 is the top of the stack, so shifting down the stack
        *increases* both endpoints.
        """
        return Span(self.lo + amount, self.hi + amount)

    def __len__(self) -> int:
        return self.hi - self.lo

    def __contains__(self, segment: int) -> bool:
        return self.lo <= segment < self.hi


class Channel:
    """One channel of a CSD network: ``n_segments`` single-hop segments.

    Tracks which spans are occupied and by whom.  Unchaining is implicit:
    a span being occupied corresponds to the routing procedure having
    unchained the segments at its boundary and gated the data onto the
    sink (Figure 2's memory cell).
    """

    def __init__(self, index: int, n_segments: int) -> None:
        if index < 0:
            raise ValueError("channel index cannot be negative")
        if n_segments < 1:
            raise ValueError("a channel needs at least one segment")
        self.index = index
        self.n_segments = n_segments
        self._occupants: Dict[Hashable, Span] = {}

    def is_span_free(self, span: Span) -> bool:
        """Whether ``span`` fits this channel with no overlap."""
        if span.hi > self.n_segments:
            return False
        return not any(span.overlaps(s) for s in self._occupants.values())

    def occupy(self, span: Span, owner: Hashable) -> None:
        """Claim ``span`` for ``owner``.

        Raises
        ------
        ChannelAllocationError
            If the span collides with an existing occupant or runs off
            the end of the channel.
        """
        if owner in self._occupants:
            raise ChannelAllocationError(
                f"owner {owner!r} already occupies channel {self.index}"
            )
        if not self.is_span_free(span):
            raise ChannelAllocationError(
                f"span [{span.lo},{span.hi}) not free on channel {self.index}"
            )
        self._occupants[owner] = span

    def release(self, owner: Hashable) -> None:
        """Release ``owner``'s span (the release-token path)."""
        if owner not in self._occupants:
            raise ChannelAllocationError(
                f"owner {owner!r} holds nothing on channel {self.index}"
            )
        del self._occupants[owner]

    def span_of(self, owner: Hashable) -> Optional[Span]:
        return self._occupants.get(owner)

    def spans(self) -> Tuple[Span, ...]:
        """Every occupied span, in insertion (occupation) order — the
        public read surface for observers that used to reach into
        ``_occupants`` directly."""
        return tuple(self._occupants.values())

    @property
    def occupants(self) -> Tuple[Hashable, ...]:
        return tuple(self._occupants)

    @property
    def is_idle(self) -> bool:
        return not self._occupants

    def utilization(self) -> float:
        """Fraction of segments currently occupied."""
        used = sum(len(s) for s in self._occupants.values())
        return used / self.n_segments

    def occupied_segments(self) -> int:
        """Number of segments currently claimed by some span."""
        return sum(len(s) for s in self._occupants.values())

    def shift_all(self, amount: int) -> List[Hashable]:
        """Stack-shift every occupant's span ``amount`` positions down.

        Convention: segment index 0 sits at the **top** of the stack and
        index ``n_segments - 1`` at the **bottom**; the stack only ever
        shifts top → bottom, so every span's indices *increase* by
        ``amount``.  A span whose shifted interval would need a segment
        at index ``n_segments`` or beyond has been pushed off the bottom
        of the array — its objects left the stack — and is evicted; the
        evicted owners are returned.  Because *all* spans shift
        together, relative order is preserved and no collision can
        occur — the property section 2.6.2 notes ("This approach is
        capable of stack-shifting from the top to the bottom of the
        stack ... the decision to select the channel ... [is]
        unnecessary for this sequence").
        """
        if amount < 0:
            raise ValueError("the stack only shifts top -> bottom")
        evicted: List[Hashable] = []
        shifted: Dict[Hashable, Span] = {}
        for owner, span in self._occupants.items():
            new = span.shifted(amount)
            if new.hi > self.n_segments:
                evicted.append(owner)
            else:
                shifted[owner] = new
        self._occupants = shifted
        return evicted


class ChannelPool:
    """An ordered collection of channels sharing one segment geometry."""

    def __init__(self, n_channels: int, n_segments: int) -> None:
        if n_channels < 1:
            raise ValueError("pool needs at least one channel")
        self.channels: List[Channel] = [
            Channel(i, n_segments) for i in range(n_channels)
        ]
        self.n_segments = n_segments

    def __len__(self) -> int:
        return len(self.channels)

    def __iter__(self) -> Iterator[Channel]:
        return iter(self.channels)

    def __getitem__(self, index: int) -> Channel:
        return self.channels[index]

    def free_channels_for(self, span: Span) -> List[int]:
        """Indices of every channel whose ``span`` is free — the set the
        source's broadcast request survives on (Figure 2)."""
        return [ch.index for ch in self.channels if ch.is_span_free(span)]

    def used_channel_count(self) -> int:
        """Number of channels with at least one occupant — Figure 3's
        "Number of used Channels" metric."""
        return sum(1 for ch in self.channels if not ch.is_idle)

    # -- observation probes ------------------------------------------------

    def segment_demand(self) -> List[int]:
        """How many channels occupy each segment position — channel
        demand *along the linear array* (§2.6's locality story made
        spatial: local datapaths leave the far segments cold).

        Computed with a difference array + prefix sum: each span adds
        ``+1`` at ``lo`` and ``-1`` at ``hi``, so the cost is
        O(spans + segments) per sample instead of walking every segment
        of every span — the observer ticks this once per protocol cycle,
        and at mega-scale N the old walk dominated the sample budget.
        """
        diff = [0] * (self.n_segments + 1)
        for channel in self.channels:
            for span in channel.spans():
                diff[span.lo] += 1
                diff[span.hi] -= 1
        demand: List[int] = []
        running = 0
        for seg in range(self.n_segments):
            running += diff[seg]
            demand.append(running)
        return demand

    def channel_occupancy(self) -> List[int]:
        """Occupied-segment count per channel index — which channels the
        priority encoder has filled, and how deeply."""
        return [ch.occupied_segments() for ch in self.channels]
