"""Priority encoder (paper Figure 2).

"The sink object has a priority encoder that decides which channel is
used for the request, several requests can come through surviving such as
already used for other communication (chaining) on each channel.  A grant
signal from the encoder is checked by the sink object..."

The encoder receives the set of channels on which the source's broadcast
request survived (i.e. the channels whose segments along the span are
still chained and unoccupied) and grants exactly one — the
lowest-numbered, as a hardware priority encoder does.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

__all__ = ["PriorityEncoder"]


class PriorityEncoder:
    """Selects one granted channel from a set of surviving requests.

    Parameters
    ----------
    n_channels:
        Width of the encoder (number of request inputs).
    """

    def __init__(self, n_channels: int) -> None:
        if n_channels < 1:
            raise ValueError("encoder needs at least one input")
        self.n_channels = n_channels

    def grant(self, requests: Iterable[int]) -> Optional[int]:
        """Grant the highest-priority (lowest-index) requesting channel.

        Returns ``None`` when no request survived — the caller then
        treats the chaining attempt as blocked.

        Raises
        ------
        ValueError
            If a request index is outside the encoder width.
        """
        best: Optional[int] = None
        for idx in requests:
            if not 0 <= idx < self.n_channels:
                raise ValueError(
                    f"request on channel {idx} outside encoder width {self.n_channels}"
                )
            if best is None or idx < best:
                best = idx
        return best

    def grant_first_fit(self, is_free) -> Optional[int]:
        """Fused broadcast+grant: scan channels in priority order and
        grant the first whose predicate ``is_free(index)`` holds.

        Equivalent to ``grant(i for i in range(n) if is_free(i))`` but
        stops at the first survivor — the form the memoized sweep engine
        resolver uses, kept here so the priority semantics live in one
        place.
        """
        for idx in range(self.n_channels):
            if is_free(idx):
                return idx
        return None

    def grant_vector(self, request_bits: Sequence[bool]) -> Optional[int]:
        """Bit-vector form: grant the lowest set bit (hardware view)."""
        if len(request_bits) != self.n_channels:
            raise ValueError(
                f"request vector width {len(request_bits)} != {self.n_channels}"
            )
        for idx, bit in enumerate(request_bits):
            if bit:
                return idx
        return None
