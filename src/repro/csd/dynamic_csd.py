"""The dynamic CSD network protocol (paper Figure 2, section 2.6.2).

One chaining proceeds as:

1. the **source** object broadcasts a request on every channel; the
   request only survives on channels whose single-hop segments along the
   source→sink span are still chained (not occupied by another
   communication);
2. the **sink**'s priority encoder grants one surviving channel;
3. the grant is stored in a memory cell that (a) unchains the request
   network and (b) gates data from the granted channel into the sink;
4. the grant travels back to the source as the acknowledgement.

The network also supports the stack shift: because every segment is a
single hop, shifting *all* objects down the stack shifts every occupied
span uniformly — no channel re-selection is needed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import telemetry
from repro.errors import ChannelAllocationError
from repro.csd.channels import ChannelPool, Span
from repro.csd.priority_encoder import PriorityEncoder

__all__ = ["Connection", "DynamicCSDNetwork"]


@dataclass(frozen=True)
class Connection:
    """A granted chaining between a source and one or more sinks.

    Attributes
    ----------
    conn_id:
        Unique token; doubles as the channel-occupancy owner key.
    channel:
        Granted channel index (output of the sink's priority encoder).
    source, sinks:
        Object positions in the linear array.  A fan-out (broadcast)
        connection has several sinks sharing the one channel span.
    span:
        The segment interval the connection occupies.
    """

    conn_id: int
    channel: int
    source: int
    sinks: Tuple[int, ...]
    span: Span

    @property
    def sink(self) -> int:
        """The (first) sink — convenience for point-to-point connections."""
        return self.sinks[0]


class DynamicCSDNetwork:
    """A dynamic CSD network over a linear array of ``n_objects`` objects.

    Parameters
    ----------
    n_objects:
        Length of the linear (stack) array the network runs along.
    n_channels:
        Physical channel count.  The paper's finding (Figure 3) is that
        ``n_objects // 2`` suffices for random datapaths; passing
        ``None`` provisions that.
    """

    def __init__(
        self,
        n_objects: int,
        n_channels: Optional[int] = None,
        faults=None,
        fault_domain: str = "csd",
    ) -> None:
        if n_objects < 2:
            raise ValueError("the array needs at least two objects")
        if n_channels is None:
            n_channels = max(1, n_objects // 2)
        if n_channels < 1:
            raise ValueError("need at least one channel")
        self.n_objects = n_objects
        self.pool = ChannelPool(n_channels, n_segments=n_objects - 1)
        self.encoder = PriorityEncoder(n_channels)
        #: Optional :class:`repro.faults.FaultInjector`; when set, the
        #: request broadcast also dies on channels whose segments along
        #: the span carry an active injected fault.
        self.faults = faults
        self.fault_domain = fault_domain
        self._connections: Dict[int, Connection] = {}
        self._ids = itertools.count()

    # -- the Figure 2 protocol ------------------------------------------------

    def connect(self, source: int, sink: int) -> Connection:
        """Chain ``source`` to ``sink`` (steps 1-4 of the protocol).

        Raises
        ------
        ChannelAllocationError
            When no channel survives the broadcast (all spans busy).
        ValueError
            On out-of-range or equal positions.
        """
        return self.connect_fanout(source, (sink,))

    def connect_fanout(self, source: int, sinks: Tuple[int, ...]) -> Connection:
        """Chain ``source`` to several sinks on one channel.

        "the necessity of a fan-out (broadcast) requires more channels,
        i.e., up to Nobject channels" — a broadcast occupies the span
        covering the source and every sink, so it consumes more segments
        of its one channel than a point-to-point chaining would.
        """
        if not sinks:
            raise ValueError("fan-out needs at least one sink")
        for pos in (source, *sinks):
            if not 0 <= pos < self.n_objects:
                raise ValueError(f"position {pos} outside array of {self.n_objects}")
        if source in sinks:
            raise ValueError("source cannot be its own sink")
        lo = min(source, *sinks)
        hi = max(source, *sinks)
        span = Span(lo, hi)

        telemetry.counter("csd.connect.requests").inc()
        tracer = telemetry.tracer()
        tspan = None
        if tracer.enabled:
            # one chaining = one cycle of the tracer's logical clock
            tspan = tracer.start(
                "csd.connect", kind="csd", source=source,
                sinks=tuple(sinks), lo=span.lo, hi=span.hi,
            )
            tspan.add_event("csd.request", channels=len(self.pool))
        # step 1: broadcast — which channels does the request survive on?
        surviving = self.pool.free_channels_for(span)
        # fault hook: the request also dies on channels with an active
        # segment fault along the span (transient faults heal; retry via
        # repro.faults.recovery re-broadcasts after a backoff)
        if self.faults is not None:
            healthy = self.faults.filter_csd_channels(
                surviving, span.lo, span.hi, domain=self.fault_domain
            )
            if len(healthy) < len(surviving):
                telemetry.counter("csd.connect.fault_drops").inc(
                    len(surviving) - len(healthy)
                )
                if tspan is not None:
                    tspan.add_event(
                        "csd.fault.channels_dropped",
                        dropped=len(surviving) - len(healthy),
                    )
            surviving = healthy
        # step 2: the sink's priority encoder grants one
        granted = self.encoder.grant(surviving)
        if granted is None:
            telemetry.counter("csd.connect.blocks").inc()
            telemetry.event("csd.block", lo=span.lo, hi=span.hi)
            if tspan is not None:
                tspan.add_event(
                    "csd.block", lo=span.lo, hi=span.hi,
                    reason="all channels busy on span",
                )
                tspan.end(cycle=tracer.advance(), status="error")
            raise ChannelAllocationError(
                f"no free channel for span [{span.lo},{span.hi}) "
                f"({len(self.pool)} channels provisioned)"
            )
        # step 3: store the grant (occupy the span; gates the data path)
        conn_id = next(self._ids)
        self.pool[granted].occupy(span, conn_id)
        telemetry.counter("csd.connect.grants").inc()
        # step 4: ack back to the source — the connection object
        conn = Connection(conn_id, granted, source, tuple(sinks), span)
        self._connections[conn_id] = conn
        if tspan is not None:
            tspan.add_event("csd.grant", channel=granted)
            tspan.add_event("csd.ack", conn_id=conn_id)
            tspan.end(cycle=tracer.advance())
        return conn

    def disconnect(self, conn: Connection) -> None:
        """Fire the release token: re-chain the segments for reuse."""
        if conn.conn_id not in self._connections:
            raise ChannelAllocationError(f"unknown connection {conn.conn_id}")
        self.pool[conn.channel].release(conn.conn_id)
        del self._connections[conn.conn_id]
        telemetry.counter("csd.disconnects").inc()

    # -- stack shift -----------------------------------------------------

    def stack_shift(self, amount: int = 1) -> List[Connection]:
        """Shift every live connection ``amount`` positions down the stack.

        Convention (shared with :meth:`repro.csd.channels.Channel.shift_all`):
        position 0 is the **top** of the stack and position ``n_objects-1``
        the **bottom**, so a shift down the stack *increases* every
        position/segment index by ``amount``.  A connection is evicted
        exactly when its objects leave the array off the bottom — i.e.
        when its shifted span would need a segment at index
        ``n_segments`` or beyond.  Evicted connections are returned.
        Section 2.6.2: no channel re-selection happens — each surviving
        span slides along its own channel.
        """
        if amount < 0:
            raise ValueError("the stack only shifts top -> bottom")
        if amount == 0:
            return []
        telemetry.counter("csd.shifts").inc()
        evicted: List[Connection] = []
        for channel in self.pool:
            for conn_id in channel.shift_all(amount):
                evicted.append(self._connections.pop(conn_id))
        if evicted:
            telemetry.counter("csd.shift.evictions").inc(len(evicted))
            telemetry.instant(
                "csd.shift.evictions", amount=amount, count=len(evicted)
            )
        # rebuild surviving connection records with shifted positions
        for conn_id, conn in list(self._connections.items()):
            new_span = self.pool[conn.channel].span_of(conn_id)
            assert new_span is not None
            self._connections[conn_id] = Connection(
                conn_id,
                conn.channel,
                conn.source + amount,
                tuple(s + amount for s in conn.sinks),
                new_span,
            )
        return evicted

    # -- statistics ------------------------------------------------------

    @property
    def connections(self) -> Tuple[Connection, ...]:
        return tuple(self._connections.values())

    def used_channels(self) -> int:
        """Channels carrying at least one live connection (Fig. 3 metric)."""
        return self.pool.used_channel_count()

    def highest_used_channel(self) -> int:
        """Highest granted channel index + 1, or 0 when idle.

        With a first-fit priority encoder this equals the minimum channel
        provisioning that would have sufficed for the current state.
        """
        used = [ch.index for ch in self.pool if not ch.is_idle]
        return max(used) + 1 if used else 0

    def occupancy_state(self) -> Tuple[Tuple[Tuple[int, int], ...], ...]:
        """Canonical immutable pool occupancy: one tuple per channel of
        its occupied ``(lo, hi)`` spans, sorted.

        This is the state signature the sweep engine's route memo keys
        its transition cache on, exposed here so tests can cross-check
        the memoized resolver against the live protocol step by step.
        """
        return tuple(
            tuple(sorted((s.lo, s.hi) for s in ch.spans()))
            for ch in self.pool
        )

    # -- observation probes ------------------------------------------------

    def segment_demand(self) -> List[int]:
        """Channel demand per segment position along the linear array
        (see :meth:`repro.csd.channels.ChannelPool.segment_demand`)."""
        return self.pool.segment_demand()

    def channel_occupancy(self) -> List[int]:
        """Occupied-segment count per channel index."""
        return self.pool.channel_occupancy()
