"""Functional CSD simulator (paper Figure 3).

"We developed a functional CSD simulator for the evaluation.  Figure 3
shows the evaluation results of a one-source model (not a two-source
model), and how many channels are used in a random datapath
configuration."

A trial configures one full random datapath (one chaining request per
object, locality-controlled source IDs) on a :class:`DynamicCSDNetwork`
provisioned with N channels, then reports how many channels were actually
used.  Sweeping the locality knob regenerates the Figure 3 series; the
headline findings to reproduce are

* "Nobject channels were not used", and
* "Nobject/2 channels are sufficient for the random datapath",
* higher locality uses fewer channels.

Figure-3-scale sweeps (hundreds of trials across five array sizes) can
fan out over a process pool: both :func:`sweep_locality` and
:func:`figure3_series` take ``workers=``.  Trials are chunked by
locality point, every trial derives its seed from the sweep seed alone,
and worker processes ship their telemetry snapshots back with the
results — so the parallel path is **bit-identical** to the serial one
and loses no observability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.errors import ChannelAllocationError, RetryExhaustedError
from repro.csd.dynamic_csd import DynamicCSDNetwork
from repro.csd.locality import LocalityWorkload
from repro.telemetry.observe import Sampler, point_label

__all__ = [
    "SimulationResult",
    "CSDSimulator",
    "sweep_locality",
    "figure3_series",
    "FIGURE3_NOBJECTS",
]

#: The array sizes plotted in Figure 3.
FIGURE3_NOBJECTS: Tuple[int, ...] = (16, 32, 64, 128, 256)


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one datapath-configuration trial."""

    n_objects: int
    locality_knob: float
    realized_locality: float
    used_channels: int
    highest_channel: int
    requests: int
    blocked: int

    @property
    def channel_fraction(self) -> float:
        """Used channels as a fraction of N — the paper's N/2 bound means
        this stays at or below ~0.5 for random datapaths."""
        return self.used_channels / self.n_objects


class CSDSimulator:
    """Runs datapath-configuration trials on a dynamic CSD network."""

    def __init__(self, n_objects: int, seed: Optional[int] = None) -> None:
        if n_objects < 2:
            raise ValueError("need at least two objects")
        self.n_objects = n_objects
        self.seed = seed

    def run_trial(
        self,
        locality: float,
        trial_seed: Optional[int] = None,
        two_source: bool = False,
        faults=None,
        retry_policy=None,
        sample_series: bool = False,
    ) -> SimulationResult:
        """Configure one full random datapath; count the channels used.

        The network is provisioned with N channels for the one-source
        model (2N for the two-source model, which needs one channel per
        operand chain) so nothing is artificially blocked; requests
        whose exact span is already saturated on *every* channel are
        counted as ``blocked`` (with that provisioning this stays 0).
        Only :class:`ChannelAllocationError` counts as a block — any
        other exception is a logic bug and propagates.

        ``two_source`` switches to §2.6.2's set-aside two-source model:
        each sink chains two operands, roughly doubling channel demand.

        ``faults`` (a :class:`repro.faults.FaultInjector`) attaches the
        segment-fault hook to the network; ``retry_policy`` (a
        :class:`repro.faults.RetryPolicy`) re-broadcasts blocked
        requests with backoff.  A request that stays blocked after the
        retries counts as ``blocked``, exactly like an unretried block.
        With both left ``None`` (or a fault-free injector) the trial is
        byte-identical to the uninstrumented path.

        When :func:`repro.telemetry.enable_observation` is on, a
        :class:`~repro.telemetry.Sampler` snapshots segment demand and
        channel occupancy into point-labelled heatmaps as the datapath
        fills in (one logical cycle per chaining request).
        ``sample_series`` additionally records the used-channel
        time-series — the sweep passes it for trial 0 of each point only,
        so samples from repeated trials never collide on one cycle axis.
        """
        workload = LocalityWorkload(
            self.n_objects, locality, seed=trial_seed if trial_seed is not None else self.seed
        )
        requests = (
            workload.requests_two_source() if two_source else workload.requests()
        )
        n_channels = 2 * self.n_objects if two_source else self.n_objects
        net = DynamicCSDNetwork(
            self.n_objects, n_channels=n_channels, faults=faults
        )
        if retry_policy is not None:
            from repro.faults.recovery import connect_with_retry
        blocked = 0
        telemetry.counter("fig3.trials").inc()
        observer = telemetry.observer()
        sampler = None
        if observer.enabled:
            label = point_label(n=self.n_objects, loc=locality)
            sampler = Sampler(
                observer.effective_stride(max(1, self.n_objects // 64))
            )
            sampler.attach_heatmap(
                telemetry.heatmap(f"csd.segment_demand{label}"),
                lambda: {
                    f"s{i}": v for i, v in enumerate(net.segment_demand())
                },
            )
            sampler.attach_heatmap(
                telemetry.heatmap(f"csd.channel_occupancy{label}"),
                lambda: {
                    f"ch{i}": v for i, v in enumerate(net.channel_occupancy())
                },
            )
            if sample_series:
                sampler.attach_series(
                    telemetry.time_series(f"csd.used_channels{label}"),
                    net.used_channels,
                )
        tracer = telemetry.tracer()
        with telemetry.scope("fig3.trial"), tracer.span(
            "fig3.trial", kind="trial", n_objects=self.n_objects,
            locality=locality,
            seed=trial_seed if trial_seed is not None else self.seed,
        ):
            for req in requests:
                for source in req.sources:
                    if source == req.sink:  # cannot happen by construction
                        continue
                    try:
                        if retry_policy is not None:
                            connect_with_retry(
                                net, source, req.sink, policy=retry_policy
                            )
                        else:
                            net.connect(source, req.sink)
                    except ChannelAllocationError:
                        blocked += 1
                    except RetryExhaustedError:
                        blocked += 1
                if sampler is not None:
                    # one chaining request = one observation cycle
                    sampler.tick()
        return SimulationResult(
            n_objects=self.n_objects,
            locality_knob=locality,
            realized_locality=workload.realized_locality(requests),
            used_channels=net.used_channels(),
            highest_channel=net.highest_used_channel(),
            requests=len(requests),
            blocked=blocked,
        )

    def run_many(
        self, locality: float, n_trials: int = 10
    ) -> List[SimulationResult]:
        """Independent trials with derived seeds (reproducible)."""
        if n_trials < 1:
            raise ValueError("need at least one trial")
        base = self.seed if self.seed is not None else 0
        return [
            self.run_trial(
                locality, trial_seed=base + 1000 * t, sample_series=(t == 0)
            )
            for t in range(n_trials)
        ]

    def mean_used_channels(self, locality: float, n_trials: int = 10) -> float:
        """Average used-channel count across trials."""
        results = self.run_many(locality, n_trials)
        return float(np.mean([r.used_channels for r in results]))


# -- sweep engine -----------------------------------------------------------


def _aggregate_point(
    n_objects: int, locality: float, trials: Sequence[SimulationResult]
) -> SimulationResult:
    """Fold one point's trial results into the averaged point.

    Shared verbatim by the serial sweep, the per-point pool fan-out, and
    the batched engine path (:mod:`repro.engine.sweep`): ``np.mean`` over
    the trials in trial order is the whole formula, so any path feeding
    the same trial results in the same order produces bit-identical
    floats.
    """
    return SimulationResult(
        n_objects=n_objects,
        locality_knob=locality,
        realized_locality=float(
            np.mean([t.realized_locality for t in trials])
        ),
        used_channels=int(round(np.mean([t.used_channels for t in trials]))),
        highest_channel=int(
            round(np.mean([t.highest_channel for t in trials]))
        ),
        requests=trials[0].requests,
        blocked=int(round(np.mean([t.blocked for t in trials]))),
    )


def record_point_gauges(point: SimulationResult) -> None:
    """Set one Figure-3 point's observation gauges.

    Shared by the legacy sweep and the engine paths
    (:mod:`repro.engine.sweep`), so every path leaves the same
    ``fig3.used_channels`` / ``fig3.blocked`` gauge state (one update
    per point) behind."""
    label = point_label(n=point.n_objects, loc=point.locality_knob)
    telemetry.gauge(f"fig3.used_channels{label}").set(point.used_channels)
    telemetry.gauge(f"fig3.blocked{label}").set(point.blocked)


def _sweep_point(
    n_objects: int, locality: float, n_trials: int, seed: int
) -> SimulationResult:
    """One averaged Figure 3 point — the unit of work both the serial
    and the parallel sweep paths share, so their outputs are identical
    by construction: every trial's seed derives only from ``seed`` and
    the trial index, never from execution order."""
    with telemetry.scope("fig3.point"), telemetry.tracer().span(
        "fig3.point", kind="sweep", n_objects=n_objects,
        locality=locality, trials=n_trials, seed=seed,
    ):
        sim = CSDSimulator(n_objects, seed=seed)
        trials = sim.run_many(locality, n_trials)
    point = _aggregate_point(n_objects, locality, trials)
    if telemetry.observer().enabled:
        record_point_gauges(point)
    return point


def _point_task(
    task: Tuple[int, float, int, int, bool, bool, int]
) -> Tuple[SimulationResult, Dict[str, Any]]:
    """Worker-process entry: run one point and ship the telemetry delta
    back with it.  The registry is reset first because a forked worker
    inherits the parent's counts and must report only its own.  The
    tracing and observation flags travel in the task tuple (not the
    inherited process state) so both also work under spawn-based
    pools."""
    n_objects, locality, n_trials, seed, trace, observe, stride = task
    telemetry.reset()
    telemetry.enable_tracing(trace)
    telemetry.enable_observation(observe, stride)
    point = _sweep_point(n_objects, locality, n_trials, seed)
    return point, telemetry.snapshot()


def _tasks(
    points: List[Tuple[int, float]], n_trials: int, seed: int
) -> List[Tuple[int, float, int, int, bool, bool, int]]:
    trace = telemetry.tracer().enabled
    obs = telemetry.observer()
    return [
        (n, loc, n_trials, seed, trace, obs.enabled, obs.stride)
        for n, loc in points
    ]


def _run_points_parallel(
    tasks: List[Tuple[int, float, int, int, bool, bool, int]], workers: int
) -> List[SimulationResult]:
    """Fan ``tasks`` (one per locality point) over a process pool.

    Results come back in task order (``Executor.map``), and worker
    telemetry snapshots are folded into this process's registry so a
    parallel sweep reports the same grant/block counters a serial one
    would.
    """
    from concurrent.futures import ProcessPoolExecutor

    points: List[SimulationResult] = []
    with ProcessPoolExecutor(max_workers=workers) as pool:
        for point, snap in pool.map(_point_task, tasks):
            telemetry.merge(snap)
            points.append(point)
    return points


def sweep_locality(
    n_objects: int,
    localities: Sequence[float],
    n_trials: int = 10,
    seed: int = 42,
    workers: Optional[int] = None,
) -> List[SimulationResult]:
    """One averaged point per locality value — a single Figure 3 curve.

    The returned results carry the *mean* used-channel count of
    ``n_trials`` independent trials (rounded to the nearest integer for
    ``used_channels``), so curves are smooth enough to compare.

    ``workers`` > 1 fans the locality points out over a process pool;
    the output is bit-identical to the serial path (trial seeds depend
    only on ``seed`` and the trial index).
    """
    if workers is not None and workers > 1:
        tasks = _tasks([(n_objects, loc) for loc in localities], n_trials, seed)
        return _run_points_parallel(tasks, workers)
    return [
        _sweep_point(n_objects, loc, n_trials, seed) for loc in localities
    ]


def figure3_series(
    localities: Optional[Sequence[float]] = None,
    n_trials: int = 10,
    seed: int = 42,
    n_objects_list: Sequence[int] = FIGURE3_NOBJECTS,
    workers: Optional[int] = None,
) -> Dict[int, List[SimulationResult]]:
    """The full Figure 3 data set: one locality-swept curve per N.

    Returns ``{n_objects: [SimulationResult, ...]}`` with locality running
    from most local (left of the paper's plot) to fully random (right).

    ``workers`` > 1 runs every (N, locality) point of the whole series
    through one shared process pool, chunked by locality point, with
    output bit-identical to the serial path.
    """
    if localities is None:
        localities = [1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1, 0.0]
    if workers is not None and workers > 1:
        tasks = _tasks(
            [(n, loc) for n in n_objects_list for loc in localities],
            n_trials,
            seed,
        )
        points = _run_points_parallel(tasks, workers)
        series: Dict[int, List[SimulationResult]] = {}
        for point in points:
            series.setdefault(point.n_objects, []).append(point)
        return series
    return {
        n: sweep_locality(n, localities, n_trials=n_trials, seed=seed)
        for n in n_objects_list
    }
