"""Chained CSD networks across adaptive processors (paper section 2.6.1).

"The scaling of the AP simply chains the segmented global
interconnection networks, used for finding LRU object(s), the stack
shift, and so on.  Cache hit detection can be centrally processed on the
WSRF instead of searching in the array ...  Searching in WSRFs can be
performed in parallel."

A :class:`ChainedCSD` joins the per-AP network segments of a fused
processor: each segment keeps its own channels, junctions between
adjacent segments are chain/unchain points, and a chaining whose source
and sink fall in different segments occupies the spans in *every*
segment it crosses (plus the junctions).  WSRF search fans out to all
member WSRFs in parallel — one lookup, regardless of scale.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import telemetry
from repro.errors import (
    ChannelAllocationError,
    ConfigurationError,
    FaultInjectionError,
    TopologyError,
)
from repro.csd.channels import Span
from repro.csd.dynamic_csd import DynamicCSDNetwork
from repro.ap.wsrf import WSRF

__all__ = ["CrossConnection", "ChainedCSD"]


@dataclass(frozen=True)
class CrossConnection:
    """A chaining that may cross segment junctions.

    ``legs`` maps segment index → (channel, span) for every segment in
    which the chaining actually occupies segments.  A terminal sitting
    directly at the junction-adjacent edge of its segment crosses no
    segments there and contributes no leg — a chaining between the two
    objects immediately either side of a junction uses only the
    junction itself and has no legs at all.
    """

    conn_id: int
    source: Tuple[int, int]  # (segment, position)
    sink: Tuple[int, int]
    legs: Dict[int, Tuple[int, Span]]

    @property
    def crosses_junction(self) -> bool:
        return self.source[0] != self.sink[0]


class ChainedCSD:
    """Segmented CSD networks of fused APs, chained at junctions.

    Parameters
    ----------
    segment_sizes:
        Objects per AP segment, in linear order.
    n_channels:
        Channels per segment (default: half the largest segment).
    """

    def __init__(
        self,
        segment_sizes: List[int],
        n_channels: Optional[int] = None,
        faults=None,
    ) -> None:
        if not segment_sizes:
            raise TopologyError("need at least one segment")
        if any(s < 2 for s in segment_sizes):
            raise TopologyError("every segment needs at least two objects")
        if n_channels is None:
            n_channels = max(1, max(segment_sizes) // 2)
        #: Optional :class:`repro.faults.FaultInjector` shared with every
        #: member segment (each under its own ``seg{i}`` fault domain) so
        #: one ledger covers segment faults and junction-switch faults.
        self.faults = faults
        self.segments = [
            DynamicCSDNetwork(
                size, n_channels, faults=faults, fault_domain=f"seg{i}"
            )
            for i, size in enumerate(segment_sizes)
        ]
        #: junction i joins segment i and i+1; chained when the APs fused.
        self._junction_chained = [True] * (len(segment_sizes) - 1)
        self._conns: Dict[int, CrossConnection] = {}
        self._leg_ids: Dict[int, Dict[int, Tuple[str, int]]] = {}
        self._ids = itertools.count()
        self._leg_counter = itertools.count()

    # -- junction control ---------------------------------------------------

    def unchain_junction(self, index: int) -> None:
        """Split the fused processor between segments index and index+1."""
        self._check_junction(index)
        self._junction_chained[index] = False

    def chain_junction(self, index: int) -> None:
        self._check_junction(index)
        self._junction_chained[index] = True

    def is_junction_chained(self, index: int) -> bool:
        self._check_junction(index)
        return self._junction_chained[index]

    def _check_junction(self, index: int) -> None:
        if not 0 <= index < len(self._junction_chained):
            raise TopologyError(f"no junction {index}")

    # -- chaining ---------------------------------------------------------

    def connect(
        self, source: Tuple[int, int], sink: Tuple[int, int]
    ) -> CrossConnection:
        """Chain ``source=(segment, pos)`` to ``sink=(segment, pos)``.

        A cross-segment chaining needs every junction along the way
        chained, and a free span in every segment it actually crosses:
        from the source to its segment's edge, whole intermediate
        segments, and from the sink's segment edge to the sink.  A
        terminal sitting directly at the junction-adjacent edge crosses
        no segments in its own segment and consumes no channel there.

        Raises
        ------
        TopologyError
            If an intervening junction is unchained (split processors).
        ChannelAllocationError
            If any leg has no free channel (all legs are rolled back).
        """
        s_seg, s_pos = source
        k_seg, k_pos = sink
        self._check_position(source)
        self._check_position(sink)
        if (s_seg, s_pos) == (k_seg, k_pos):
            raise ConfigurationError("source cannot be its own sink")
        lo_seg, hi_seg = min(s_seg, k_seg), max(s_seg, k_seg)
        for j in range(lo_seg, hi_seg):
            if not self._junction_chained[j]:
                raise TopologyError(
                    f"junction {j} is unchained; segments {s_seg} and "
                    f"{k_seg} belong to different processors"
                )
        telemetry.counter("chained.connect.requests").inc()
        tracer = telemetry.tracer()
        tspan = None
        if tracer.enabled:
            tspan = tracer.start(
                "chained.connect", kind="csd",
                source=source, sink=sink,
            )
        legs = self._legs(source, sink)
        made: List[Tuple[int, int, Span, Tuple[str, int]]] = []
        try:
            for seg_idx, span in legs.items():
                net = self.segments[seg_idx]
                surviving = net.pool.free_channels_for(span)
                if self.faults is not None:
                    surviving = self.faults.filter_csd_channels(
                        surviving, span.lo, span.hi,
                        domain=net.fault_domain,
                    )
                granted = net.encoder.grant(surviving)
                if granted is None:
                    if tspan is not None:
                        tspan.add_event(
                            "chained.block", segment=seg_idx,
                            lo=span.lo, hi=span.hi,
                            reason="no free channel in segment",
                        )
                    raise ChannelAllocationError(
                        f"no free channel in segment {seg_idx} for "
                        f"span [{span.lo},{span.hi})"
                    )
                leg_id = ("leg", next(self._leg_counter))
                net.pool[granted].occupy(span, leg_id)
                if tspan is not None:
                    tspan.add_event(
                        "chained.leg.grant", segment=seg_idx,
                        channel=granted, lo=span.lo, hi=span.hi,
                    )
                made.append((seg_idx, granted, span, leg_id))
            # fault hook: the junction switches the chaining crosses can
            # stick; a faulted junction aborts the chaining *after* the
            # legs were occupied, exercising the rollback path below
            if self.faults is not None:
                for j in range(lo_seg, hi_seg):
                    if self.faults.junction_fault(j):
                        telemetry.counter("chained.junction.faults").inc()
                        if tspan is not None:
                            tspan.add_event("chained.junction.fault", junction=j)
                        raise FaultInjectionError(
                            f"junction {j} faulted while chaining "
                            f"{source}->{sink}"
                        )
        except (ChannelAllocationError, FaultInjectionError):
            telemetry.counter("chained.connect.blocks").inc()
            if made:
                telemetry.counter("chained.connect.rollbacks").inc(len(made))
                telemetry.event(
                    "chained.rollback", source=source, sink=sink,
                    legs_rolled_back=len(made),
                )
                if tspan is not None:
                    tspan.add_event(
                        "chained.rollback", legs_rolled_back=len(made)
                    )
            for seg_idx, granted, _span, leg_id in made:
                self.segments[seg_idx].pool[granted].release(leg_id)
            if tspan is not None:
                tspan.end(cycle=tracer.advance(), status="error")
            raise
        telemetry.counter("chained.connect.grants").inc()
        conn_id = next(self._ids)
        conn = CrossConnection(
            conn_id,
            source,
            sink,
            {seg: (granted, span) for seg, granted, span, _ in made},
        )
        self._conns[conn_id] = conn
        self._leg_ids[conn_id] = {seg: leg_id for seg, _, _, leg_id in made}
        if tspan is not None:
            tspan.add_event("chained.ack", conn_id=conn_id, legs=len(made))
            tspan.end(cycle=tracer.advance())
        return conn

    def disconnect(self, conn: CrossConnection) -> None:
        """Release every leg of a chaining (the release token)."""
        if conn.conn_id not in self._conns:
            raise ChannelAllocationError(f"unknown connection {conn.conn_id}")
        leg_ids = self._leg_ids[conn.conn_id]
        for seg_idx, (channel, _span) in conn.legs.items():
            self.segments[seg_idx].pool[channel].release(leg_ids[seg_idx])
        del self._conns[conn.conn_id]
        del self._leg_ids[conn.conn_id]
        telemetry.counter("chained.disconnects").inc()

    def _legs(
        self, source: Tuple[int, int], sink: Tuple[int, int]
    ) -> Dict[int, Span]:
        """Per-segment spans for a (possibly cross-segment) chaining."""
        s_seg, s_pos = source
        k_seg, k_pos = sink
        if s_seg == k_seg:
            return {s_seg: Span.between(s_pos, k_pos)}
        (lo_seg, lo_pos), (hi_seg, hi_pos) = sorted([source, sink])
        legs: Dict[int, Span] = {}
        # leg in the low segment: from the position to the high edge; a
        # terminal already at the edge crosses no segments here at all
        lo_n = self.segments[lo_seg].n_objects
        if lo_pos < lo_n - 1:
            legs[lo_seg] = Span(lo_pos, lo_n - 1)
        # whole intermediate segments
        for seg in range(lo_seg + 1, hi_seg):
            legs[seg] = Span(0, self.segments[seg].n_objects - 1)
        # leg in the high segment: from the low edge to the position
        if hi_pos > 0:
            legs[hi_seg] = Span(0, hi_pos)
        return legs

    def _check_position(self, where: Tuple[int, int]) -> None:
        seg, pos = where
        if not 0 <= seg < len(self.segments):
            raise TopologyError(f"no segment {seg}")
        if not 0 <= pos < self.segments[seg].n_objects:
            raise TopologyError(
                f"position {pos} outside segment {seg} of "
                f"{self.segments[seg].n_objects}"
            )

    # -- parallel WSRF search (section 2.6.1) ------------------------------

    def attach_wsrfs(self, wsrfs: List[WSRF]) -> None:
        """Attach one WSRF per segment for central hit detection."""
        if len(wsrfs) != len(self.segments):
            raise ConfigurationError("need exactly one WSRF per segment")
        self._wsrfs = wsrfs

    def parallel_search(self, object_id: int) -> Optional[Tuple[int, int]]:
        """Search every member WSRF in parallel; returns
        ``(segment, position)`` of the hit or ``None``.

        One lookup regardless of processor scale — the §2.6.1 point of
        centralising hit detection in the WSRFs.
        """
        wsrfs = getattr(self, "_wsrfs", None)
        if wsrfs is None:
            raise ConfigurationError("no WSRFs attached")
        for seg_idx, wsrf in enumerate(wsrfs):
            entry = wsrf.lookup(object_id)
            if entry is not None:
                return (seg_idx, entry.position)
        return None

    # -- statistics ------------------------------------------------------

    def total_objects(self) -> int:
        return sum(net.n_objects for net in self.segments)

    def used_channels_per_segment(self) -> List[int]:
        return [net.used_channels() for net in self.segments]

    # -- observation probes ------------------------------------------------

    def junction_states(self) -> List[int]:
        """Chain-switch position per junction: 1 = chained (the fused
        processor spans it), 0 = unchained (split) — §2.6.1's state made
        samplable so a heatmap shows *when* a junction split."""
        return [1 if chained else 0 for chained in self._junction_chained]
