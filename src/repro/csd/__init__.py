"""Channel segmentation distribution (CSD) networks (paper section 2.6).

The adaptive processor chains sink and source objects over a global
interconnection network.  A naive global network needs a channel count
that grows linearly with the number of physical objects; the CSD approach
segments every channel at every hop of the linear array so that multiple
communications can share one channel index as long as their spans do not
overlap — channel demand is then set by the *locality* of the configured
datapath, not the array size.

Modules
-------
:mod:`repro.csd.channels`
    Segmented channels and span (interval) occupancy.
:mod:`repro.csd.priority_encoder`
    The per-sink priority encoder of Figure 2.
:mod:`repro.csd.dynamic_csd`
    The dynamic CSD protocol: request broadcast → grant → ack (Figure 2),
    plus stack-shift support.
:mod:`repro.csd.static_csd`
    The non-segmented baseline (one whole channel per communication).
:mod:`repro.csd.locality`
    The locality-controlled random-datapath workload of section 2.6.2.
:mod:`repro.csd.simulator`
    The functional simulator regenerating Figure 3.
"""

from repro.csd.channels import Channel, ChannelPool, Span
from repro.csd.priority_encoder import PriorityEncoder
from repro.csd.dynamic_csd import Connection, DynamicCSDNetwork
from repro.csd.static_csd import StaticCSDNetwork
from repro.csd.locality import LocalityWorkload, ChainingRequest
from repro.csd.simulator import (
    CSDSimulator,
    SimulationResult,
    sweep_locality,
    figure3_series,
)
from repro.csd.chained import ChainedCSD, CrossConnection

__all__ = [
    "Channel",
    "ChannelPool",
    "Span",
    "PriorityEncoder",
    "Connection",
    "DynamicCSDNetwork",
    "StaticCSDNetwork",
    "LocalityWorkload",
    "ChainingRequest",
    "CSDSimulator",
    "SimulationResult",
    "sweep_locality",
    "figure3_series",
    "ChainedCSD",
    "CrossConnection",
]
