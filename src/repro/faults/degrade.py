"""Graceful degradation: re-route or re-map around what will not heal.

This is the paper's section-1 story made operational:

    "Through the VLSI processor architecture, the failing AP can be
    removed from the system. ... When a second AP fail[s], the first
    processor can become a small-scale processor, the third and fourth
    processors can be fused into the a medium-scale processor or split
    into two small-scale processors."

:class:`FaultAwareDefectInjector` extends the cluster-level
:class:`~repro.core.defects.DefectInjector` down to the resources the
fault campaign actually breaks, subsuming it for segment- and
switch-level defects:

* a **permanent CSD segment fault** needs no structural response — the
  channel filter keeps excluding the broken channel on that span and the
  priority encoder re-routes onto the survivors (recorded for the books);
* a **permanent junction-switch fault** splits the fused processor at
  the sticking junction (``unchain_junction``), exactly the paper's
  re-split response — both halves keep chaining internally;
* a **permanent cluster/transport fault** quarantines the cluster
  (marks it defective *and* poisons its fault sites) and re-maps the
  owning processor elsewhere via the inherited ``inject_at`` machinery.

Every action is recorded as a :class:`DegradationReport` so campaign
survival curves can separate "recovered by retry", "degraded but
alive", and "lost".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro import telemetry
from repro.core.defects import DefectInjector, DefectReport
from repro.core.vlsi_processor import VLSIProcessor
from repro.faults.injector import FaultInjector
from repro.faults.model import chain_switch_site, junction_site

__all__ = ["DegradationReport", "FaultAwareDefectInjector"]

Coord = Tuple[int, int]


@dataclass(frozen=True)
class DegradationReport:
    """Outcome of one degradation action below the cluster level."""

    #: ``"segment"`` | ``"junction"`` | ``"cluster"``
    level: str
    #: Site or coordinate that triggered the action.
    target: str
    #: ``"reroute"`` | ``"split"`` | ``"remap"``
    action: str
    #: Whether the system still serves the affected workload afterwards.
    survived: bool


class FaultAwareDefectInjector(DefectInjector):
    """A :class:`DefectInjector` that also understands fault sites.

    Parameters
    ----------
    vlsi:
        The chip whose fabric takes the defects.
    faults:
        The live fault injector of the same simulated chip; quarantined
        sites stay faulty forever, which is how a degradation decision
        propagates back into the fault hooks.
    """

    def __init__(
        self,
        vlsi: VLSIProcessor,
        faults: Optional[FaultInjector] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(vlsi, seed=seed)
        self.faults = faults
        self.degradations: List[DegradationReport] = []

    # -- segment level ------------------------------------------------------

    def record_segment_reroute(self, site: str) -> DegradationReport:
        """Book a permanent CSD segment fault as re-routed: the broken
        channel stays excluded on that span and traffic takes another
        channel — no structural change needed (section 2.6.2's whole
        point: channels are interchangeable on a span)."""
        if self.faults is not None:
            self.faults.quarantine(site)
        report = DegradationReport("segment", site, "reroute", True)
        self._book(report)
        return report

    # -- switch level -------------------------------------------------------

    def split_at_junction(self, chained, junction: int) -> DegradationReport:
        """Respond to a permanently sticking junction switch by
        splitting the fused processor there (the paper's "split into two
        small-scale processors").  Both halves keep working internally."""
        chained.unchain_junction(junction)
        if self.faults is not None:
            self.faults.quarantine(junction_site(junction))
        report = DegradationReport(
            "junction", junction_site(junction), "split", True
        )
        self._book(report)
        return report

    # -- cluster level ------------------------------------------------------

    def quarantine_cluster(
        self, coord: Coord, remap: bool = True
    ) -> Tuple[DegradationReport, DefectReport]:
        """Remove a cluster the transport can no longer reliably reach
        or program: mark it defective, poison its switch sites, and
        re-map the owning processor elsewhere (inherited machinery)."""
        defect = self.inject_at(coord, remap=remap)
        if self.faults is not None:
            for nbr in self.vlsi.fabric.neighbors(coord):
                self.faults.quarantine(chain_switch_site(coord, nbr))
        survived = defect.affected_processor is None or defect.remapped
        report = DegradationReport(
            "cluster", f"cluster/{coord[0]},{coord[1]}", "remap", survived
        )
        self._book(report)
        return report, defect

    # -- bookkeeping --------------------------------------------------------

    def _book(self, report: DegradationReport) -> None:
        self.degradations.append(report)
        telemetry.counter("faults.degradations").inc()
        telemetry.counter(f"faults.degradations.{report.action}").inc()
        telemetry.event(
            "faults.degradation",
            level=report.level,
            target=report.target,
            action=report.action,
            survived=report.survived,
        )
        telemetry.instant(
            "fault.degradation",
            level=report.level,
            action=report.action,
            target=report.target,
        )

    def survival_summary(self) -> Tuple[int, int]:
        """``(survived, total)`` across every degradation taken."""
        total = len(self.degradations)
        survived = sum(1 for d in self.degradations if d.survived)
        return survived, total
