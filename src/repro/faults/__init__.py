"""repro.faults — fault injection, recovery, and degradation campaigns.

The paper's defect-tolerance claim (section 1: a failing AP is removed
and the survivors re-fuse or re-split) is qualitative; this package
turns it into a measurable property of the reproduction, the way the
thousand-core interconnect literature treats link/router faults as
first-class (Epiphany-V, the Distributed Network Processor).

Layers:

* :mod:`repro.faults.model` — the fault universe: transient/permanent
  faults on CSD segments, chain/unchain switches, NoC links and worm
  flits, drawn from a seeded, order-independent :class:`FaultPlan`;
* :mod:`repro.faults.injector` — the live :class:`FaultInjector` wired
  into the hooks in :mod:`repro.csd.dynamic_csd`,
  :mod:`repro.csd.chained`, :mod:`repro.noc.network` and
  :mod:`repro.noc.wormhole`;
* :mod:`repro.faults.recovery` — bounded retry-with-backoff (simulated
  cycles) for the request/grant/ack handshake and the reserve/commit
  worm; exhaustion raises a typed
  :class:`~repro.errors.RetryExhaustedError`, never hangs;
* :mod:`repro.faults.degrade` — the
  :class:`FaultAwareDefectInjector` that re-routes, re-splits, or
  re-maps around permanent faults (subsuming the cluster-level
  :class:`~repro.core.defects.DefectInjector`);
* :mod:`repro.faults.campaign` — the Monte-Carlo campaign runner
  (``python -m repro faults``), sweeping fault rate × N_object over the
  process pool, bit-identical serial vs parallel.
"""

from __future__ import annotations

from repro.faults.degrade import DegradationReport, FaultAwareDefectInjector
from repro.faults.injector import FaultInjector
from repro.faults.model import Fault, FaultKind, FaultPlan
from repro.faults.recovery import (
    RetryPolicy,
    chained_connect_with_retry,
    configure_with_retry,
    connect_with_retry,
    with_retry,
)

__all__ = [
    "Fault",
    "FaultKind",
    "FaultPlan",
    "FaultInjector",
    "RetryPolicy",
    "with_retry",
    "connect_with_retry",
    "chained_connect_with_retry",
    "configure_with_retry",
    "DegradationReport",
    "FaultAwareDefectInjector",
]
