"""The live fault injector: plan + trigger state + telemetry.

A :class:`FaultInjector` answers the hooks' one question — *is this
resource misbehaving right now?* — by consulting its
:class:`~repro.faults.model.FaultPlan` (pure, order-independent) and its
own trigger ledger (transient faults heal after their drawn duration of
triggers).  Every trigger is counted into :mod:`repro.telemetry` and, in
scope of an open span, recorded as a span event, so fault activity shows
up in ``--stats`` and ``--trace`` output next to the protocol steps it
corrupted.

One injector is wired into every hook of one simulated chip (the CSD
networks, the router network, the wormhole configurator), so a single
fault ledger spans all layers — exactly how one physical defect would.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro import telemetry
from repro.faults.model import (
    Fault,
    FaultKind,
    FaultPlan,
    chain_switch_site,
    csd_segment_site,
    junction_site,
    noc_link_site,
    worm_flit_site,
)

__all__ = ["FaultInjector"]

Coord = Tuple[int, int]


class FaultInjector:
    """Evaluates fault-site queries against a plan, with healing.

    The injector is deliberately cheap when fault-free: every query
    starts with one ``fault_free`` check and returns immediately, so a
    rate-0 plan (or simply not attaching an injector) leaves the
    simulators byte-identical to an uninstrumented run.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        #: site -> triggers so far (only sites that drew a fault appear)
        self._triggers: Dict[str, int] = {}
        #: sites whose transient fault already healed
        self._healed: set = set()
        #: sites quarantined by the degradation layer (always faulty)
        self._quarantined: set = set()

    # -- core trigger logic ------------------------------------------------

    def _active(self, kind: FaultKind, site: str) -> bool:
        """Whether ``site`` misbehaves on *this* exercise (and count it)."""
        if site in self._quarantined:
            return True
        if self.plan.fault_free:
            return False
        if site in self._healed:
            return False
        fault = self.plan.draw(kind, site)
        if fault is None:
            return False
        count = self._triggers.get(site, 0) + 1
        self._triggers[site] = count
        if fault.transient and count > fault.duration:
            self._healed.add(site)
            telemetry.counter("faults.healed").inc()
            telemetry.instant("fault.healed", kind=kind.value, site=site)
            return False
        self._record(fault)
        return True

    def _record(self, fault: Fault) -> None:
        telemetry.counter("faults.triggered").inc()
        telemetry.counter(f"faults.{fault.kind.value}.triggered").inc()
        telemetry.counter(
            "faults.transient.triggered"
            if fault.transient
            else "faults.permanent.triggered"
        ).inc()
        telemetry.instant(
            "fault.triggered",
            kind=fault.kind.value,
            site=fault.site,
            transient=fault.transient,
        )

    def peek(self, kind: FaultKind, site: str) -> bool:
        """Like the trigger queries but without consuming a transient
        hit — for assertions and degradation decisions."""
        if site in self._quarantined:
            return True
        if self.plan.fault_free or site in self._healed:
            return False
        fault = self.plan.draw(kind, site)
        if fault is None:
            return False
        if fault.transient and self._triggers.get(site, 0) >= fault.duration:
            return False
        return True

    def is_permanent(self, kind: FaultKind, site: str) -> bool:
        """Whether ``site`` carries a permanent fault (never heals)."""
        if site in self._quarantined:
            return True
        if self.plan.fault_free:
            return False
        fault = self.plan.draw(kind, site)
        return fault is not None and fault.permanent

    def quarantine(self, site: str) -> None:
        """Degradation hook: force ``site`` faulty from now on (the
        extended defect injector routes around it)."""
        self._quarantined.add(site)
        telemetry.counter("faults.quarantined").inc()

    # -- per-layer queries (the hook API) ----------------------------------

    def csd_channel_blocked(
        self, channel: int, lo: int, hi: int, domain: str = "csd"
    ) -> bool:
        """Whether any segment of ``channel`` in ``[lo, hi)`` faults when
        the request broadcast crosses it.  Every faulty segment in the
        span is triggered (the request exercised them all)."""
        blocked = False
        for segment in range(lo, hi):
            if self._active(
                FaultKind.CSD_SEGMENT, csd_segment_site(domain, channel, segment)
            ):
                blocked = True
        return blocked

    def filter_csd_channels(
        self, channels: Iterable[int], lo: int, hi: int, domain: str = "csd"
    ) -> List[int]:
        """The surviving-channel filter for the Figure 2 broadcast: drop
        every candidate channel with an active segment fault on the span."""
        return [
            ch
            for ch in channels
            if not self.csd_channel_blocked(ch, lo, hi, domain=domain)
        ]

    def junction_fault(self, index: int) -> bool:
        """Whether ChainedCSD junction ``index`` misbehaves on crossing."""
        return self._active(FaultKind.SWITCH, junction_site(index))

    def chain_switch_fault(self, a: Coord, b: Coord) -> bool:
        """Whether programming the S-topology chain switch ``a``–``b``
        fails (the worm's instruction is ignored)."""
        return self._active(FaultKind.SWITCH, chain_switch_site(a, b))

    def link_fault(self, src: Coord, dst: Coord) -> bool:
        """Whether the router link ``src``→``dst`` drops this cycle's
        flit (the flit stalls and retries next cycle)."""
        return self._active(FaultKind.NOC_LINK, noc_link_site(src, dst))

    def flit_fault(self, payload: object) -> bool:
        """Whether this payload flit is corrupted on ejection (its
        programming instruction is lost)."""
        if payload is None:
            return False
        return self._active(FaultKind.WORM_FLIT, worm_flit_site(payload))

    def pristine(self) -> bool:
        """Whether this injector can never fire: a fault-free plan and no
        quarantined sites.  (Quarantine overrides the plan — ``_active``
        consults it first — so ``plan.fault_free`` alone is not enough.)
        Fast paths that skip fault hooks entirely must gate on this."""
        return self.plan.fault_free and not self._quarantined

    def quarantined_sites(self) -> Tuple[str, ...]:
        """Sites forced faulty by the degradation layer, sorted."""
        return tuple(sorted(self._quarantined))

    # -- statistics --------------------------------------------------------

    @property
    def triggered_sites(self) -> Tuple[str, ...]:
        return tuple(sorted(self._triggers))

    @property
    def healed_sites(self) -> Tuple[str, ...]:
        return tuple(sorted(self._healed))

    def total_triggers(self) -> int:
        return sum(self._triggers.values())
