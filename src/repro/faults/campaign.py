"""Monte-Carlo fault campaign: sweep fault rate × N_object, measure survival.

Each campaign point runs ``n_trials`` independent trials.  A trial draws
its own fault universe (a fresh :class:`FaultPlan` seeded from the
campaign seed, the point, and the trial index — never from execution
order) and pushes one simulated chip through the three reconfiguration
protocols the faults can corrupt:

* **CSD datapath** (Figure 3 workload) — the request/grant/ack handshake
  under segment faults, with bounded retry; a request still blocked
  after the retries counts as blocked, exactly like the fault-free
  simulator counts saturation.
* **Wormhole reconfiguration** (section 3.3) — a scaling worm under
  switch/link/flit faults; retry on the abortable reserve→commit
  protocol, then degradation (quarantine the sticking cluster and
  re-place the processor) when retry exhausts, then the section-1 remap
  story (fail an owned cluster, re-create the processor elsewhere).
* **ChainedCSD crossing** (section 2.6.1) — cross-segment chainings
  under junction faults; a permanently sticking junction triggers the
  paper's re-split response (``split_at_junction``).

Every seed derives from ``(campaign seed, n_objects, rate, trial)``
alone and point results travel with their telemetry snapshots, so the
parallel path (``--workers N``) is **bit-identical** to the serial one —
the same guarantee (and the same pool machinery) as
:mod:`repro.csd.simulator`.  With ``rate=0`` the CSD aggregates are
byte-identical to :func:`repro.csd.simulator._sweep_point` for the same
seed: the fault layer is provably free when empty.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.errors import ReproError, RetryExhaustedError, TopologyError
from repro.csd.chained import ChainedCSD
from repro.csd.simulator import CSDSimulator
from repro.core.vlsi_processor import VLSIProcessor
from repro.faults.degrade import FaultAwareDefectInjector
from repro.faults.injector import FaultInjector
from repro.faults.model import FaultKind, FaultPlan, junction_site
from repro.faults.recovery import (
    DEFAULT_POLICY,
    RECONFIG_RETRYABLE,
    RetryPolicy,
    chained_connect_with_retry,
    with_retry,
)
from repro.telemetry.observe import Sampler, point_label

__all__ = [
    "CAMPAIGN_SCHEMA",
    "run_fault_trial",
    "campaign_point",
    "run_campaign",
    "report_json",
]

#: Version tag of the campaign report format (bump on breaking change).
CAMPAIGN_SCHEMA = "repro.faults.campaign/1"

#: Counters whose per-point deltas go into the report.
_COUNTERS: Tuple[str, ...] = (
    "faults.triggered",
    "faults.healed",
    "faults.quarantined",
    "faults.recovery.retries",
    "faults.recovery.recovered",
    "faults.recovery.exhausted",
    "faults.degradations",
    "wormhole.aborts",
    "csd.connect.fault_drops",
    "chained.junction.faults",
    "noc.link_fault_stalls",
    "noc.corrupted_flits",
    "noc.purged_flits",
    "wormhole.switch_faults",
)

#: CSD workload knob shared by every trial (mid-sweep Figure 3 point).
_LOCALITY = 0.5

#: Fabric the reconfiguration phase scales processors onto.
_FABRIC = (4, 4)
_RECONFIG_CLUSTERS = 4


def _plan_seed(seed: int, n_objects: int, rate: float, trial: int) -> int:
    """The trial's fault-universe seed: pure in (campaign seed, point,
    trial index), so fault draws never depend on execution order or on
    which worker process ran the point."""
    return seed + 7919 * n_objects + 104729 * trial + int(round(rate * 1_000_000))


# -- the three per-trial phases ---------------------------------------------


def _reconfig_phase(
    injector: FaultInjector,
    policy: RetryPolicy,
    trial_seed: int,
    label: Optional[str] = None,
) -> Tuple[Dict[str, Any], FaultAwareDefectInjector]:
    """Scale one processor onto a faulty fabric: retry, then degrade,
    then exercise the section-1 defect-remap story on the survivor.

    With observation on (and a point ``label``), a sampler rides the
    router network recording per-router buffer depths, and the §3.4
    lifecycle census plus the §3.2 chain-switch settings are snapshot
    into heatmaps at the phase's two milestones (after placement, after
    the defect remap).  Heatmap cells are additive, so repeated trials
    at one point accumulate — the matrix reads as "across this point's
    trials, how often was this cell in this state"."""
    rows, cols = _FABRIC
    vlsi = VLSIProcessor(rows, cols)
    vlsi.configurator.faults = injector
    if vlsi.network is not None:
        vlsi.network.faults = injector
    degrader = FaultAwareDefectInjector(vlsi, faults=injector, seed=trial_seed)
    observer = telemetry.observer()
    observing = label is not None and observer.enabled
    if observing and vlsi.network is not None:
        sampler = Sampler(observer.effective_stride(4))
        sampler.attach_heatmap(
            telemetry.heatmap(f"noc.buffer_depth{label}"),
            vlsi.network.buffer_depths,
        )
        vlsi.network.sampler = sampler

    def milestone(index: int) -> None:
        if not observing:
            return
        census = telemetry.heatmap(f"faults.lifecycle{label}")
        for state, count in vlsi.lifecycle_census().items():
            census.add(state, index, count)
        switches = telemetry.heatmap(f"stopo.chain_switches{label}")
        for edge, value in vlsi.fabric.chain_switch_states().items():
            switches.add(edge, index, value)

    def create():
        return vlsi.create_processor("p0", n_clusters=_RECONFIG_CLUSTERS)

    retries_before = telemetry.counter("faults.recovery.retries").value
    outcome = "first_try"
    try:
        with_retry(
            create, policy=policy, retry_on=RECONFIG_RETRYABLE,
            what="reconfig p0",
        )
        if telemetry.counter("faults.recovery.retries").value > retries_before:
            outcome = "recovered"
    except RetryExhaustedError:
        # retry could not wait the fault out — degrade: quarantine the
        # head of the region the allocator keeps choosing, forcing the
        # next placement around it, and re-attempt once on what is left
        target = vlsi.allocator.find_serpentine(_RECONFIG_CLUSTERS)
        coord = target.path[0] if target is not None else (0, 0)
        degrader.quarantine_cluster(coord, remap=False)
        try:
            with_retry(
                create, policy=policy, retry_on=RECONFIG_RETRYABLE,
                what="reconfig p0 (degraded placement)",
            )
            outcome = "degraded"
        except (RetryExhaustedError, ReproError):
            outcome = "lost"
    milestone(0)

    remap_attempted = False
    remap_ok = False
    if outcome != "lost":
        # the paper's section-1 story: an owned cluster fails, the
        # processor is removed and re-created elsewhere if capacity allows
        victim = vlsi.processor("p0").region.path[0]
        remap_attempted = True
        _, defect = degrader.quarantine_cluster(victim, remap=True)
        remap_ok = bool(defect.remapped)
    milestone(1)

    stats = {
        "outcome": outcome,
        "remap_attempted": remap_attempted,
        "remap_ok": remap_ok,
    }
    return stats, degrader


def _chained_phase(
    injector: FaultInjector,
    n_objects: int,
    policy: RetryPolicy,
    degrader: FaultAwareDefectInjector,
    label: Optional[str] = None,
) -> Dict[str, int]:
    """Cross-segment chainings under junction faults; a permanently
    sticking junction gets the paper's re-split response.  With
    observation on, every crossing attempt snapshots the §2.6.1 junction
    chain states into a point-labelled heatmap (cycle = pair index)."""
    seg = max(2, n_objects // 4)
    chained = ChainedCSD([seg, seg, seg], faults=injector)
    observing = label is not None and telemetry.observer().enabled
    pairs = [
        ((0, 0), (2, seg - 1)),       # crosses both junctions
        ((0, seg - 1), (1, 0)),       # crosses junction 0
        ((1, seg // 2), (2, 0)),      # crosses junction 1
    ]
    connected = splits = lost = severed = 0
    for pair_index, (source, sink) in enumerate(pairs):
        try:
            chained_connect_with_retry(chained, source, sink, policy=policy)
            connected += 1
        except TopologyError:
            # the crossing needs a junction an earlier split opened —
            # the two halves are separate processors now, by design
            severed += 1
        except RetryExhaustedError:
            did_split = False
            for j in range(len(chained.segments) - 1):
                if chained.is_junction_chained(j) and injector.is_permanent(
                    FaultKind.SWITCH, junction_site(j)
                ):
                    degrader.split_at_junction(chained, j)
                    splits += 1
                    did_split = True
            if not did_split:
                lost += 1
        if observing:
            junctions = telemetry.heatmap(f"chained.junctions{label}")
            for j, state in enumerate(chained.junction_states()):
                junctions.add(f"j{j}", pair_index, state)
    return {
        "connected": connected,
        "splits": splits,
        "severed": severed,
        "lost": lost,
    }


def run_fault_trial(
    n_objects: int,
    rate: float,
    trial: int,
    seed: int,
    policy: RetryPolicy = DEFAULT_POLICY,
    locality: float = _LOCALITY,
    engine=None,
    csd_rate: Optional[float] = None,
) -> Dict[str, Any]:
    """One Monte-Carlo trial: fresh fault universe, all three phases.

    ``engine`` (a :class:`repro.engine.SweepEngine`) routes the CSD
    phase through the trial cache; the engine itself guarantees the
    cached path only engages when it is byte-identical to the live one
    (fault-free plan, no blocks under the retry policy).

    ``csd_rate`` overrides the CSD-segment fault rate while every other
    kind keeps ``rate`` — with ``csd_rate=0.0`` the datapath phase is
    provably fault-free and the engine's cached/vector kernels stay
    byte-identical even at nonzero reconfiguration-fault rates.  Note
    the override is per *kind*, not per domain: chained-CSD junction
    legs draw segment faults of the same kind, so it moves with the
    override too.
    """
    plan_seed = _plan_seed(seed, n_objects, rate, trial)
    if csd_rate is None:
        plan = FaultPlan.uniform(plan_seed, rate)
    else:
        plan = FaultPlan(
            seed=plan_seed,
            default_rate=rate,
            rates={FaultKind.CSD_SEGMENT: float(csd_rate)},
        )
    injector = FaultInjector(plan)
    label = (
        point_label(n=n_objects, rate=rate)
        if telemetry.observer().enabled
        else None
    )
    # same trial-seed derivation as CSDSimulator.run_many, so the rate-0
    # campaign replays the Figure 3 sweep byte-for-byte
    if engine is not None:
        csd = engine.run_csd_trial(
            n_objects,
            locality,
            seed + 1000 * trial,
            faults=injector,
            retry_policy=policy,
        )
    else:
        csd = CSDSimulator(n_objects, seed=seed).run_trial(
            locality,
            trial_seed=seed + 1000 * trial,
            faults=injector,
            retry_policy=policy,
        )
    reconfig, degrader = _reconfig_phase(
        injector, policy, trial_seed=seed + 1000 * trial, label=label
    )
    chained = _chained_phase(injector, n_objects, policy, degrader, label=label)
    served = 1.0 - (csd.blocked / csd.requests if csd.requests else 0.0)
    survived = reconfig["outcome"] != "lost" and served >= 0.9
    deg_survived, deg_total = degrader.survival_summary()
    return {
        "csd": csd,
        "served_fraction": served,
        "reconfig": reconfig,
        "chained": chained,
        "degradations": deg_total,
        "degradations_survived": deg_survived,
        "fault_triggers": injector.total_triggers(),
        "survived": survived,
    }


# -- point aggregation ------------------------------------------------------


def _percentiles(values: Sequence[float]) -> Dict[str, float]:
    from repro.telemetry.metrics import Histogram

    h = Histogram("faults.recovery.cycles.point", values=list(values))
    return {
        "count": h.count,
        "p50": float(h.percentile(50)),
        "p95": float(h.percentile(95)),
        "p99": float(h.percentile(99)),
        "mean": float(np.mean(values)) if values else 0.0,
        "max": float(max(values)) if values else 0.0,
    }


def _capture_before() -> Tuple[Dict[str, float], int]:
    """Snapshot the campaign counters and the recovery-histogram length
    so a later :func:`_capture_delta` isolates one stretch of work."""
    return (
        {name: telemetry.counter(name).value for name in _COUNTERS},
        len(telemetry.histogram("faults.recovery.cycles").values),
    )


def _capture_delta(
    before: Tuple[Dict[str, float], int]
) -> Tuple[Dict[str, float], List[float]]:
    """Counter deltas and new recovery samples since ``before``.

    Deltas are additive and the histogram only appends, so per-trial
    captures summed (and slices concatenated) in trial order equal one
    capture around the whole point — the identity the batched engine
    path relies on."""
    counters, hist_before = before
    deltas = {
        name: telemetry.counter(name).value - counters[name]
        for name in _COUNTERS
    }
    recovery = list(
        telemetry.histogram("faults.recovery.cycles").values[hist_before:]
    )
    return deltas, recovery


def _aggregate_campaign_point(
    n_objects: int,
    rate: float,
    n_trials: int,
    locality: float,
    trials: List[Dict[str, Any]],
    deltas: Dict[str, float],
    recovery: Sequence[float],
) -> Dict[str, Any]:
    """Fold one point's trial dicts (plus its telemetry capture) into
    the report entry.  Shared verbatim by the serial path, the per-point
    pool fan-out, and the batched engine path, so every path feeding the
    same trials in trial order produces bit-identical entries."""
    csd_trials = [t["csd"] for t in trials]
    outcomes = {
        key: sum(1 for t in trials if t["reconfig"]["outcome"] == key)
        for key in ("first_try", "recovered", "degraded", "lost")
    }
    return {
        "n_objects": n_objects,
        "rate": float(rate),
        "trials": n_trials,
        "locality": float(locality),
        # same aggregation formulas as simulator._sweep_point: at rate 0
        # these five fields are byte-identical to the Figure 3 sweep
        "csd": {
            "used_channels": int(round(np.mean([r.used_channels for r in csd_trials]))),
            "highest_channel": int(round(np.mean([r.highest_channel for r in csd_trials]))),
            "requests": csd_trials[0].requests,
            "blocked": int(round(np.mean([r.blocked for r in csd_trials]))),
            "realized_locality": float(np.mean([r.realized_locality for r in csd_trials])),
            "served_fraction": float(np.mean([t["served_fraction"] for t in trials])),
        },
        "reconfig": {
            **outcomes,
            "remap_attempted": sum(1 for t in trials if t["reconfig"]["remap_attempted"]),
            "remap_ok": sum(1 for t in trials if t["reconfig"]["remap_ok"]),
        },
        "chained": {
            key: sum(t["chained"][key] for t in trials)
            for key in ("connected", "splits", "severed", "lost")
        },
        "degradations": sum(t["degradations"] for t in trials),
        "degradations_survived": sum(t["degradations_survived"] for t in trials),
        "fault_triggers": sum(t["fault_triggers"] for t in trials),
        "counters": deltas,
        "recovery_cycles": _percentiles(recovery),
        "survival": float(np.mean([1.0 if t["survived"] else 0.0 for t in trials])),
    }


def record_campaign_gauges(
    n_objects: int,
    rate: float,
    trials: List[Dict[str, Any]],
    recovery: Sequence[float],
) -> None:
    """Set one campaign point's observation gauges.

    Shared by :func:`campaign_point` and the engine sweep
    (:mod:`repro.engine.sweep`), so every path leaves the same
    ``faults.survival`` / ``faults.recovery_p95`` gauge state (one
    update per point) behind."""
    label = point_label(n=n_objects, rate=rate)
    telemetry.gauge(f"faults.survival{label}").set(
        float(np.mean([1.0 if t["survived"] else 0.0 for t in trials]))
    )
    telemetry.gauge(f"faults.recovery_p95{label}").set(
        _percentiles(recovery)["p95"]
    )


def campaign_point(
    n_objects: int,
    rate: float,
    n_trials: int,
    seed: int,
    policy: RetryPolicy = DEFAULT_POLICY,
    locality: float = _LOCALITY,
    engine=None,
    csd_rate: Optional[float] = None,
) -> Dict[str, Any]:
    """One averaged campaign point (the unit of parallel fan-out).

    The returned dict is JSON-safe (ints, floats, strings only — no
    process-dependent ids, no timestamps), which is what makes the
    serial and parallel reports byte-comparable.
    """
    if n_trials < 1:
        raise ValueError("need at least one trial")
    if not 0.0 <= rate <= 1.0:
        raise ValueError("fault rate must be in [0, 1]")
    before = _capture_before()
    with telemetry.scope("faults.point"), telemetry.tracer().span(
        "faults.point", kind="campaign", n_objects=n_objects,
        rate=rate, trials=n_trials, seed=seed,
    ):
        trials = [
            run_fault_trial(
                n_objects, rate, t, seed, policy=policy, locality=locality,
                engine=engine, csd_rate=csd_rate,
            )
            for t in range(n_trials)
        ]
    deltas, recovery = _capture_delta(before)
    if telemetry.observer().enabled:
        record_campaign_gauges(n_objects, rate, trials, recovery)
    return _aggregate_campaign_point(
        n_objects, rate, n_trials, locality, trials, deltas, recovery
    )


# -- campaign sweep (serial and process-pool paths) -------------------------

Task = Tuple[
    int, float, int, int, Tuple[int, int, int], float, bool, bool, int,
    Optional[float],
]


def _campaign_task(task: Task) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Worker-process entry: one point plus its telemetry delta (the
    registry is reset first — a forked worker inherits the parent's
    counts and must report only its own)."""
    (
        n_objects, rate, n_trials, seed, policy_tuple, locality,
        trace, observe, stride, csd_rate,
    ) = task
    telemetry.reset()
    telemetry.enable_tracing(trace)
    telemetry.enable_observation(observe, stride)
    policy = RetryPolicy(*policy_tuple)
    point = campaign_point(
        n_objects, rate, n_trials, seed, policy=policy, locality=locality,
        csd_rate=csd_rate,
    )
    return point, telemetry.snapshot()


def run_campaign(
    rates: Sequence[float],
    n_objects_list: Sequence[int] = (16, 32, 64),
    n_trials: int = 8,
    seed: int = 42,
    policy: RetryPolicy = DEFAULT_POLICY,
    locality: float = _LOCALITY,
    workers: Optional[int] = None,
    csd_rate: Optional[float] = None,
) -> Dict[str, Any]:
    """The full sweep: one point per (rate, n_objects), rate-major order.

    ``workers`` > 1 fans the points out over a process pool with worker
    telemetry snapshots folded back in — the report (and the registry)
    is bit-identical to the serial path.

    ``csd_rate``, when given, pins the CSD-segment fault rate at that
    value across the whole sweep while ``rates`` continues to drive
    every other fault kind (see :func:`run_fault_trial`); the override
    is recorded in the report under ``"csd_rate"``.
    """
    if not rates:
        raise ValueError("need at least one fault rate")
    if not n_objects_list:
        raise ValueError("need at least one array size")
    grid = [(n, r) for r in rates for n in n_objects_list]
    policy_tuple = (
        policy.max_attempts,
        policy.base_backoff_cycles,
        policy.backoff_multiplier,
    )
    points: List[Dict[str, Any]]
    if workers is not None and workers > 1:
        from concurrent.futures import ProcessPoolExecutor

        trace = telemetry.tracer().enabled
        obs = telemetry.observer()
        tasks: List[Task] = [
            (
                n, r, n_trials, seed, policy_tuple, locality,
                trace, obs.enabled, obs.stride, csd_rate,
            )
            for n, r in grid
        ]
        points = []
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for point, snap in pool.map(_campaign_task, tasks):
                telemetry.merge(snap)
                points.append(point)
    else:
        points = [
            campaign_point(
                n, r, n_trials, seed, policy=policy, locality=locality,
                csd_rate=csd_rate,
            )
            for n, r in grid
        ]
    report: Dict[str, Any] = {
        "schema": CAMPAIGN_SCHEMA,
        "seed": seed,
        "trials": n_trials,
        "locality": float(locality),
        "rates": [float(r) for r in rates],
        "n_objects": [int(n) for n in n_objects_list],
        "policy": {
            "max_attempts": policy.max_attempts,
            "base_backoff_cycles": policy.base_backoff_cycles,
            "backoff_multiplier": policy.backoff_multiplier,
        },
        "points": points,
    }
    if csd_rate is not None:
        report["csd_rate"] = float(csd_rate)
    return report


def report_json(report: Dict[str, Any]) -> str:
    """Canonical serialization: sorted keys, no process-dependent data —
    two reports from the same seed compare equal byte-for-byte."""
    return json.dumps(report, sort_keys=True, indent=2)
