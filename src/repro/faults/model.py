"""The fault model: *what* can break, *where*, and *for how long*.

The paper's defect-tolerance narrative (section 1) is qualitative:

    "Scaling to hundreds or thousands of processor elements and memory
    blocks on chip will increase the number of defects.  Through the
    VLSI processor architecture, the failing AP can be removed from the
    system."

To turn that into a measurable experiment this module pins down a
concrete fault universe over the layers the architecture actually makes
dynamic:

* :attr:`FaultKind.CSD_SEGMENT` — one single-hop segment of one CSD
  channel stops carrying data (section 2.6.2's "completely segmented"
  channels make the segment the natural fault unit);
* :attr:`FaultKind.SWITCH` — a chain/unchain switch sticks: a ChainedCSD
  junction between fused APs, or an S-topology chain switch that a
  configuration worm tries to program (section 3.1/3.3);
* :attr:`FaultKind.NOC_LINK` — a link between adjacent on-chip routers
  drops flits (the worm's transport, section 3.3);
* :attr:`FaultKind.WORM_FLIT` — one payload flit of a configuration worm
  is corrupted, so its switch-programming instruction is lost on
  ejection.

Every fault is **transient** (heals after a bounded number of triggers —
a particle strike, a marginal timing path) or **permanent** (a
manufacturing defect: the resource never comes back).

A :class:`FaultPlan` is the seeded source of truth.  Draws are made
lazily, **keyed by the fault site** (a stable string), with a per-site
RNG derived from ``(seed, crc32(site))`` — so whether a site is faulty
never depends on query order, process boundaries, or how many other
sites were examined first.  That property is what makes the Monte-Carlo
campaign bit-identical between ``--workers 1`` and ``--workers N``.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "FaultKind",
    "Fault",
    "FaultPlan",
    "csd_segment_site",
    "junction_site",
    "chain_switch_site",
    "noc_link_site",
    "worm_flit_site",
]


class FaultKind(str, Enum):
    """Where in the architecture a fault lands."""

    CSD_SEGMENT = "csd.segment"
    SWITCH = "switch"
    NOC_LINK = "noc.link"
    WORM_FLIT = "worm.flit"


#: Default share of drawn faults that are transient rather than permanent.
DEFAULT_TRANSIENT_FRACTION = 0.75

#: Default maximum triggers a transient fault survives before healing.
DEFAULT_TRANSIENT_HITS = 3


@dataclass(frozen=True)
class Fault:
    """One drawn fault: a site that will misbehave when exercised.

    ``duration`` is the number of *triggers* a transient fault withstands
    before healing; permanent faults ignore it.  Durations are measured
    in protocol events, not wall time — one trigger is one request
    crossing the segment, one stall cycle on the link, one programming
    attempt on the switch — so retry-with-backoff genuinely outlasts
    transient faults.
    """

    kind: FaultKind
    site: str
    transient: bool
    duration: int = 1

    @property
    def permanent(self) -> bool:
        return not self.transient


class FaultPlan:
    """Seeded, order-independent assignment of faults to sites.

    Parameters
    ----------
    seed:
        Every draw derives from this and the site key alone.
    rates:
        Per-kind Bernoulli probability that a site of that kind is
        faulty.  Missing kinds default to ``default_rate``.
    default_rate:
        Rate for kinds not listed in ``rates``.
    transient_fraction:
        Probability that a drawn fault is transient (else permanent).
    transient_hits:
        Upper bound on a transient fault's trigger count before healing
        (the actual duration is drawn uniformly from ``1..transient_hits``).
    """

    def __init__(
        self,
        seed: int = 0,
        rates: Optional[Dict[FaultKind, float]] = None,
        default_rate: float = 0.0,
        transient_fraction: float = DEFAULT_TRANSIENT_FRACTION,
        transient_hits: int = DEFAULT_TRANSIENT_HITS,
    ) -> None:
        if default_rate < 0 or default_rate > 1:
            raise ValueError("fault rate must be a probability in [0, 1]")
        if not 0 <= transient_fraction <= 1:
            raise ValueError("transient fraction must be in [0, 1]")
        if transient_hits < 1:
            raise ValueError("transient faults need at least one trigger")
        rates = dict(rates) if rates else {}
        for kind, rate in rates.items():
            if rate < 0 or rate > 1:
                raise ValueError(f"rate for {kind} must be in [0, 1]")
        self.seed = int(seed)
        self.default_rate = float(default_rate)
        self.rates: Dict[FaultKind, float] = {
            FaultKind(k): float(v) for k, v in rates.items()
        }
        self.transient_fraction = float(transient_fraction)
        self.transient_hits = int(transient_hits)

    # -- constructors ------------------------------------------------------

    @classmethod
    def uniform(cls, seed: int, rate: float, **kwargs) -> "FaultPlan":
        """One rate for every fault kind — the campaign's sweep axis."""
        return cls(seed=seed, default_rate=rate, **kwargs)

    @classmethod
    def none(cls) -> "FaultPlan":
        """The fault-free plan: every site is healthy, no RNG is ever
        consumed — a run under this plan is byte-identical to a run with
        no fault machinery attached at all."""
        return cls(seed=0, default_rate=0.0)

    # -- queries -----------------------------------------------------------

    @property
    def fault_free(self) -> bool:
        return self.default_rate == 0.0 and all(
            r == 0.0 for r in self.rates.values()
        )

    def rate_for(self, kind: FaultKind) -> float:
        return self.rates.get(kind, self.default_rate)

    def draw(self, kind: FaultKind, site: str) -> Optional[Fault]:
        """The fault at ``site`` (or None) — pure in ``(seed, kind, site)``.

        The same plan asked about the same site always answers the same,
        in any process, in any order, because the site RNG is re-derived
        from scratch on every call.
        """
        rate = self.rate_for(kind)
        if rate == 0.0:
            return None
        rng = np.random.default_rng(
            (self.seed, zlib.crc32(f"{kind.value}:{site}".encode("utf-8")))
        )
        if rng.random() >= rate:
            return None
        transient = bool(rng.random() < self.transient_fraction)
        duration = int(rng.integers(1, self.transient_hits + 1)) if transient else 1
        return Fault(kind, site, transient, duration)

    # -- (de)serialisation -------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """Picklable/JSON-able description (for campaign reports)."""
        return {
            "seed": self.seed,
            "default_rate": self.default_rate,
            "rates": {k.value: v for k, v in sorted(self.rates.items())},
            "transient_fraction": self.transient_fraction,
            "transient_hits": self.transient_hits,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "FaultPlan":
        return cls(
            seed=d.get("seed", 0),  # type: ignore[arg-type]
            rates={
                FaultKind(k): v  # type: ignore[misc]
                for k, v in dict(d.get("rates", {})).items()  # type: ignore[arg-type]
            },
            default_rate=d.get("default_rate", 0.0),  # type: ignore[arg-type]
            transient_fraction=d.get(
                "transient_fraction", DEFAULT_TRANSIENT_FRACTION
            ),  # type: ignore[arg-type]
            transient_hits=d.get("transient_hits", DEFAULT_TRANSIENT_HITS),  # type: ignore[arg-type]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPlan(seed={self.seed}, default_rate={self.default_rate}, "
            f"rates={self.rates!r})"
        )


#: Site-key helpers — one format per fault kind, shared by every hook so
#: the same physical resource always maps to the same draw.

def csd_segment_site(domain: str, channel: int, segment: int) -> str:
    """A single-hop segment of one channel in one CSD fault domain."""
    return f"{domain}/ch{channel}/seg{segment}"


def junction_site(index: int) -> str:
    """A chain/unchain junction between fused AP segments."""
    return f"junction/{index}"


def chain_switch_site(a: Tuple[int, int], b: Tuple[int, int]) -> str:
    """An S-topology chain switch between adjacent clusters (undirected)."""
    lo, hi = sorted((a, b))
    return f"chainsw/{lo[0]},{lo[1]}-{hi[0]},{hi[1]}"


def noc_link_site(src: Tuple[int, int], dst: Tuple[int, int]) -> str:
    """A directed router-to-router link."""
    return f"link/{src[0]},{src[1]}->{dst[0]},{dst[1]}"


def worm_flit_site(payload: object) -> str:
    """A configuration-worm payload flit, keyed by what it programs (not
    by packet id, which is process-global and would break determinism)."""
    return f"flit/{payload!r}"
