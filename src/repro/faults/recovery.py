"""Bounded retry-with-backoff for the reconfiguration protocols.

The paper's handshakes are all two-phase and abortable: the CSD
request/grant/ack chaining (Figure 2) blocks cleanly when no channel
survives, a ChainedCSD chaining rolls back every leg it occupied, and a
scaling worm retreats and releases everything it reserved (section 3.3).
That makes retry safe: after a failed attempt the fabric is exactly as
it was, so the recovery layer can simply wait out a transient fault and
try again.

:class:`RetryPolicy` bounds both the attempt count and the simulated
backoff (exponential, in *cycles* of the telemetry tracer's logical
clock — backoff time is architectural, not wall-clock).  On success
after ``k`` failed attempts the accumulated backoff is the **recovery
latency**, recorded into the ``faults.recovery.cycles`` histogram that
the campaign reports as p50/p95/p99.  On exhaustion a typed
:class:`~repro.errors.RetryExhaustedError` is raised — never a hang —
and the degradation layer (:mod:`repro.faults.degrade`) takes over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple, Type, TypeVar

from repro import telemetry
from repro.errors import (
    AllocationConflictError,
    ChannelAllocationError,
    FaultInjectionError,
    RegionError,
    RetryExhaustedError,
    SimulationError,
)

__all__ = [
    "RetryPolicy",
    "with_retry",
    "connect_with_retry",
    "chained_connect_with_retry",
    "configure_with_retry",
    "CSD_RETRYABLE",
    "RECONFIG_RETRYABLE",
]

T = TypeVar("T")

#: What a failed CSD handshake raises (blocked broadcast, faulted leg).
CSD_RETRYABLE: Tuple[Type[BaseException], ...] = (
    ChannelAllocationError,
    FaultInjectionError,
)

#: What a failed scaling worm raises: a reservation conflict, a worm
#: stalled to death by link faults, or a partially-programmed region
#: detected by the post-delivery verify.
RECONFIG_RETRYABLE: Tuple[Type[BaseException], ...] = (
    AllocationConflictError,
    FaultInjectionError,
    RegionError,
    SimulationError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff, measured in simulated cycles."""

    max_attempts: int = 4
    base_backoff_cycles: int = 2
    backoff_multiplier: int = 2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")
        if self.base_backoff_cycles < 0:
            raise ValueError("backoff cannot be negative")
        if self.backoff_multiplier < 1:
            raise ValueError("backoff multiplier must be >= 1")

    def backoff_cycles(self, failed_attempts: int) -> int:
        """Cycles to wait after the ``failed_attempts``-th failure."""
        if failed_attempts < 1:
            return 0
        return self.base_backoff_cycles * (
            self.backoff_multiplier ** (failed_attempts - 1)
        )

    def total_backoff_budget(self) -> int:
        """Worst-case cycles a caller can spend backing off — finite by
        construction, which is the no-hang guarantee."""
        return sum(
            self.backoff_cycles(k) for k in range(1, self.max_attempts)
        )


#: The default policy the campaign and the CLI use.
DEFAULT_POLICY = RetryPolicy()


def with_retry(
    operation: Callable[[], T],
    policy: RetryPolicy = DEFAULT_POLICY,
    retry_on: Tuple[Type[BaseException], ...] = CSD_RETRYABLE,
    what: str = "operation",
) -> T:
    """Run ``operation`` under bounded retry-with-backoff.

    Returns the operation's result.  After each retryable failure the
    tracer's logical clock advances by the policy's backoff (simulated
    wait), bounded by ``policy.max_attempts``.  Raises
    :class:`RetryExhaustedError` (chained to the last failure) when the
    attempts run out; any non-retryable exception propagates untouched.
    """
    tracer = telemetry.tracer()
    backoff_total = 0
    last_exc: BaseException
    for attempt in range(1, policy.max_attempts + 1):
        try:
            result = operation()
        except retry_on as exc:
            last_exc = exc
            if attempt == policy.max_attempts:
                telemetry.counter("faults.recovery.exhausted").inc()
                telemetry.event(
                    "faults.retry.exhausted", what=what,
                    attempts=attempt, backoff_cycles=backoff_total,
                )
                if tracer.enabled:
                    tracer.instant(
                        "faults.retry.exhausted", what=what, attempts=attempt
                    )
                raise RetryExhaustedError(
                    f"{what} still failing after {attempt} attempts "
                    f"({backoff_total} backoff cycles): {exc}",
                    attempts=attempt,
                    backoff_cycles=backoff_total,
                ) from exc
            wait = policy.backoff_cycles(attempt)
            backoff_total += wait
            telemetry.counter("faults.recovery.retries").inc()
            if tracer.enabled:
                tracer.instant(
                    "faults.retry.backoff", what=what,
                    attempt=attempt, wait_cycles=wait,
                )
                tracer.advance(wait)  # the simulated wait
            continue
        if attempt > 1:
            telemetry.counter("faults.recovery.recovered").inc()
            telemetry.histogram("faults.recovery.cycles").observe(
                backoff_total
            )
            telemetry.event(
                "faults.retry.recovered", what=what,
                attempts=attempt, backoff_cycles=backoff_total,
            )
            if tracer.enabled:
                tracer.instant(
                    "faults.retry.recovered", what=what,
                    attempts=attempt, recovery_cycles=backoff_total,
                )
        return result
    raise AssertionError("unreachable")  # pragma: no cover


# -- protocol-specific wrappers -------------------------------------------


def connect_with_retry(
    net,
    source: int,
    sink: int,
    policy: RetryPolicy = DEFAULT_POLICY,
):
    """The request/grant/ack handshake under retry: re-broadcast after a
    backoff when no channel survives (transient segment faults heal
    while the source waits)."""
    return with_retry(
        lambda: net.connect(source, sink),
        policy=policy,
        retry_on=CSD_RETRYABLE,
        what=f"csd.connect {source}->{sink}",
    )


def chained_connect_with_retry(
    chained,
    source,
    sink,
    policy: RetryPolicy = DEFAULT_POLICY,
):
    """A cross-segment chaining under retry.  Each failed attempt has
    already rolled back every leg it occupied, so re-attempting is safe."""
    return with_retry(
        lambda: chained.connect(source, sink),
        policy=policy,
        retry_on=CSD_RETRYABLE,
        what=f"chained.connect {source}->{sink}",
    )


def configure_with_retry(
    configurator,
    region,
    owner,
    policy: RetryPolicy = DEFAULT_POLICY,
):
    """A reserve→commit scaling worm under retry.  A failed worm has
    already retreated (flags released, switches unchained, clusters
    freed), so the re-sent worm sees a clean fabric."""
    return with_retry(
        lambda: configurator.configure(region, owner),
        policy=policy,
        retry_on=RECONFIG_RETRYABLE,
        what=f"wormhole.configure {owner!r}@{region.path[0]}",
    )
