"""Per-cycle fabric observation — gauges, time-series, and heatmaps.

The counters of :mod:`repro.telemetry.metrics` aggregate over a whole
run and the spans of :mod:`repro.telemetry.tracing` record causality;
neither answers "what did the fabric *look like* at cycle 40?".  This
layer does:

* :class:`Gauge` — an instantaneous value (in-flight flits, survival of
  the last campaign point);
* :class:`TimeSeries` — a ring-buffered sequence of ``(cycle, value)``
  samples (used-channel count as a trial's datapath fills in);
* :class:`Heatmap` — a sparse cycle-indexed matrix of ``(row, cycle) →
  value`` cells, *additive* so per-trial snapshots of fabric state (CSD
  segment demand along the linear array, junction chain states,
  S-topology switch settings, NoC buffer depths, the §3.4 lifecycle
  census) accumulate across trials and merge across worker processes in
  any order without changing the result;
* :class:`Sampler` — the cycle-driven pump: probes attached to live
  fabric objects are invoked every ``stride`` cycles and their readings
  written into series/heatmaps.

Observation follows the same guard discipline as tracing: it is **off
by default**, the hot paths check :attr:`Observer.enabled` (one
attribute read) before building a sampler, and every instrument is
bounded (ring capacity for series, a cell cap for heatmaps) so a
million-trial sweep cannot grow memory without limit.

Determinism: instrument *names* carry the point identity (e.g.
``csd.segment_demand[n=16,loc=0.5]``), every named instrument is filled
entirely inside one worker process, heatmap cells are additive, and
series/heatmap snapshots are canonically sorted — which is why a
``--workers N`` observation is byte-identical to a serial one.
"""

from __future__ import annotations

import re
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "Gauge",
    "TimeSeries",
    "Heatmap",
    "Sampler",
    "Observer",
    "escape_label_value",
    "natural_key",
    "point_label",
]

#: Default ring capacity of a :class:`TimeSeries`.
DEFAULT_SERIES_CAPACITY = 65_536

#: Default cell cap of a :class:`Heatmap`.
DEFAULT_HEATMAP_CELLS = 262_144


class Gauge:
    """A named instantaneous value — goes up and down, last write wins.

    ``updates`` counts how many times the gauge was set, so merging a
    worker snapshot can distinguish "the worker never touched this"
    (keep the local value) from "the worker set it" (adopt the worker's
    value — snapshots are merged in task order, so the result matches
    what a serial run would have left behind).
    """

    __slots__ = ("name", "value", "updates")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updates += 1

    def add(self, delta: float) -> None:
        self.set(self.value + delta)

    def reset(self) -> None:
        self.value = 0.0
        self.updates = 0

    # -- snapshot / merge --------------------------------------------------

    def state(self) -> Dict[str, Any]:
        return {"value": self.value, "updates": self.updates}

    def merge_state(self, state: Mapping[str, Any]) -> None:
        updates = state.get("updates", 0)
        if updates:
            self.value = float(state.get("value", 0.0))
            self.updates += updates

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, value={self.value})"


class TimeSeries:
    """A named, ring-buffered sequence of ``(cycle, value)`` samples.

    The ring is bounded: when full, the oldest sample falls off the
    front and is tallied in :attr:`dropped` (the same discipline as
    :class:`~repro.telemetry.events.EventTrace`).  ``samples()`` and the
    snapshot are **canonically sorted** by ``(cycle, value)`` so two
    registries holding the same multiset of samples — a serial run and a
    merged parallel one — expose byte-identical output.
    """

    __slots__ = ("name", "capacity", "_ring", "dropped")

    def __init__(self, name: str, capacity: int = DEFAULT_SERIES_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("series needs capacity for at least one sample")
        self.name = name
        self.capacity = capacity
        self._ring: Deque[Tuple[int, float]] = deque(maxlen=capacity)
        self.dropped = 0

    def record(self, cycle: int, value: float) -> None:
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append((int(cycle), float(value)))

    def __len__(self) -> int:
        return len(self._ring)

    def samples(self) -> List[Tuple[int, float]]:
        """Retained samples in canonical ``(cycle, value)`` order."""
        return sorted(self._ring)

    @property
    def last(self) -> float:
        """Value of the highest-cycle sample, or 0.0 when empty."""
        return self.samples()[-1][1] if self._ring else 0.0

    @property
    def min(self) -> float:
        return min(v for _, v in self._ring) if self._ring else 0.0

    @property
    def max(self) -> float:
        return max(v for _, v in self._ring) if self._ring else 0.0

    def reset(self) -> None:
        self._ring.clear()
        self.dropped = 0

    # -- snapshot / merge --------------------------------------------------

    def state(self) -> Dict[str, Any]:
        return {
            "samples": [[c, v] for c, v in self.samples()],
            "dropped": self.dropped,
        }

    def merge_state(self, state: Mapping[str, Any]) -> None:
        combined = self.samples() + [
            (int(c), float(v)) for c, v in state.get("samples", ())
        ]
        combined.sort()
        excess = len(combined) - self.capacity
        if excess > 0:
            # evict oldest-cycle samples first, mirroring ring eviction
            self.dropped += excess
            combined = combined[excess:]
        self._ring = deque(combined, maxlen=self.capacity)
        self.dropped += state.get("dropped", 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TimeSeries({self.name!r}, n={len(self._ring)})"


class Heatmap:
    """A named, sparse, **additive** ``(row, cycle) → value`` matrix.

    Rows are spatial (a segment index, a router coordinate, a lifecycle
    state); columns are sample cycles.  ``add`` *accumulates* into the
    cell, so per-trial fabric snapshots sum across trials — and because
    addition commutes, merging worker snapshots in any order yields the
    matrix a serial run would.  The cell count is capped: adds that
    would create a cell beyond ``max_cells`` are tallied in
    :attr:`dropped` instead of growing memory.
    """

    __slots__ = ("name", "max_cells", "_cells", "dropped")

    def __init__(self, name: str, max_cells: int = DEFAULT_HEATMAP_CELLS) -> None:
        if max_cells < 1:
            raise ValueError("heatmap needs room for at least one cell")
        self.name = name
        self.max_cells = max_cells
        self._cells: Dict[Tuple[str, int], float] = {}
        self.dropped = 0

    def add(self, row: Union[str, int], cycle: int, value: float) -> None:
        key = (str(row), int(cycle))
        if key in self._cells:
            self._cells[key] += float(value)
        elif len(self._cells) < self.max_cells:
            self._cells[key] = float(value)
        else:
            self.dropped += 1

    def __len__(self) -> int:
        return len(self._cells)

    def rows(self) -> List[str]:
        """Distinct row labels in natural (numeric-aware) order."""
        return sorted({r for r, _ in self._cells}, key=natural_key)

    def cycles(self) -> List[int]:
        return sorted({c for _, c in self._cells})

    def cell(self, row: Union[str, int], cycle: int) -> float:
        return self._cells.get((str(row), int(cycle)), 0.0)

    def row_total(self, row: Union[str, int]) -> float:
        return sum(v for (r, _), v in self._cells.items() if r == str(row))

    def matrix(self) -> Tuple[List[str], List[int], List[List[float]]]:
        """Dense ``(row_labels, cycles, values)`` view for rendering."""
        rows, cycles = self.rows(), self.cycles()
        grid = [[self._cells.get((r, c), 0.0) for c in cycles] for r in rows]
        return rows, cycles, grid

    def reset(self) -> None:
        self._cells.clear()
        self.dropped = 0

    # -- snapshot / merge --------------------------------------------------

    def state(self) -> Dict[str, Any]:
        cells = sorted(
            self._cells.items(), key=lambda kv: (natural_key(kv[0][0]), kv[0][1])
        )
        return {
            "cells": [[r, c, v] for (r, c), v in cells],
            "dropped": self.dropped,
        }

    def merge_state(self, state: Mapping[str, Any]) -> None:
        for row, cycle, value in state.get("cells", ()):
            self.add(row, cycle, value)
        self.dropped += state.get("dropped", 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Heatmap({self.name!r}, cells={len(self._cells)})"


#: Probe signature: no-arg callable returning either a scalar (for a
#: series) or a row→value mapping / sequence (for a heatmap).
Probe = Callable[[], Any]


class Sampler:
    """The cycle-driven pump feeding series and heatmaps from probes.

    Attach probes to live fabric objects, then call :meth:`tick` once
    per simulated cycle; every ``stride`` cycles each probe is read and
    its value(s) written at the current cycle.  A sampler is cheap to
    build per trial and carries its own relative cycle clock starting at
    zero, so per-trial matrices line up regardless of which worker (or
    how many trials before) ran them.
    """

    __slots__ = ("stride", "cycle", "_series", "_heatmaps", "samples_taken")

    def __init__(self, stride: int = 1) -> None:
        if stride < 1:
            raise ValueError("stride must be at least one cycle")
        self.stride = stride
        self.cycle = 0
        self.samples_taken = 0
        self._series: List[Tuple[TimeSeries, Probe]] = []
        self._heatmaps: List[Tuple[Heatmap, Probe]] = []

    def attach_series(self, series: TimeSeries, probe: Probe) -> None:
        self._series.append((series, probe))

    def attach_heatmap(self, heatmap: Heatmap, probe: Probe) -> None:
        self._heatmaps.append((heatmap, probe))

    def tick(self, cycles: int = 1) -> None:
        """Advance the local clock; sample at stride boundaries.

        With ``cycles > 1`` the sampler still takes at most one sample
        (at the new cycle) — stride alignment is checked against the
        post-advance clock.
        """
        self.cycle += cycles
        if self.cycle % self.stride == 0:
            self.sample()

    def tick_to(self, cycle: int) -> None:
        """Jump the local clock to ``cycle``; sample if a stride
        boundary was crossed.

        The service's virtual clocks advance in op-cost jumps that
        rarely land on exact stride multiples, so boundary *crossing*
        (not alignment) is the sampling condition — the reading is
        taken once, at the new cycle.  Jumping backwards moves the
        clock without sampling.
        """
        crossed = cycle // self.stride > self.cycle // self.stride
        self.cycle = cycle
        if crossed:
            self.sample()

    def sample(self) -> None:
        """Read every probe at the current cycle, unconditionally."""
        for series, probe in self._series:
            series.record(self.cycle, float(probe()))
        for heatmap, probe in self._heatmaps:
            reading = probe()
            if isinstance(reading, Mapping):
                for row, value in reading.items():
                    heatmap.add(row, self.cycle, value)
            else:
                for row, value in enumerate(reading):
                    heatmap.add(row, self.cycle, value)
        self.samples_taken += 1


class Observer:
    """Process-wide observation switch and sampling configuration.

    Mirrors :class:`~repro.telemetry.tracing.Tracer`'s guard discipline:
    the fabric hot paths read :attr:`enabled` (one attribute access) and
    do nothing else while it is ``False``.  ``stride = 0`` means *auto*:
    each sampling site picks a stride that bounds its own sample count
    (e.g. the Figure 3 trial uses ``max(1, n_objects // 64)``).
    """

    __slots__ = ("enabled", "stride")

    def __init__(self) -> None:
        self.enabled = False
        self.stride = 0

    def reset(self) -> None:
        """Back to the freshly-constructed state (disabled, auto stride).

        Part of :meth:`repro.telemetry.Registry.reset`: the guard is
        process-wide mutable state, so a run that enabled observation
        must not leak it into the next run in the same process."""
        self.enabled = False
        self.stride = 0

    def effective_stride(self, auto: int = 1) -> int:
        """The stride a site should sample at: the configured one, or
        the site's ``auto`` choice when stride is 0 (auto)."""
        return self.stride if self.stride > 0 else max(1, auto)


_NATURAL_SPLIT = re.compile(r"(\d+)")

#: Characters that are structural inside a ``[k=v,...]`` label and must
#: be backslash-escaped when they appear in a value.
_LABEL_SPECIALS = re.compile(r"([\\=,\[\]])")


def escape_label_value(text: str) -> str:
    """Backslash-escape ``\\ = , [ ]`` so a value can carry them without
    breaking the ``[k=v,...]`` syntax (inverse of
    :func:`repro.telemetry.exposition.split_labels`)."""
    return _LABEL_SPECIALS.sub(r"\\\1", text)


def natural_key(label: str) -> Tuple[Any, ...]:
    """Sort key treating digit runs numerically: ``"r10" > "r2"``."""
    parts = _NATURAL_SPLIT.split(str(label))
    return tuple(int(p) if p.isdigit() else p for p in parts)


def point_label(**attrs: Any) -> str:
    """Canonical ``[k=v,...]`` suffix naming one sweep point's
    instruments, e.g. ``point_label(n=16, loc=0.5) -> "[n=16,loc=0.5]"``.
    Floats render with ``%g`` so ``0.50`` and ``0.5`` name the same
    instrument."""
    parts = []
    for key, value in attrs.items():
        rendered = f"{value:g}" if isinstance(value, float) else str(value)
        # keys are keyword-argument identifiers, so only values can
        # carry structural characters (=, commas, brackets)
        parts.append(f"{key}={escape_label_value(rendered)}")
    return "[" + ",".join(parts) + "]"
