"""Counters and timers — the primitive telemetry instruments.

A :class:`Counter` is a monotonically increasing event tally (grants,
blocks, rollbacks, flit movements); a :class:`Timer` accumulates wall
time over repeated invocations of one phase (reserve, commit, a Figure 3
trial).  Both are deliberately tiny — a handful of attribute updates —
so they can sit on the simulator's hottest paths without distorting the
measurements they exist to provide.

:class:`Scope` is the context manager that feeds a :class:`Timer`::

    with Scope(registry.timer("fig3.trial")):
        run_trial(...)
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

__all__ = ["Counter", "Timer", "Histogram", "Scope"]


class Counter:
    """A named, monotonically increasing tally."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only count up")
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, value={self.value})"


class Timer:
    """Accumulated wall time and call count for one named phase."""

    __slots__ = ("name", "total_s", "calls")

    def __init__(self, name: str) -> None:
        self.name = name
        self.total_s = 0.0
        self.calls = 0

    def add(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("elapsed time cannot be negative")
        self.total_s += seconds
        self.calls += 1

    @property
    def mean_s(self) -> float:
        return self.total_s / self.calls if self.calls else 0.0

    def reset(self) -> None:
        self.total_s = 0.0
        self.calls = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timer({self.name!r}, total_s={self.total_s:.6f}, calls={self.calls})"


class Histogram:
    """A named distribution of observations with percentile queries.

    Where a :class:`Timer` answers "how much time, over how many calls",
    a histogram answers "how is it *distributed*" — the p50/p95/p99
    phase latencies the trace analysis reports.  Observations are kept
    raw (a list of floats), so merged worker histograms yield exactly
    the percentiles a serial run would: percentile computation sorts at
    query time and is therefore independent of merge order.
    """

    __slots__ = ("name", "values")

    def __init__(self, name: str, values: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.values: List[float] = list(values) if values else []

    def observe(self, value: float) -> None:
        self.values.append(value)

    def extend(self, values: Sequence[float]) -> None:
        self.values.extend(values)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.total / len(self.values) if self.values else 0.0

    @property
    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    @property
    def min(self) -> float:
        return min(self.values) if self.values else 0.0

    @property
    def stddev(self) -> float:
        """Population standard deviation (two-pass over the raw values,
        so merged worker histograms agree with a serial run exactly)."""
        n = len(self.values)
        if n < 2:
            return 0.0
        mean = self.total / n
        return (sum((v - mean) ** 2 for v in self.values) / n) ** 0.5

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``0 <= p <= 100``."""
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        if p == 0:
            return ordered[0]
        rank = max(1, -(-len(ordered) * p // 100))  # ceil without floats
        return ordered[int(rank) - 1]

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def reset(self) -> None:
        self.values.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, count={self.count}, p50={self.p50:.4g})"


class Scope:
    """Context manager timing one block into a :class:`Timer`.

    The elapsed time is recorded whether or not the block raises, so
    failed phases (an aborted scaling worm, a blocked chaining) still
    show up in the per-phase totals.
    """

    __slots__ = ("timer", "_start")

    def __init__(self, timer: Timer) -> None:
        self.timer = timer
        self._start: Optional[float] = None

    def __enter__(self) -> "Scope":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self._start is not None
        self.timer.add(time.perf_counter() - self._start)
        self._start = None
