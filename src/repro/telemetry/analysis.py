"""Trace-driven protocol analysis: critical paths, latencies, hotspots.

Consumes span trees — either live from a
:class:`~repro.telemetry.tracing.Tracer` or reloaded from an exported
Chrome-trace JSON file — and answers the questions the aggregate
counters cannot:

* :func:`critical_path` — which chain of nested phases bounds a
  reconfiguration's latency (the path to shorten first);
* :func:`phase_histograms` — the p50/p95/p99 cycle latency of every
  span kind, as :class:`~repro.telemetry.metrics.Histogram` instances;
* :func:`blocking_hotspots` — where the protocol blocked, rolled back,
  or hit a reservation conflict, keyed by the segment/switch attributes
  the instrumentation sites attach.

``python -m repro trace-report out.json`` prints all three.
"""

from __future__ import annotations

import json
from collections import Counter as TallyCounter
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.telemetry.metrics import Histogram
from repro.telemetry.tracing import Span, SpanEvent, Tracer

__all__ = [
    "load_chrome_trace",
    "critical_path",
    "phase_histograms",
    "blocking_hotspots",
    "format_trace_report",
]

#: Event/span name fragments that count as "the protocol got stuck here".
_BLOCKING_MARKERS = ("block", "conflict", "rollback", "abort", "evict")


def load_chrome_trace(path: str) -> List[Span]:
    """Reload spans from a file written by
    :func:`repro.telemetry.export.write_chrome_trace`.

    The exporter stores span identity (``span_id``/``parent_id``), kind,
    status and rebased cycle bounds in each slice's ``args``, so the
    causal tree round-trips losslessly (wall-clock times do not — they
    are deliberately left out of deterministic exports).
    """
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    events = doc.get("traceEvents") if isinstance(doc, dict) else doc
    if not isinstance(events, list):
        raise ValueError(
            f"{path}: not a Chrome trace (no traceEvents list)"
        )
    spans: Dict[int, Span] = {}
    instants: List[Dict[str, Any]] = []
    for entry in events:
        ph = entry.get("ph")
        if ph == "X":
            args = dict(entry.get("args", {}))
            span_id = args.pop("span_id")
            parent_id = args.pop("parent_id", None)
            kind = args.pop("kind", "span")
            status = args.pop("status", "ok")
            cycle_start = args.pop("cycle_start", int(entry.get("ts", 0)))
            cycle_end = args.pop("cycle_end", cycle_start)
            args.pop("wall_us", None)
            span = Span(
                span_id, parent_id, entry["name"], kind, args, cycle_start, 0.0
            )
            span.cycle_end = cycle_end
            span.status = status
            spans[span_id] = span
        elif ph == "i":
            instants.append(entry)
    for entry in instants:
        args = dict(entry.get("args", {}))
        owner = args.pop("span_id", None)
        span = spans.get(owner)
        if span is not None:
            span.events.append(
                SpanEvent(entry["name"], int(entry.get("ts", 0)), 0.0, args)
            )
    return sorted(
        spans.values(), key=lambda s: (s.cycle_start, s.cycle_end, s.span_id)
    )


def _as_spans(source: Union[Tracer, Iterable[Span]]) -> List[Span]:
    if isinstance(source, Tracer):
        return source.sorted_spans()
    return list(source)


def _children_map(spans: List[Span]) -> Dict[Optional[int], List[Span]]:
    by_id = {s.span_id for s in spans}
    children: Dict[Optional[int], List[Span]] = {}
    for s in spans:
        parent = s.parent_id if s.parent_id in by_id else None
        children.setdefault(parent, []).append(s)
    for kids in children.values():
        kids.sort(key=lambda s: (s.cycle_start, s.cycle_end, s.span_id))
    return children


def critical_path(
    source: Union[Tracer, Iterable[Span]],
    root_name: Optional[str] = None,
) -> List[Tuple[Span, int]]:
    """The chain of nested spans bounding the slowest operation.

    Picks the longest root span (optionally restricted to roots named
    ``root_name``) and repeatedly descends into the longest child.
    Returns ``[(span, self_cycles), ...]`` from root to leaf, where
    ``self_cycles`` is the span's duration not covered by its own
    children — the part only that phase can account for.
    """
    spans = _as_spans(source)
    if not spans:
        return []
    children = _children_map(spans)
    roots = children.get(None, [])
    if root_name is not None:
        named = [r for r in roots if r.name == root_name]
        roots = named or roots
    if not roots:
        return []
    pick = lambda cands: max(  # noqa: E731 - tiny deterministic argmax
        cands, key=lambda s: (s.cycles, -s.cycle_start, -s.span_id)
    )
    path: List[Tuple[Span, int]] = []
    node: Optional[Span] = pick(roots)
    while node is not None:
        kids = children.get(node.span_id, [])
        covered = sum(k.cycles for k in kids)
        path.append((node, max(0, node.cycles - covered)))
        node = pick(kids) if kids else None
    return path


def phase_histograms(
    source: Union[Tracer, Iterable[Span]]
) -> Dict[str, Histogram]:
    """Per-span-name cycle-latency distributions, name-sorted."""
    histograms: Dict[str, Histogram] = {}
    for span in _as_spans(source):
        hist = histograms.get(span.name)
        if hist is None:
            hist = histograms[span.name] = Histogram(span.name)
        hist.observe(span.cycles)
    return dict(sorted(histograms.items()))


def _is_blocking(name: str) -> bool:
    lowered = name.lower()
    return any(marker in lowered for marker in _BLOCKING_MARKERS)


def _hotspot_key(name: str, attrs: Dict[str, Any]) -> str:
    where = ", ".join(
        f"{k}={attrs[k]}" for k in sorted(attrs) if k not in ("reason",)
    )
    return f"{name} @ {where}" if where else name


def blocking_hotspots(
    source: Union[Tracer, Iterable[Span]]
) -> List[Tuple[str, int]]:
    """Where the protocol got stuck, most frequent first.

    Tallies every span event whose name carries a blocking marker
    (``block``/``conflict``/``rollback``/``abort``/``evict``) and every
    error-status span, keyed by name plus the site attributes (segment,
    switch, span bounds) the instrumentation attached.
    """
    tally: TallyCounter = TallyCounter()
    for span in _as_spans(source):
        if span.status == "error" or _is_blocking(span.name):
            tally[_hotspot_key(span.name, span.attrs)] += 1
        for ev in span.events:
            if _is_blocking(ev.name):
                tally[_hotspot_key(ev.name, ev.attrs)] += 1
    return sorted(tally.items(), key=lambda kv: (-kv[1], kv[0]))


def format_trace_report(source: Union[Tracer, Iterable[Span]]) -> str:
    """The full ``trace-report``: critical path, phase latency
    percentiles, blocking hotspots — as fixed-width tables."""
    from repro.analysis.reporting import format_table

    spans = _as_spans(source)
    sections: List[str] = []
    path = critical_path(spans)
    if path:
        total = path[0][0].cycles or 1
        rows = [
            (
                "  " * depth + span.name,
                span.cycles,
                self_cycles,
                f"{100.0 * span.cycles / total:.1f}%",
            )
            for depth, (span, self_cycles) in enumerate(path)
        ]
        sections.append(
            format_table(
                ["Phase", "Cycles", "Self", "Of root"],
                rows,
                title=f"Critical path ({len(spans)} spans)",
            )
        )
    hists = phase_histograms(spans)
    if hists:
        rows = [
            (name, h.count, h.p50, h.p95, h.p99, h.max)
            for name, h in hists.items()
        ]
        sections.append(
            format_table(
                ["Span", "Count", "p50", "p95", "p99", "Max"],
                rows,
                title="Phase latency [cycles]",
            )
        )
    hotspots = blocking_hotspots(spans)
    if hotspots:
        sections.append(
            format_table(
                ["Hotspot", "Count"],
                hotspots,
                title="Blocking hotspots",
            )
        )
    else:
        sections.append("Blocking hotspots\n(none — no blocks, rollbacks, "
                        "conflicts, or aborts recorded)")
    if not spans:
        return "(empty trace: no spans recorded)"
    return "\n\n".join(sections)
