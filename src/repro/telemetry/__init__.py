"""repro.telemetry — counters, timers, and event traces for the simulators.

The interconnect papers this reproduction leans on (Epiphany-V, the
Distributed Network Processor) evaluate their networks with instrumented
simulation: every grant, block and rollback is counted, every phase
timed.  This package gives :mod:`repro` the same substrate.

Two usage styles:

* **Module-level** (the hot paths): ``telemetry.counter("csd.connect.grants").inc()``
  talks to one process-wide default :class:`Registry`.  This is what the
  CSD networks, the NoC, and the scaling controller use, and what
  ``python -m repro fig3 --stats`` reports.
* **Instance-level**: build your own :class:`Registry` for an isolated
  measurement and pass it around explicitly.

Snapshots are plain picklable dicts; a parallel sweep's worker processes
return ``snapshot()`` next to their results and the parent folds them in
with :func:`merge` — so ``--workers N`` loses no observability.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.telemetry.events import Event, EventTrace
from repro.telemetry.metrics import Counter, Scope, Timer
from repro.telemetry.registry import Registry
from repro.telemetry.sinks import JSONSink, Sink, TextSink

__all__ = [
    "Counter",
    "Timer",
    "Scope",
    "Event",
    "EventTrace",
    "Registry",
    "Sink",
    "TextSink",
    "JSONSink",
    "get_registry",
    "counter",
    "timer",
    "event",
    "scope",
    "snapshot",
    "merge",
    "reset",
    "summary",
]

#: The process-wide default registry the library's hot paths write to.
_default = Registry("repro")


def get_registry() -> Registry:
    """The process-wide default registry."""
    return _default


def counter(name: str) -> Counter:
    return _default.counter(name)


def timer(name: str) -> Timer:
    return _default.timer(name)


def event(name: str, **fields: Any) -> None:
    _default.event(name, **fields)


def scope(name: str) -> Scope:
    """``with telemetry.scope("phase"):`` — time a block into the default
    registry's timer of that name."""
    return Scope(_default.timer(name))


def snapshot() -> Dict[str, Any]:
    return _default.snapshot()


def merge(snap: Dict[str, Any]) -> None:
    _default.merge(snap)


def reset() -> None:
    _default.reset()


def summary() -> str:
    return _default.summary()
