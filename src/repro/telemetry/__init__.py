"""repro.telemetry — counters, timers, histograms, events, and causal
span traces for the simulators.

The interconnect papers this reproduction leans on (Epiphany-V, the
Distributed Network Processor) evaluate their networks with instrumented
simulation: every grant, block and rollback is counted, every phase
timed.  This package gives :mod:`repro` the same substrate, plus the
causal layer — :class:`Tracer`/:class:`Span` trees that reconstruct a
whole reconfiguration (request → grant → ack, reserve → commit) in
order, exportable to Perfetto via :mod:`repro.telemetry.export` and
analysed by :mod:`repro.telemetry.analysis`.

Two usage styles:

* **Module-level** (the hot paths): ``telemetry.counter("csd.connect.grants").inc()``
  talks to one process-wide default :class:`Registry`.  This is what the
  CSD networks, the NoC, and the scaling controller use, and what
  ``python -m repro fig3 --stats`` reports.
* **Instance-level**: build your own :class:`Registry` for an isolated
  measurement and pass it around explicitly.

Snapshots are plain picklable dicts; a parallel sweep's worker processes
return ``snapshot()`` next to their results and the parent folds them in
with :func:`merge` — so ``--workers N`` loses no observability.  Span
tracing is **off by default** (:func:`enable_tracing` turns it on) and
costs one attribute check per protocol step when disabled.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.telemetry.events import Event, EventTrace
from repro.telemetry.metrics import Counter, Histogram, Scope, Timer
from repro.telemetry.observe import (
    Gauge,
    Heatmap,
    Observer,
    Sampler,
    TimeSeries,
)
from repro.telemetry.profile import NULL_STAGE, Profiler, ProfileStage
from repro.telemetry.registry import Registry
from repro.telemetry.sinks import JSONSink, Sink, TextSink
from repro.telemetry.tracing import Span, SpanEvent, Tracer

__all__ = [
    "Counter",
    "Timer",
    "Histogram",
    "Scope",
    "Gauge",
    "TimeSeries",
    "Heatmap",
    "Sampler",
    "Observer",
    "Event",
    "EventTrace",
    "Registry",
    "Sink",
    "TextSink",
    "JSONSink",
    "Tracer",
    "Span",
    "SpanEvent",
    "get_registry",
    "counter",
    "timer",
    "histogram",
    "gauge",
    "time_series",
    "heatmap",
    "event",
    "scope",
    "tracer",
    "span",
    "instant",
    "enable_tracing",
    "observer",
    "enable_observation",
    "Profiler",
    "ProfileStage",
    "profiler",
    "enable_profiling",
    "profile_stage",
    "snapshot",
    "merge",
    "reset",
    "summary",
]

#: The process-wide default registry the library's hot paths write to.
_default = Registry("repro")


def get_registry() -> Registry:
    """The process-wide default registry."""
    return _default


def counter(name: str) -> Counter:
    return _default.counter(name)


def timer(name: str) -> Timer:
    return _default.timer(name)


def histogram(name: str) -> Histogram:
    return _default.histogram(name)


def gauge(name: str) -> Gauge:
    return _default.gauge(name)


def time_series(name: str) -> TimeSeries:
    return _default.time_series(name)


def heatmap(name: str) -> Heatmap:
    return _default.heatmap(name)


def event(name: str, **fields: Any) -> None:
    _default.event(name, **fields)


def scope(name: str) -> Scope:
    """``with telemetry.scope("phase"):`` — time a block into the default
    registry's timer of that name."""
    return Scope(_default.timer(name))


def tracer() -> Tracer:
    """The default registry's span tracer (disabled until
    :func:`enable_tracing`)."""
    return _default.tracer


def span(name: str, **attrs: Any):
    """``with telemetry.span("csd.connect", source=0, sink=5):`` — open a
    span on the default tracer (a no-op while tracing is disabled)."""
    return _default.tracer.span(name, **attrs)


def instant(name: str, **attrs: Any) -> None:
    """Record an instant event on the default tracer's current span."""
    _default.tracer.instant(name, **attrs)


def enable_tracing(on: bool = True) -> Tracer:
    """Switch causal span tracing on (or back off); returns the tracer."""
    _default.tracer.enabled = on
    return _default.tracer


def observer() -> Observer:
    """The default registry's observation switch (disabled until
    :func:`enable_observation`)."""
    return _default.observer


def enable_observation(on: bool = True, stride: int = 0) -> Observer:
    """Switch per-cycle fabric observation on (or back off).

    ``stride`` fixes the sampling stride; 0 (the default) lets each
    sampling site pick an automatic stride that bounds its own sample
    count.  Returns the observer.
    """
    _default.observer.enabled = on
    _default.observer.stride = stride
    return _default.observer


def profiler() -> Profiler:
    """The default registry's self-profiling switch (disabled until
    :func:`enable_profiling`)."""
    return _default.profiler


def enable_profiling(on: bool = True) -> Profiler:
    """Switch fast-path self-profiling on (or back off); returns the
    profiler."""
    _default.profiler.enabled = on
    return _default.profiler


def profile_stage(name: str):
    """``with telemetry.profile_stage("engine.replay"):`` — time a fast-path
    stage into the ``profile.<name>.seconds`` histogram.

    Returns a shared no-op context manager while profiling is disabled, so
    guarded sites cost one attribute read plus one call.
    """
    if not _default.profiler.enabled:
        return NULL_STAGE
    return ProfileStage(_default.histogram(f"profile.{name}.seconds"))


def snapshot() -> Dict[str, Any]:
    return _default.snapshot()


def merge(snap: Dict[str, Any]) -> None:
    _default.merge(snap)


def reset() -> None:
    _default.reset()


def summary() -> str:
    return _default.summary()
