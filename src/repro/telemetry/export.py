"""Chrome-trace-event / Perfetto export for span traces.

Converts a :class:`~repro.telemetry.tracing.Tracer` buffer into the
Chrome trace-event JSON format (the ``{"traceEvents": [...]}`` flavour)
that https://ui.perfetto.dev and ``chrome://tracing`` load directly:
every span becomes a complete (``"ph": "X"``) slice, every span event
an instant (``"ph": "i"``), and every root span tree gets its own
thread track so concurrent reconfigurations render side by side.

The exported timebase is the **simulation cycle clock** (1 cycle = 1 µs
of trace time), not wall clock, and the export is **canonicalised**:
root trees are ordered by (name, attributes), cycles are rebased so
each tree starts at zero, and span ids are renumbered in tree order.
Two runs of the same seeded sweep therefore export byte-identical
files — including a ``--workers N`` run whose worker traces were merged
back, which is what makes trace files diffable artifacts.  Wall-clock
durations can be added per span with ``include_wall=True`` (off by
default precisely because they would break that reproducibility).
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, Iterable, List, Tuple, Union

from repro.telemetry.tracing import Span, Tracer

__all__ = ["select_trees", "to_chrome_trace", "write_chrome_trace"]

#: One simulation cycle maps to this many microseconds of trace time.
CYCLE_US = 1.0

_PID = 1
_PROCESS_NAME = "repro-sim"


def _attr_key(attrs: Dict[str, Any]) -> str:
    return ";".join(f"{k}={attrs[k]!r}" for k in sorted(attrs))


def _canonical_trees(
    spans: List[Span],
) -> List[Tuple[Span, Dict[int, List[Span]]]]:
    """Group spans into root trees, deterministically ordered."""
    by_id = {s.span_id: s for s in spans}
    children: Dict[int, List[Span]] = {}
    roots: List[Span] = []
    for s in spans:
        if s.parent_id is not None and s.parent_id in by_id:
            children.setdefault(s.parent_id, []).append(s)
        else:
            roots.append(s)
    for kids in children.values():
        kids.sort(key=lambda s: (s.cycle_start, s.cycle_end, s.span_id))
    roots.sort(
        key=lambda s: (s.name, _attr_key(s.attrs), s.cycle_start, s.span_id)
    )
    return [(root, children) for root in roots]


def _tree_spans(root: Span, children: Dict[int, List[Span]]) -> List[Span]:
    """DFS order of one root tree."""
    out: List[Span] = []
    stack = [root]
    while stack:
        span = stack.pop()
        out.append(span)
        stack.extend(reversed(children.get(span.span_id, ())))
    return out


def select_trees(
    source: Union[Tracer, Iterable[Span]], prefix: str
) -> List[Span]:
    """Spans of the root trees whose root name starts with ``prefix``.

    This is how a plane carves its own spans out of the shared tracer
    before export: ``repro service-load --trace`` keeps only the
    ``service.``-rooted trees, because spans recorded by the layers
    below (e.g. ``wormhole.configure``) carry a global ``op_id`` whose
    value depends on cross-tenant event-loop interleaving and would
    break the trace's transport byte-identity.
    """
    spans = list(source.spans if isinstance(source, Tracer) else source)
    by_id = {s.span_id: s for s in spans}
    root_of: Dict[int, int] = {}

    def root_id(span: Span) -> int:
        chain = []
        while span.parent_id is not None and span.parent_id in by_id:
            if span.span_id in root_of:
                break
            chain.append(span.span_id)
            span = by_id[span.parent_id]
        top = root_of.get(span.span_id, span.span_id)
        for span_id in chain:
            root_of[span_id] = top
        return top

    return [
        s for s in spans if by_id[root_id(s)].name.startswith(prefix)
    ]


def to_chrome_trace(
    source: Union[Tracer, Iterable[Span]],
    include_wall: bool = False,
) -> Dict[str, Any]:
    """Build the Chrome trace-event document for a tracer (or spans)."""
    if isinstance(source, Tracer):
        spans = source.sorted_spans()
    else:
        spans = sorted(
            source, key=lambda s: (s.cycle_start, s.cycle_end, s.span_id)
        )
    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": _PROCESS_NAME},
        }
    ]
    next_id = 0
    for tid0, (root, children) in enumerate(_canonical_trees(spans)):
        tid = tid0 + 1
        tree = _tree_spans(root, children)
        base = min(s.cycle_start for s in tree)
        # parents must cover their children for the slices to nest; the
        # NoC and CSD cycle domains are stitched here rather than at the
        # (hot) recording sites
        bounds: Dict[int, Tuple[int, int]] = {}
        for span in reversed(tree):  # post-order-ish: children first
            lo, hi = span.cycle_start, max(span.cycle_end, span.cycle_start)
            for kid in children.get(span.span_id, ()):
                klo, khi = bounds[kid.span_id]
                lo, hi = min(lo, klo), max(hi, khi)
            bounds[span.span_id] = (lo, hi)
        new_ids: Dict[int, int] = {}
        for span in tree:
            new_ids[span.span_id] = next_id
            next_id += 1
        track_name = root.name
        if root.attrs:
            track_name += " " + _attr_key(root.attrs)
        events.append(
            {
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": track_name},
            }
        )
        for span in tree:
            lo, hi = bounds[span.span_id]
            args: Dict[str, Any] = {
                "span_id": new_ids[span.span_id],
                "parent_id": (
                    new_ids[span.parent_id]
                    if span.parent_id in new_ids
                    else None
                ),
                "kind": span.kind,
                "status": span.status,
                "cycle_start": lo - base,
                "cycle_end": hi - base,
            }
            if include_wall:
                args["wall_us"] = round(span.wall_s * 1e6, 3)
            for key, value in span.attrs.items():
                args.setdefault(key, _jsonable(value))
            events.append(
                {
                    "ph": "X",
                    "pid": _PID,
                    "tid": tid,
                    "name": span.name,
                    "cat": span.kind,
                    "ts": (lo - base) * CYCLE_US,
                    "dur": (hi - lo) * CYCLE_US,
                    "args": args,
                }
            )
            for ev in span.events:
                at = min(max(ev.cycle, lo), hi) - base
                ev_args: Dict[str, Any] = {"span_id": new_ids[span.span_id]}
                for key, value in ev.attrs.items():
                    ev_args.setdefault(key, _jsonable(value))
                events.append(
                    {
                        "ph": "i",
                        "pid": _PID,
                        "tid": tid,
                        "name": ev.name,
                        "s": "t",
                        "ts": at * CYCLE_US,
                        "args": ev_args,
                    }
                )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    source: Union[Tracer, Iterable[Span]],
    destination: Union[str, IO[str]],
    include_wall: bool = False,
) -> int:
    """Write the Perfetto-loadable JSON file; returns the span count."""
    doc = to_chrome_trace(source, include_wall=include_wall)
    payload = json.dumps(doc, indent=1, sort_keys=True, default=str)
    if hasattr(destination, "write"):
        destination.write(payload + "\n")  # type: ignore[union-attr]
    else:
        with open(destination, "w", encoding="utf-8") as fh:  # type: ignore[arg-type]
            fh.write(payload + "\n")
    return sum(1 for e in doc["traceEvents"] if e["ph"] == "X")


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (tuple, list)):
        return [_jsonable(v) for v in value]
    return str(value)
