"""Self-contained HTML dashboard for an observation document.

``render_dashboard`` turns one observation document (see
:mod:`repro.telemetry.exposition`) into a single HTML file with **no
external dependencies**: styles are inline, charts are inline SVG, and
hover detail uses native ``<title>`` tooltips — the artifact opens from
a CI tarball or an ``file://`` URL identically.

Rendering is byte-deterministic: everything iterates the document's
canonically-sorted structures, numbers render through the same
``repr``-based formatter the other exporters use, and no timestamps or
environment strings are embedded.  Visual conventions: a single
sequential blue ramp for heatmap magnitude, one series per line panel
(the panel title names it, so no legend is needed), and a ``<details>``
table view per chart for non-visual access.
"""

from __future__ import annotations

import html
import math
from typing import Any, Dict, List, Tuple

from repro.telemetry.observe import natural_key

__all__ = ["render_dashboard", "SEQUENTIAL_RAMP"]

_RAMP_LO = (0xCD, 0xE2, 0xFB)
_RAMP_HI = (0x0D, 0x36, 0x6B)

#: 13-step light-to-dark sequential blue ramp for heatmap magnitude.
SEQUENTIAL_RAMP: Tuple[str, ...] = tuple(
    "#%02x%02x%02x"
    % tuple(
        round(lo + (hi - lo) * step / 12)
        for lo, hi in zip(_RAMP_LO, _RAMP_HI)
    )
    for step in range(13)
)

_LINE_COLOR = "#2a78d6"
_GRID_COLOR = "#eceae6"
_SURFACE = "#fcfcfb"
_TABLE_CAP = 2000

#: Heatmaps taller than this band adjacent rows together before
#: rendering (a mega-scale sweep emits one row per CSD segment — 4095
#: ``<rect>`` rows would dwarf the rest of the page combined).
_MAX_HEATMAP_ROWS = 160

_CSS = """
:root { color-scheme: light; }
body { font: 14px/1.45 system-ui, sans-serif; margin: 24px;
       background: %(surface)s; color: #1f2430; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 8px; border-bottom: 1px solid #e3e3df;
     padding-bottom: 4px; }
h3 { font-size: 13px; margin: 16px 0 4px; font-weight: 600; }
.sub { color: #6b7280; font-size: 12px; margin-bottom: 20px; }
.tiles { display: flex; flex-wrap: wrap; gap: 10px; }
.tile { border: 1px solid #e3e3df; border-radius: 6px; padding: 8px 14px;
        background: #ffffff; min-width: 140px; }
.tile .v { font-size: 20px; font-weight: 600; }
.tile .n { color: #6b7280; font-size: 11px; word-break: break-all; }
.warn { background: #fdf3d7; border: 1px solid #e5c56a; border-radius: 6px;
        padding: 8px 12px; margin: 0 0 16px; font-size: 13px; }
svg { display: block; background: #ffffff; border: 1px solid #e3e3df;
      border-radius: 6px; }
.axis { fill: #6b7280; font-size: 10px; }
.rowlab { fill: #1f2430; font-size: 10px; }
details { margin: 6px 0 0; }
summary { cursor: pointer; color: #6b7280; font-size: 12px; }
table { border-collapse: collapse; font-size: 12px; margin-top: 6px; }
td, th { border: 1px solid #e3e3df; padding: 2px 8px; text-align: right; }
th { background: #f4f4f1; }
td:first-child, th:first-child { text-align: left; }
""" % {"surface": _SURFACE}


def _num(value: float) -> str:
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _esc(text: Any) -> str:
    return html.escape(str(text), quote=True)


def _nice_ticks(lo: float, hi: float, target: int = 4) -> List[float]:
    """Deterministic intermediate axis ticks: multiples of a
    {1, 2, 5} x 10^k step chosen to cut ``hi - lo`` into about
    ``target`` intervals, strictly inside the open interval — the
    endpoint labels are drawn separately.  Pure float arithmetic on the
    document's values, so two renders of the same document agree
    byte-for-byte on every tick."""
    span = hi - lo
    if span <= 0 or target < 1:
        return []
    raw = span / target
    mag = 10.0 ** math.floor(math.log10(raw))
    step = mag
    for mult in (5.0, 2.0):
        if mag * mult <= raw:
            step = mag * mult
            break
    ticks: List[float] = []
    index = math.floor(lo / step) + 1
    while True:
        value = round(index * step, 12)
        if value >= hi:
            break
        if value > lo:
            ticks.append(value)
        index += 1
    return ticks


def _ramp_color(value: float, lo: float, hi: float) -> str:
    if hi <= lo:
        return SEQUENTIAL_RAMP[len(SEQUENTIAL_RAMP) // 2]
    frac = (value - lo) / (hi - lo)
    step = min(len(SEQUENTIAL_RAMP) - 1, max(0, int(frac * 12 + 0.5)))
    return SEQUENTIAL_RAMP[step]


# -- panels ------------------------------------------------------------------


def _stat_tiles(gauges: Dict[str, Any]) -> List[str]:
    out = ["<div class=tiles>"]
    for name, state in sorted(gauges.items()):
        out.append(
            f"<div class=tile><div class=v>{_num(state['value'])}</div>"
            f"<div class=n>{_esc(name)}</div></div>"
        )
    out.append("</div>")
    return out


def _series_panel(name: str, state: Dict[str, Any]) -> List[str]:
    samples: List[Tuple[int, float]] = [
        (int(c), float(v)) for c, v in state["samples"]
    ]
    width, height, pad_l, pad_r, pad_t, pad_b = 640, 150, 46, 10, 10, 22
    xs = [c for c, _ in samples]
    ys = [v for _, v in samples]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    if x_hi == x_lo:
        x_hi = x_lo + 1

    def sx(c: int) -> float:
        return pad_l + (c - x_lo) / (x_hi - x_lo) * (width - pad_l - pad_r)

    def sy(v: float) -> float:
        return pad_t + (y_hi - v) / (y_hi - y_lo) * (height - pad_t - pad_b)

    points = " ".join(f"{sx(c):.1f},{sy(v):.1f}" for c, v in samples)
    out = [f"<h3>{_esc(name)}</h3>"]
    out.append(
        f'<svg width="{width}" height="{height}" role="img" '
        f'aria-label="{_esc(name)} time series">'
    )
    out.append(
        f'<text class=axis x="{pad_l - 4}" y="{sy(y_hi):.1f}" '
        f'text-anchor="end" dominant-baseline="middle">{_num(y_hi)}</text>'
    )
    out.append(
        f'<text class=axis x="{pad_l - 4}" y="{sy(y_lo):.1f}" '
        f'text-anchor="end" dominant-baseline="middle">{_num(y_lo)}</text>'
    )
    for tick in _nice_ticks(y_lo, y_hi):
        y = sy(tick)
        out.append(
            f'<line stroke="{_GRID_COLOR}" stroke-width="1" '
            f'x1="{pad_l}" y1="{y:.1f}" '
            f'x2="{width - pad_r}" y2="{y:.1f}"/>'
        )
        out.append(
            f'<text class=axis x="{pad_l - 4}" y="{y:.1f}" '
            f'text-anchor="end" dominant-baseline="middle">{_num(tick)}</text>'
        )
    out.append(
        f'<text class=axis x="{pad_l}" y="{height - 6}">cycle {x_lo}</text>'
    )
    out.append(
        f'<text class=axis x="{width - pad_r}" y="{height - 6}" '
        f'text-anchor="end">cycle {x_hi}</text>'
    )
    out.append(
        f'<polyline fill="none" stroke="{_LINE_COLOR}" stroke-width="2" '
        f'points="{points}"/>'
    )
    for c, v in samples:
        out.append(
            f'<circle cx="{sx(c):.1f}" cy="{sy(v):.1f}" r="3" '
            f'fill="{_LINE_COLOR}"><title>cycle {c}: {_num(v)}</title>'
            "</circle>"
        )
    out.append("</svg>")
    out.extend(
        _table(
            ["cycle", "value"],
            [[str(c), _num(v)] for c, v in samples],
            f"{len(samples)} samples",
        )
    )
    return out


def _band_rows(
    cells: List[Tuple[str, int, float]], rows: List[str]
) -> Tuple[List[str], List[Tuple[str, int, float]]]:
    """Merge adjacent rows (natural order) into at most
    ``_MAX_HEATMAP_ROWS`` bands, summing cell values within a band.
    Purely positional, so the banding — labels included — is a
    deterministic function of the document."""
    size = -(-len(rows) // _MAX_HEATMAP_ROWS)
    band_of: Dict[str, str] = {}
    banded_rows: List[str] = []
    for i in range(0, len(rows), size):
        chunk = rows[i : i + size]
        label = chunk[0] if len(chunk) == 1 else f"{chunk[0]}..{chunk[-1]}"
        for row in chunk:
            band_of[row] = label
        banded_rows.append(label)
    agg: Dict[Tuple[str, int], float] = {}
    for row, cycle, value in cells:
        key = (band_of[row], cycle)
        agg[key] = agg.get(key, 0.0) + value
    return banded_rows, [(r, c, v) for (r, c), v in agg.items()]


def _heatmap_panel(name: str, state: Dict[str, Any]) -> List[str]:
    cells = [(str(r), int(c), float(v)) for r, c, v in state["cells"]]
    rows = sorted({r for r, _, _ in cells}, key=natural_key)
    band_note = ""
    if len(rows) > _MAX_HEATMAP_ROWS:
        n_raw = len(rows)
        rows, cells = _band_rows(cells, rows)
        band_note = f" ({n_raw} rows banded into {len(rows)})"
    cycles = sorted({c for _, c, _ in cells})
    values = [v for _, _, v in cells]
    v_lo, v_hi = min(values), max(values)
    lookup = {(r, c): v for r, c, v in cells}
    cell_w = max(4, min(24, 560 // max(1, len(cycles))))
    cell_h = max(6, min(18, 360 // max(1, len(rows))))
    pad_l, pad_t, pad_b = 74, 6, 20
    width = pad_l + cell_w * len(cycles) + 10
    height = pad_t + cell_h * len(rows) + pad_b
    out = [f"<h3>{_esc(name)}{_esc(band_note)}</h3>"]
    out.append(
        f'<svg width="{width}" height="{height}" role="img" '
        f'aria-label="{_esc(name)} heatmap">'
    )
    for ri, row in enumerate(rows):
        y = pad_t + ri * cell_h
        out.append(
            f'<text class=rowlab x="{pad_l - 4}" y="{y + cell_h / 2:.1f}" '
            f'text-anchor="end" dominant-baseline="middle">{_esc(row)}</text>'
        )
        for ci, cycle in enumerate(cycles):
            value = lookup.get((row, cycle))
            if value is None:
                continue
            color = _ramp_color(value, v_lo, v_hi)
            out.append(
                f'<rect x="{pad_l + ci * cell_w}" y="{y}" '
                f'width="{cell_w - 1}" height="{cell_h - 1}" fill="{color}">'
                f"<title>{_esc(row)}, cycle {cycle}: {_num(value)}</title>"
                "</rect>"
            )
    out.append(
        f'<text class=axis x="{pad_l}" y="{height - 6}">cycle {cycles[0]}</text>'
    )
    out.append(
        f'<text class=axis x="{width - 10}" y="{height - 6}" '
        f'text-anchor="end">cycle {cycles[-1]}</text>'
    )
    out.append("</svg>")
    sorted_cells = sorted(cells, key=lambda c: (natural_key(c[0]), c[1]))
    out.extend(
        _table(
            ["row", "cycle", "value"],
            [[r, str(c), _num(v)] for r, c, v in sorted_cells],
            f"{len(cells)} cells (range {_num(v_lo)}..{_num(v_hi)})",
        )
    )
    return out


_STRIP_OK = "#2f9e44"
_STRIP_BAD = "#d64545"


def _slo_panel(doc: Dict[str, Any]) -> List[str]:
    """Error-budget burn strips for the SLO objectives mirrored into the
    registry by :func:`repro.telemetry.slo.record_slo_observation`: one
    green/red rect per evaluation window (red = the window violated its
    objective), with the burn-rate / budget-remaining / breached gauges
    as tiles underneath.  Absent unless an SLO report was recorded."""
    strips = {
        name: state
        for name, state in doc.get("series", {}).items()
        if name.startswith("slo.window_violations[")
    }
    gauges = {
        name: state
        for name, state in doc.get("gauges", {}).items()
        if name.startswith("slo.")
    }
    if not strips and not gauges:
        return []

    def _objective(name: str) -> str:
        label = name.split("[", 1)[1]
        return label[:-1] if label.endswith("]") else label

    objectives = sorted(
        {_objective(name) for name in strips}
        | {_objective(name) for name in gauges if "[" in name}
    )
    out: List[str] = []
    for label in objectives:
        display = label[len("objective="):] if label.startswith(
            "objective="
        ) else label
        out.append(f"<h3>{_esc(display)}</h3>")
        strip = strips.get(f"slo.window_violations[{label}]")
        if strip:
            samples = [
                (int(c), float(v)) for c, v in strip["samples"]
            ]
            cell_w = max(4, min(28, 560 // max(1, len(samples))))
            height, pad_b = 40, 18
            width = cell_w * len(samples) + 12
            out.append(
                f'<svg width="{width}" height="{height}" role="img" '
                f'aria-label="{_esc(display)} budget burn strip">'
            )
            for index, (start, violations) in enumerate(samples):
                color = _STRIP_BAD if violations > 0 else _STRIP_OK
                out.append(
                    f'<rect x="{6 + index * cell_w}" y="4" '
                    f'width="{cell_w - 1}" height="{height - pad_b - 4}" '
                    f'fill="{color}"><title>window @cycle {start}: '
                    f"{_num(violations)} violation(s)</title></rect>"
                )
            out.append(
                f'<text class=axis x="6" y="{height - 4}">'
                f"cycle {samples[0][0]}</text>"
            )
            out.append(
                f'<text class=axis x="{width - 6}" y="{height - 4}" '
                f'text-anchor="end">cycle {samples[-1][0]}</text>'
            )
            out.append("</svg>")
            out.extend(
                _table(
                    ["window start", "violations"],
                    [[str(c), _num(v)] for c, v in samples],
                    f"{len(samples)} windows",
                )
            )
        tiles = []
        for metric in ("burn_rate", "budget_remaining", "breached"):
            state = gauges.get(f"slo.{metric}[{label}]")
            if state is not None:
                tiles.append(
                    f"<div class=tile><div class=v>"
                    f"{_num(state['value'])}</div>"
                    f"<div class=n>{_esc(metric)}</div></div>"
                )
        if tiles:
            out.append("<div class=tiles>" + "".join(tiles) + "</div>")
    return out


def _profile_panel(doc: Dict[str, Any]) -> List[str]:
    """The self-profiling layer: ``profile.*`` stage timers as a table,
    ``profile.*`` counters as stat tiles.  Stage wall times are
    host-dependent — this panel only appears when profiling was enabled,
    so default bundles stay byte-comparable."""
    stages = {
        name: stats
        for name, stats in doc.get("histograms", {}).items()
        if name.startswith("profile.")
    }
    counters = {
        name: value
        for name, value in doc.get("counters", {}).items()
        if name.startswith("profile.")
    }
    out: List[str] = []
    if stages:
        out.append(
            "<table><tr><th>stage</th><th>calls</th><th>total s</th>"
            "<th>mean s</th><th>p95 s</th></tr>"
        )
        for name, stats in sorted(stages.items()):
            row = [
                _esc(name),
                _num(stats["count"]),
                f"{stats['sum']:.6f}",
                f"{stats['mean']:.6f}",
                f"{stats['p95']:.6f}",
            ]
            out.append(
                "<tr>" + "".join(f"<td>{v}</td>" for v in row) + "</tr>"
            )
        out.append("</table>")
    if counters:
        out.append("<div class=tiles>")
        for name, value in sorted(counters.items()):
            out.append(
                f"<div class=tile><div class=v>{_num(value)}</div>"
                f"<div class=n>{_esc(name)}</div></div>"
            )
        out.append("</div>")
    return out


def _table(
    headers: List[str], rows: List[List[str]], summary: str
) -> List[str]:
    shown = rows[:_TABLE_CAP]
    note = (
        f" (showing first {_TABLE_CAP} of {len(rows)})"
        if len(rows) > _TABLE_CAP
        else ""
    )
    out = [f"<details><summary>table: {_esc(summary)}{note}</summary>"]
    out.append("<table><tr>")
    out.extend(f"<th>{_esc(h)}</th>" for h in headers)
    out.append("</tr>")
    for row in shown:
        out.append(
            "<tr>" + "".join(f"<td>{_esc(v)}</td>" for v in row) + "</tr>"
        )
    out.append("</table></details>")
    return out


# -- document ----------------------------------------------------------------


def render_dashboard(doc: Dict[str, Any], title: str = None) -> str:
    """Render one observation document as a standalone HTML page."""
    from repro.telemetry.exposition import OBSERVE_SCHEMA, observation_drops

    if not isinstance(doc, dict) or doc.get("schema") != OBSERVE_SCHEMA:
        raise ValueError("render_dashboard needs an observation document")
    title = title or doc.get("title", "observation")
    parts = [
        "<!doctype html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{_esc(title)}</title>",
        f"<style>{_CSS}</style>",
        "</head><body>",
        f"<h1>{_esc(title)}</h1>",
        f"<div class=sub>{_esc(doc['schema'])} &middot; "
        f"registry {_esc(doc.get('registry', 'repro'))}</div>",
    ]
    drops = observation_drops(doc)
    if drops:
        total = sum(count for _, count in drops)
        detail = ", ".join(f"{_esc(n)} ({count})" for n, count in drops)
        parts.append(
            f"<div class=warn>&#9888; {total} observation(s) dropped "
            f"across {len(drops)} instrument(s) — capacity caps hit; "
            f"raise the sampling stride: {detail}</div>"
        )
    gauges = doc.get("gauges", {})
    # slo.* instruments render in their own panel, not the generic ones
    plain_gauges = {
        n: s for n, s in gauges.items() if not n.startswith("slo.")
    }
    if plain_gauges:
        parts.append("<h2>Gauges</h2>")
        parts.extend(_stat_tiles(plain_gauges))
    slo = _slo_panel(doc)
    if slo:
        parts.append("<h2>SLO budget burn</h2>")
        parts.extend(slo)
    series = doc.get("series", {})
    if series:
        plain_series = {
            n: s for n, s in series.items() if not n.startswith("slo.")
        }
        if plain_series:
            parts.append("<h2>Time series</h2>")
            for name, state in sorted(plain_series.items()):
                parts.extend(_series_panel(name, state))
    heatmaps = doc.get("heatmaps", {})
    if heatmaps:
        parts.append("<h2>Heatmaps</h2>")
        for name, state in sorted(heatmaps.items()):
            parts.extend(_heatmap_panel(name, state))
    profile = _profile_panel(doc)
    if profile:
        parts.append("<h2>Self-profile</h2>")
        parts.extend(profile)
    if not (gauges or series or heatmaps):
        parts.append("<p>No observation data recorded.</p>")
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"
