"""Bounded event trace — a ring buffer of interesting moments.

Counters say *how often* something happened; the trace says *what*, in
order, with context (which span blocked, which region's worm aborted).
The buffer is bounded so a million-trial sweep cannot grow memory
without limit: old events fall off the front and are tallied in
``dropped``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterator, List, Tuple

__all__ = ["Event", "EventTrace"]


@dataclass(frozen=True)
class Event:
    """One traced moment: a sequence number, a name, and free-form fields."""

    seq: int
    name: str
    fields: Tuple[Tuple[str, Any], ...] = ()

    def as_dict(self) -> Dict[str, Any]:
        return {"seq": self.seq, "name": self.name, **dict(self.fields)}


class EventTrace:
    """A bounded, append-only ring of :class:`Event` records."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("trace needs capacity for at least one event")
        self.capacity = capacity
        self._ring: Deque[Event] = deque(maxlen=capacity)
        self._seq = 0
        self.dropped = 0

    def record(self, name: str, **fields: Any) -> Event:
        """Append one event; evicts the oldest when the ring is full."""
        if len(self._ring) == self.capacity:
            self.dropped += 1
        event = Event(self._seq, name, tuple(sorted(fields.items())))
        self._seq += 1
        self._ring.append(event)
        return event

    def clear(self) -> None:
        self._ring.clear()
        self._seq = 0
        self.dropped = 0

    def events(self, name: str) -> List[Event]:
        """All retained events with the given name, oldest first."""
        return [e for e in self._ring if e.name == name]

    def as_dicts(self) -> List[Dict[str, Any]]:
        return [e.as_dict() for e in self._ring]

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._ring)
