"""Pluggable output sinks for telemetry registries.

A sink consumes a :class:`~repro.telemetry.registry.Registry` and emits
it somewhere — a text stream for humans, a JSON stream/file for the
benchmark harness and CI artifacts.  New sinks subclass :class:`Sink`
and implement :meth:`Sink.emit`.
"""

from __future__ import annotations

import json
import sys
from typing import IO, Optional

from repro.telemetry.registry import Registry

__all__ = ["Sink", "TextSink", "JSONSink"]


class Sink:
    """Interface: consume one registry, emit it somewhere."""

    def emit(self, registry: Registry) -> None:
        raise NotImplementedError


class TextSink(Sink):
    """Writes the registry's human-readable summary to a stream."""

    def __init__(self, stream: Optional[IO[str]] = None) -> None:
        self.stream = stream if stream is not None else sys.stdout

    def emit(self, registry: Registry) -> None:
        self.stream.write(registry.summary() + "\n")


class JSONSink(Sink):
    """Writes the registry snapshot (plus retained events) as JSON."""

    def __init__(self, stream: Optional[IO[str]] = None, indent: int = 2) -> None:
        self.stream = stream if stream is not None else sys.stdout
        self.indent = indent

    def emit(self, registry: Registry) -> None:
        payload = registry.snapshot()
        payload["events"] = registry.trace.as_dicts()
        payload["events_dropped"] = registry.trace.dropped
        json.dump(payload, self.stream, indent=self.indent, default=str)
        self.stream.write("\n")
