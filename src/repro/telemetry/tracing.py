"""Causal span tracing — *why* and *in what order*, not just *how many*.

The counters and timers of :mod:`repro.telemetry.metrics` aggregate; a
:class:`Span` records one timed operation with its causal parent, so a
whole reconfiguration — request → grant → ack for a CSD chaining, the
reserve → commit worm of a scaling operation, a Figure-3 trial — becomes
a browsable tree.  Spans carry two timestamps:

* **simulation cycles** (``cycle_start``/``cycle_end``): the tracer's
  logical clock, advanced by the simulators (one CSD chaining or one
  NoC step per cycle).  Cycle timestamps are deterministic, so traces
  from a ``--workers N`` sweep merge bit-identically to a serial run.
* **wall-clock seconds** (``wall_start``/``wall_end``): where the real
  time went, for profiling the simulator itself.

Tracing is **disabled by default** and the hot paths guard on
:attr:`Tracer.enabled` (a single attribute read) before building any
span, so the instrumented protocol sites cost nothing when nobody is
looking.

Buffers are picklable and mergeable exactly like registry snapshots:
worker processes ship :meth:`Tracer.snapshot` back next to their
results and the parent folds them in with :meth:`Tracer.merge`, which
keeps the buffer sorted by cycle.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["SpanEvent", "Span", "Tracer"]


class SpanEvent:
    """One instant inside a span: a grant, a block, a state transition."""

    __slots__ = ("name", "cycle", "wall", "attrs")

    def __init__(
        self,
        name: str,
        cycle: int,
        wall: float,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.cycle = cycle
        self.wall = wall
        self.attrs = attrs or {}

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "cycle": self.cycle,
            "wall": self.wall,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "SpanEvent":
        return cls(d["name"], d["cycle"], d["wall"], dict(d.get("attrs", {})))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanEvent({self.name!r}, cycle={self.cycle})"


class Span:
    """One timed operation with causal parentage.

    Spans are created through :meth:`Tracer.span` (context manager) or
    :meth:`Tracer.start`/:meth:`Span.end`; never directly.  Attributes
    are free-form but must be picklable (strings, numbers, tuples).
    """

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "kind",
        "attrs",
        "cycle_start",
        "cycle_end",
        "wall_start",
        "wall_end",
        "events",
        "status",
        "_tracer",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        kind: str,
        attrs: Dict[str, Any],
        cycle_start: int,
        wall_start: float,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.attrs = attrs
        self.cycle_start = cycle_start
        self.cycle_end = cycle_start
        self.wall_start = wall_start
        self.wall_end = wall_start
        self.events: List[SpanEvent] = []
        self.status = "ok"
        self._tracer = tracer

    # -- recording ---------------------------------------------------------

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def add_event(self, name: str, cycle: Optional[int] = None, **attrs: Any) -> None:
        """Record an instant event inside this span."""
        if cycle is None:
            cycle = self._tracer.cycle if self._tracer is not None else self.cycle_start
        self.events.append(SpanEvent(name, cycle, time.perf_counter(), attrs))

    def end(self, cycle: Optional[int] = None, status: Optional[str] = None) -> None:
        """Finish the span (the tracer's context manager calls this)."""
        if self._tracer is not None:
            self._tracer._finish(self, cycle=cycle, status=status)

    # -- durations ---------------------------------------------------------

    @property
    def cycles(self) -> int:
        return self.cycle_end - self.cycle_start

    @property
    def wall_s(self) -> float:
        return self.wall_end - self.wall_start

    # -- (de)serialisation -------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "attrs": dict(self.attrs),
            "cycle_start": self.cycle_start,
            "cycle_end": self.cycle_end,
            "wall_start": self.wall_start,
            "wall_end": self.wall_end,
            "status": self.status,
            "events": [e.as_dict() for e in self.events],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Span":
        span = cls(
            d["span_id"],
            d.get("parent_id"),
            d["name"],
            d.get("kind", "span"),
            dict(d.get("attrs", {})),
            d["cycle_start"],
            d.get("wall_start", 0.0),
        )
        span.cycle_end = d.get("cycle_end", span.cycle_start)
        span.wall_end = d.get("wall_end", span.wall_start)
        span.status = d.get("status", "ok")
        span.events = [SpanEvent.from_dict(e) for e in d.get("events", [])]
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, "
            f"cycles=[{self.cycle_start},{self.cycle_end}])"
        )


class _SpanContext:
    """Context-manager wrapper handed out by :meth:`Tracer.span`."""

    __slots__ = ("_span",)

    def __init__(self, span: Span) -> None:
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._span.end(status="error" if exc_type is not None else None)


class _NullSpan:
    """Shared do-nothing span for the disabled tracer: every recording
    method is a no-op, so call sites need no ``enabled`` branching for
    correctness (they still branch for speed on the hottest paths)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def set_attr(self, key: str, value: Any) -> None:
        pass

    def add_event(self, name: str, cycle: Optional[int] = None, **attrs: Any) -> None:
        pass

    def end(self, cycle: Optional[int] = None, status: Optional[str] = None) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Builds, buffers, and merges causal spans.

    The tracer owns a logical **cycle clock** the simulators advance
    (:meth:`advance` / :meth:`set_cycle`) and a stack of in-flight spans
    providing implicit parentage: a span started while another is open
    becomes its child.  Finished spans land in a bounded buffer; when it
    fills, further spans are counted in :attr:`dropped` instead of
    growing memory without limit.
    """

    def __init__(self, max_spans: int = 100_000) -> None:
        if max_spans < 1:
            raise ValueError("tracer needs capacity for at least one span")
        self.enabled = False
        self.max_spans = max_spans
        self.cycle = 0
        self.dropped = 0
        self._spans: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 0

    # -- the logical clock -------------------------------------------------

    def advance(self, cycles: int = 1) -> int:
        """Advance the cycle clock; returns the new cycle."""
        self.cycle += cycles
        return self.cycle

    def set_cycle(self, cycle: int) -> None:
        self.cycle = cycle

    # -- span construction -------------------------------------------------

    def span(self, name: str, kind: str = "span", cycle: Optional[int] = None,
             **attrs: Any):
        """``with tracer.span("csd.connect", source=0, sink=5) as s:`` —
        the context manager form of :meth:`start`.  Returns a shared
        no-op when tracing is disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return _SpanContext(self.start(name, kind=kind, cycle=cycle, **attrs))

    def start(self, name: str, kind: str = "span", cycle: Optional[int] = None,
              **attrs: Any) -> Span:
        """Open a span as a child of the innermost open span (if any)."""
        if not self.enabled:
            return _NULL_SPAN  # type: ignore[return-value]
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(
            self._next_id,
            parent,
            name,
            kind,
            attrs,
            self.cycle if cycle is None else cycle,
            time.perf_counter(),
            tracer=self,
        )
        self._next_id += 1
        self._stack.append(span)
        return span

    def _finish(self, span: Span, cycle: Optional[int] = None,
                status: Optional[str] = None) -> None:
        if span in (self._stack or ()):  # tolerate out-of-order ends
            while self._stack and self._stack[-1] is not span:
                self._record(self._stack.pop())
            self._stack.pop()
        end_cycle = self.cycle if cycle is None else cycle
        span.cycle_end = max(span.cycle_start, end_cycle)
        span.wall_end = time.perf_counter()
        if status is not None:
            span.status = status
        self._record(span)

    def complete(self, name: str, cycle_start: Optional[int] = None,
                 cycle_end: Optional[int] = None, kind: str = "span",
                 **attrs: Any) -> None:
        """Record an already-finished span (e.g. one flit hop) without
        stack churn; it parents under the innermost open span."""
        if not self.enabled:
            return
        start = self.cycle if cycle_start is None else cycle_start
        parent = self._stack[-1].span_id if self._stack else None
        now = time.perf_counter()
        span = Span(self._next_id, parent, name, kind, attrs, start, now)
        self._next_id += 1
        span.cycle_end = max(start, start + 1 if cycle_end is None else cycle_end)
        span.wall_end = now
        self._record(span)

    def instant(self, name: str, cycle: Optional[int] = None, **attrs: Any) -> None:
        """Record an instant: attached to the innermost open span when
        one exists, else as a standalone zero-length span."""
        if not self.enabled:
            return
        at = self.cycle if cycle is None else cycle
        if self._stack:
            self._stack[-1].events.append(
                SpanEvent(name, at, time.perf_counter(), attrs)
            )
            return
        span = Span(self._next_id, None, name, "instant", attrs, at,
                    time.perf_counter())
        self._next_id += 1
        span.wall_end = span.wall_start
        self._record(span)

    def current(self) -> Optional[Span]:
        """The innermost open span, or None."""
        return self._stack[-1] if self._stack else None

    def _record(self, span: Span) -> None:
        span._tracer = None  # snapshot()s must pickle; drop the backref
        if len(self._spans) >= self.max_spans:
            self.dropped += 1
            return
        self._spans.append(span)

    # -- buffer access -----------------------------------------------------

    @property
    def spans(self) -> Tuple[Span, ...]:
        """Finished spans, in recording order."""
        return tuple(self._spans)

    def sorted_spans(self) -> List[Span]:
        """Finished spans sorted by ``(cycle_start, cycle_end, span_id)``
        — the canonical order :func:`repro.telemetry.export` consumes."""
        return sorted(
            self._spans, key=lambda s: (s.cycle_start, s.cycle_end, s.span_id)
        )

    def clear(self) -> None:
        self._spans.clear()
        self._stack.clear()
        self.cycle = 0
        self.dropped = 0
        self._next_id = 0

    def __len__(self) -> int:
        return len(self._spans)

    # -- snapshot / merge --------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Pickle-able buffer state (open spans are *not* included)."""
        return {
            "spans": [s.as_dict() for s in self._spans],
            "dropped": self.dropped,
        }

    def merge(self, snap: Dict[str, Any]) -> None:
        """Fold another tracer's snapshot into this buffer.

        Incoming span ids are rebased past this tracer's id watermark so
        parent links stay intact, and the buffer is left **sorted by
        cycle** so a merged parallel-sweep trace reads in simulation
        order, exactly like a serial one.
        """
        incoming = [Span.from_dict(d) for d in snap.get("spans", [])]
        if incoming:
            offset = self._next_id
            top = 0
            for span in incoming:
                span.span_id += offset
                if span.parent_id is not None:
                    span.parent_id += offset
                top = max(top, span.span_id)
            self._next_id = top + 1
            room = self.max_spans - len(self._spans)
            if len(incoming) > room:
                self.dropped += len(incoming) - room
                incoming = incoming[:room]
            self._spans.extend(incoming)
            self._spans.sort(key=lambda s: (s.cycle_start, s.cycle_end, s.span_id))
        self.dropped += snap.get("dropped", 0)
