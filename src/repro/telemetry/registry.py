"""The telemetry registry: named instruments under one namespace.

One :class:`Registry` holds every counter, timer and the event trace for
a component (by convention instrument names are dotted paths like
``csd.connect.grants``).  Snapshots are plain dicts, so they cross
process boundaries — a parallel sweep's worker processes each run their
own registry, ship ``snapshot()`` back with the results, and the parent
folds them in with :meth:`Registry.merge`.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.telemetry.events import EventTrace
from repro.telemetry.metrics import Counter, Timer

__all__ = ["Registry"]


class Registry:
    """A namespace of counters, timers, and one event trace."""

    def __init__(self, name: str = "repro", trace_capacity: int = 1024) -> None:
        self.name = name
        self.counters: Dict[str, Counter] = {}
        self.timers: Dict[str, Timer] = {}
        self.trace = EventTrace(trace_capacity)

    # -- instrument access (get-or-create) --------------------------------

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def timer(self, name: str) -> Timer:
        timer = self.timers.get(name)
        if timer is None:
            timer = self.timers[name] = Timer(name)
        return timer

    def event(self, name: str, **fields: Any) -> None:
        self.trace.record(name, **fields)

    # -- snapshot / merge / reset -----------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Pickle-able state of every instrument (events excluded — they
        stay local to the process that recorded them)."""
        return {
            "name": self.name,
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "timers": {
                n: {"total_s": t.total_s, "calls": t.calls}
                for n, t in sorted(self.timers.items())
            },
        }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold another registry's snapshot into this one (additive)."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, stats in snapshot.get("timers", {}).items():
            timer = self.timer(name)
            timer.total_s += stats["total_s"]
            timer.calls += stats["calls"]

    def reset(self) -> None:
        for counter in self.counters.values():
            counter.reset()
        for timer in self.timers.values():
            timer.reset()
        self.trace.clear()

    # -- reporting ---------------------------------------------------------

    def summary(self) -> str:
        """Human-readable tables of every non-zero instrument."""
        from repro.analysis.reporting import format_telemetry

        return format_telemetry(self.snapshot(), title=f"telemetry [{self.name}]")
