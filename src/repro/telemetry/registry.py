"""The telemetry registry: named instruments under one namespace.

One :class:`Registry` holds every counter, timer and histogram, the
event trace, and the span tracer for a component (by convention
instrument names are dotted paths like ``csd.connect.grants``).
Snapshots are plain dicts, so they cross process boundaries — a
parallel sweep's worker processes each run their own registry, ship
``snapshot()`` back with the results, and the parent folds them in with
:meth:`Registry.merge`.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.telemetry.events import EventTrace
from repro.telemetry.metrics import Counter, Histogram, Timer
from repro.telemetry.tracing import Tracer

__all__ = ["Registry"]


class Registry:
    """A namespace of counters, timers, histograms, one event trace, and
    one span tracer."""

    def __init__(self, name: str = "repro", trace_capacity: int = 1024) -> None:
        self.name = name
        self.counters: Dict[str, Counter] = {}
        self.timers: Dict[str, Timer] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.trace = EventTrace(trace_capacity)
        self.tracer = Tracer()

    # -- instrument access (get-or-create) --------------------------------

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def timer(self, name: str) -> Timer:
        timer = self.timers.get(name)
        if timer is None:
            timer = self.timers[name] = Timer(name)
        return timer

    def histogram(self, name: str) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(name)
        return histogram

    def event(self, name: str, **fields: Any) -> None:
        self.trace.record(name, **fields)

    # -- snapshot / merge / reset -----------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Pickle-able state of every instrument.

        Events stay local to the process that recorded them (only their
        ``events_dropped`` tally travels); tracer spans *are* included,
        so a worker's causal trace folds back into the parent exactly
        like its counters do.
        """
        return {
            "name": self.name,
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "timers": {
                n: {"total_s": t.total_s, "calls": t.calls}
                for n, t in sorted(self.timers.items())
            },
            "histograms": {
                n: list(h.values) for n, h in sorted(self.histograms.items())
            },
            "events_dropped": self.trace.dropped,
            "spans": self.tracer.snapshot(),
        }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold another registry's snapshot into this one (additive)."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, stats in snapshot.get("timers", {}).items():
            timer = self.timer(name)
            timer.total_s += stats["total_s"]
            timer.calls += stats["calls"]
        for name, values in snapshot.get("histograms", {}).items():
            self.histogram(name).extend(values)
        self.trace.dropped += snapshot.get("events_dropped", 0)
        spans = snapshot.get("spans")
        if spans:
            self.tracer.merge(spans)

    def reset(self) -> None:
        for counter in self.counters.values():
            counter.reset()
        for timer in self.timers.values():
            timer.reset()
        for histogram in self.histograms.values():
            histogram.reset()
        self.trace.clear()
        self.tracer.clear()

    # -- reporting ---------------------------------------------------------

    def summary(self) -> str:
        """Human-readable tables of every non-zero instrument."""
        from repro.analysis.reporting import format_telemetry

        return format_telemetry(self.snapshot(), title=f"telemetry [{self.name}]")
