"""The telemetry registry: named instruments under one namespace.

One :class:`Registry` holds every counter, timer and histogram, the
event trace, and the span tracer for a component (by convention
instrument names are dotted paths like ``csd.connect.grants``).
Snapshots are plain dicts, so they cross process boundaries — a
parallel sweep's worker processes each run their own registry, ship
``snapshot()`` back with the results, and the parent folds them in with
:meth:`Registry.merge`.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.telemetry.events import EventTrace
from repro.telemetry.metrics import Counter, Histogram, Timer
from repro.telemetry.observe import Gauge, Heatmap, Observer, TimeSeries
from repro.telemetry.profile import Profiler
from repro.telemetry.tracing import Tracer

__all__ = ["Registry"]


class Registry:
    """A namespace of counters, timers, histograms, gauges, time-series,
    heatmaps, one event trace, and one span tracer."""

    def __init__(self, name: str = "repro", trace_capacity: int = 1024) -> None:
        self.name = name
        self.counters: Dict[str, Counter] = {}
        self.timers: Dict[str, Timer] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.series: Dict[str, TimeSeries] = {}
        self.heatmaps: Dict[str, Heatmap] = {}
        self.trace = EventTrace(trace_capacity)
        self.tracer = Tracer()
        self.observer = Observer()
        self.profiler = Profiler()

    # -- instrument access (get-or-create) --------------------------------

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def timer(self, name: str) -> Timer:
        timer = self.timers.get(name)
        if timer is None:
            timer = self.timers[name] = Timer(name)
        return timer

    def histogram(self, name: str) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(name)
        return histogram

    def gauge(self, name: str) -> Gauge:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge(name)
        return gauge

    def time_series(self, name: str) -> TimeSeries:
        series = self.series.get(name)
        if series is None:
            series = self.series[name] = TimeSeries(name)
        return series

    def heatmap(self, name: str) -> Heatmap:
        heatmap = self.heatmaps.get(name)
        if heatmap is None:
            heatmap = self.heatmaps[name] = Heatmap(name)
        return heatmap

    def event(self, name: str, **fields: Any) -> None:
        self.trace.record(name, **fields)

    # -- snapshot / merge / reset -----------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Pickle-able state of every instrument.

        Events stay local to the process that recorded them (only their
        ``events_dropped`` tally travels); tracer spans *are* included,
        so a worker's causal trace folds back into the parent exactly
        like its counters do.
        """
        return {
            "name": self.name,
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "timers": {
                n: {"total_s": t.total_s, "calls": t.calls}
                for n, t in sorted(self.timers.items())
            },
            "histograms": {
                n: list(h.values) for n, h in sorted(self.histograms.items())
            },
            "gauges": {n: g.state() for n, g in sorted(self.gauges.items())},
            "series": {n: s.state() for n, s in sorted(self.series.items())},
            "heatmaps": {
                n: h.state() for n, h in sorted(self.heatmaps.items())
            },
            "events_dropped": self.trace.dropped,
            "spans": self.tracer.snapshot(),
        }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold another registry's snapshot into this one (additive)."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, stats in snapshot.get("timers", {}).items():
            timer = self.timer(name)
            timer.total_s += stats["total_s"]
            timer.calls += stats["calls"]
        for name, values in snapshot.get("histograms", {}).items():
            self.histogram(name).extend(values)
        for name, state in snapshot.get("gauges", {}).items():
            self.gauge(name).merge_state(state)
        for name, state in snapshot.get("series", {}).items():
            self.time_series(name).merge_state(state)
        for name, state in snapshot.get("heatmaps", {}).items():
            self.heatmap(name).merge_state(state)
        self.trace.dropped += snapshot.get("events_dropped", 0)
        spans = snapshot.get("spans")
        if spans:
            self.tracer.merge(spans)

    def reset(self) -> None:
        for counter in self.counters.values():
            counter.reset()
        for timer in self.timers.values():
            timer.reset()
        for histogram in self.histograms.values():
            histogram.reset()
        for gauge in self.gauges.values():
            gauge.reset()
        for series in self.series.values():
            series.reset()
        for heatmap in self.heatmaps.values():
            heatmap.reset()
        self.trace.clear()
        self.tracer.clear()
        # the guards are process-wide mutable state too: a run that
        # enabled tracing or observation must not leak either into the
        # next run (or a reused pool worker) — reset() means "fresh
        # process", so callers re-enable what they want afterwards
        self.tracer.enabled = False
        self.observer.reset()
        self.profiler.reset()

    # -- reporting ---------------------------------------------------------

    def summary(self) -> str:
        """Human-readable tables of every non-zero instrument."""
        from repro.analysis.reporting import format_telemetry

        return format_telemetry(self.snapshot(), title=f"telemetry [{self.name}]")
