"""Exporters for observation data: OpenMetrics, CSV, JSON, dashboard.

One registry snapshot becomes one **observation document** — a plain,
JSON-safe dict with a schema tag — and every exporter renders from that
document, never from live objects.  The document (and therefore every
rendering) is canonical:

* empty instruments are elided (``Registry.reset`` keeps instrument
  keys, and forked pool workers inherit the parent's names — without
  elision a parallel run would expose ghost families a fresh serial
  process lacks);
* engine bookkeeping (``engine.*``) is elided: it describes *how* a run
  executed (cache hits, batch latencies), not what the fabric did, and
  it would break the byte-identity of ``--engine`` bundles against live
  ones.  The self-profiling families (``profile.*``) stay — they are a
  deliberate observability product with their own report;
* wall-clock timer seconds are excluded (only call counts travel), so
  two runs of the same seed compare byte-for-byte no matter the host;
* families, samples and cells are sorted on stable keys.

These rules are what make ``--observe`` output byte-identical between
a serial sweep, a ``--workers N`` one, and an ``--engine`` one.

The renderings are also *lossless*: :func:`reconstruct_observation`
rebuilds the exact document from the OpenMetrics text plus the two
long-form CSVs (the scalar families carry every digest the document
holds; the CSVs carry the series samples and heatmap cells), which the
round-trip property test in ``tests/telemetry/test_roundtrip.py``
exercises against adversarial instrument names and label values.
"""

from __future__ import annotations

import csv
import io
import json
import re
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.telemetry.metrics import Histogram
from repro.telemetry.observe import escape_label_value, natural_key

__all__ = [
    "OBSERVE_SCHEMA",
    "split_labels",
    "observation_document",
    "to_openmetrics",
    "series_csv",
    "heatmap_csv",
    "observe_json",
    "load_observation",
    "write_observation",
    "format_observe_report",
    "format_profile_report",
    "observation_drops",
    "parse_openmetrics",
    "parse_series_csv",
    "parse_heatmap_csv",
    "reconstruct_observation",
]

#: Version tag of the observation document format (bump on breaking change).
OBSERVE_SCHEMA = "repro.telemetry.observe/1"

_UNSAFE = re.compile(r"[^a-zA-Z0-9_]")
_LABEL_UNESCAPE = re.compile(r"\\(.)")


def _num(value: float) -> str:
    """Deterministic number rendering: integral floats as ints, the rest
    via ``repr`` (shortest round-trip, platform-independent)."""
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _split_unescaped(text: str, sep: str, maxsplit: Optional[int] = None) -> List[str]:
    """Split on ``sep`` wherever it is not backslash-escaped, keeping the
    escape sequences intact for a later unescape pass."""
    parts: List[str] = []
    buf: List[str] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch == "\\" and i + 1 < n:
            buf.append(ch)
            buf.append(text[i + 1])
            i += 2
            continue
        if ch == sep and (maxsplit is None or len(parts) < maxsplit):
            parts.append("".join(buf))
            buf = []
        else:
            buf.append(ch)
        i += 1
    parts.append("".join(buf))
    return parts


def split_labels(
    name: str, strict: bool = False
) -> Tuple[str, List[Tuple[str, str]]]:
    """Split ``"csd.used_channels[n=16,loc=0.5]"`` into the base name and
    its ``point_label`` attributes.

    The inverse of :func:`repro.telemetry.observe.point_label`: label
    values arrive backslash-unescaped, so a value that itself contained
    ``=``, ``,`` or a bracket round-trips.  A name without a suffix has
    no labels.  A malformed suffix (stray bracket, label part without a
    key) keeps the whole name verbatim as the base with no labels — or,
    with ``strict=True``, raises :class:`ValueError` (``observe-report``
    maps this to exit code 2).
    """
    open_idx: Optional[int] = None
    close_idx: Optional[int] = None
    err: Optional[str] = None
    i, n = 0, len(name)
    while i < n:
        ch = name[i]
        if ch == "\\":
            i += 2
            continue
        if ch == "[":
            if open_idx is not None:
                err = "second unescaped '['"
                break
            open_idx = i
        elif ch == "]":
            if open_idx is None:
                err = "']' before '['"
                break
            if close_idx is not None:
                err = "second unescaped ']'"
                break
            close_idx = i
        i += 1
    if err is None and open_idx is None:
        return name, []
    if err is None and (close_idx is None or close_idx != n - 1 or open_idx == 0):
        err = "label suffix must close exactly at the end of a base name"
    labels: List[Tuple[str, str]] = []
    if err is None:
        inner = name[open_idx + 1 : close_idx]
        for part in _split_unescaped(inner, ",") if inner else []:
            kv = _split_unescaped(part, "=", maxsplit=1)
            if len(kv) != 2 or not kv[0].strip():
                err = f"label part {part!r} is not k=v"
                break
            labels.append(
                (
                    _LABEL_UNESCAPE.sub(r"\1", kv[0].strip()),
                    _LABEL_UNESCAPE.sub(r"\1", kv[1].strip()),
                )
            )
    if err is not None:
        if strict:
            raise ValueError(f"malformed point label in {name!r}: {err}")
        return name, []
    return name[:open_idx], labels


def _metric_name(base: str, suffix: str = "") -> str:
    """OpenMetrics family name: ``repro_`` prefix, dots to underscores."""
    return "repro_" + _UNSAFE.sub("_", base.strip()) + suffix


def _escape_exposition(text: str) -> str:
    """OpenMetrics escaping for label values and HELP text: backslash,
    double quote, and newline (the three characters the line-oriented
    format cannot carry verbatim)."""
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _unescape_exposition(text: str) -> str:
    out: List[str] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch == "\\" and i + 1 < n:
            nxt = text[i + 1]
            out.append("\n" if nxt == "n" else nxt)
            i += 2
            continue
        out.append(ch)
        i += 1
    return "".join(out)


def _label_str(labels: List[Tuple[str, str]]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_UNSAFE.sub("_", k)}="{_escape_exposition(v)}"' for k, v in labels
    )
    return "{" + inner + "}"


def _hist_stats(values: List[float]) -> Dict[str, float]:
    h = Histogram("exposition.tmp", values=list(values))
    return {
        "count": h.count,
        "sum": float(h.total),
        "min": float(h.min),
        "max": float(h.max),
        "mean": float(h.mean),
        "stddev": float(h.stddev),
        "p50": float(h.percentile(50)),
        "p95": float(h.percentile(95)),
        "p99": float(h.percentile(99)),
    }


def _visible(name: str) -> bool:
    """Engine bookkeeping never reaches an observation document (see the
    module docstring); everything else — including ``profile.*`` — does."""
    return not name.startswith("engine.")


def observation_document(
    snapshot: Dict[str, Any], title: str = "observation"
) -> Dict[str, Any]:
    """Distill a :meth:`Registry.snapshot` into the canonical
    observation document every exporter renders from."""
    counters = {
        name: value
        for name, value in sorted(snapshot.get("counters", {}).items())
        if value and _visible(name)
    }
    timers = {
        name: {"calls": stats["calls"]}
        for name, stats in sorted(snapshot.get("timers", {}).items())
        if stats.get("calls") and _visible(name)
    }
    histograms = {
        name: _hist_stats(values)
        for name, values in sorted(snapshot.get("histograms", {}).items())
        if values and _visible(name)
    }
    gauges = {
        name: {
            "value": float(state.get("value", 0.0)),
            "updates": int(state.get("updates", 0)),
        }
        for name, state in sorted(snapshot.get("gauges", {}).items())
        if state.get("updates") and _visible(name)
    }
    series = {
        name: {
            "samples": [[int(c), float(v)] for c, v in state.get("samples", ())],
            "dropped": int(state.get("dropped", 0)),
        }
        for name, state in sorted(snapshot.get("series", {}).items())
        if state.get("samples") and _visible(name)
    }
    heatmaps = {
        name: {
            "cells": [
                [str(r), int(c), float(v)] for r, c, v in state.get("cells", ())
            ],
            "dropped": int(state.get("dropped", 0)),
        }
        for name, state in sorted(snapshot.get("heatmaps", {}).items())
        if state.get("cells") and _visible(name)
    }
    return {
        "schema": OBSERVE_SCHEMA,
        "title": title,
        "registry": snapshot.get("name", "repro"),
        "counters": counters,
        "timers": timers,
        "histograms": histograms,
        "gauges": gauges,
        "series": series,
        "heatmaps": heatmaps,
    }


def _require_document(doc: Dict[str, Any]) -> None:
    if not isinstance(doc, dict) or doc.get("schema") != OBSERVE_SCHEMA:
        raise ValueError(
            f"not an observation document (want schema {OBSERVE_SCHEMA!r}, "
            f"got {doc.get('schema') if isinstance(doc, dict) else type(doc).__name__!r})"
        )


# -- OpenMetrics -------------------------------------------------------------


def to_openmetrics(doc: Dict[str, Any]) -> str:
    """Render the document as OpenMetrics text exposition.

    Families are sorted by metric name; point labels parsed from the
    ``[k=v,...]`` instrument-name suffix become Prometheus labels.
    Timers export call counts only — never wall seconds — to keep the
    text byte-comparable across runs.

    The rendering is *lossless* modulo the long-form data: every scalar
    the document holds (gauge update counts, full histogram digests,
    series/heatmap ``dropped`` tallies, the document title) gets its own
    family, so :func:`parse_openmetrics` plus the two CSVs reconstruct
    the document exactly.  The HELP line carries the original dotted
    instrument base name (family names mangle dots irreversibly), which
    is what the parser keys on.
    """
    _require_document(doc)
    # family name -> (type, help, [(label_str, suffix, value), ...])
    families: Dict[str, Dict[str, Any]] = {}

    def fam(name: str, kind: str, help_: str) -> Dict[str, Any]:
        entry = families.get(name)
        if entry is None:
            entry = families[name] = {
                "type": kind, "help": help_, "samples": []
            }
        return entry

    info = fam("repro_observation_info", "gauge", "observation metadata")
    info["samples"].append(
        (
            _label_str(
                [
                    ("title", str(doc.get("title", ""))),
                    ("registry", str(doc.get("registry", ""))),
                ]
            ),
            "",
            1,
        )
    )
    for name, value in doc.get("counters", {}).items():
        base, labels = split_labels(name)
        entry = fam(_metric_name(base), "counter", f"counter {base}")
        entry["samples"].append((_label_str(labels), "_total", value))
    for name, stats in doc.get("timers", {}).items():
        base, labels = split_labels(name)
        entry = fam(
            _metric_name(base, "_calls"), "counter", f"timer calls {base}"
        )
        entry["samples"].append((_label_str(labels), "_total", stats["calls"]))
    for name, state in doc.get("gauges", {}).items():
        base, labels = split_labels(name)
        entry = fam(_metric_name(base), "gauge", f"gauge {base}")
        entry["samples"].append((_label_str(labels), "", state["value"]))
        updates = fam(
            _metric_name(base, "_updates"), "gauge", f"gauge updates {base}"
        )
        updates["samples"].append((_label_str(labels), "", state["updates"]))
    for name, state in doc.get("histograms", {}).items():
        base, labels = split_labels(name)
        entry = fam(_metric_name(base), "summary", f"histogram {base}")
        entry["samples"].append((_label_str(labels), "_count", state["count"]))
        entry["samples"].append((_label_str(labels), "_sum", state["sum"]))
        for q, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
            qlabels = labels + [("quantile", q)]
            entry["samples"].append((_label_str(qlabels), "", state[key]))
        for stat in ("min", "max", "mean", "stddev"):
            extra = fam(
                _metric_name(base, f"_{stat}"),
                "gauge",
                f"histogram {stat} {base}",
            )
            extra["samples"].append((_label_str(labels), "", state[stat]))
    for name, state in doc.get("series", {}).items():
        base, labels = split_labels(name)
        samples = state["samples"]
        values = [v for _, v in samples]
        digest = fam(_metric_name(base), "gauge", f"series digest {base}")
        digest["samples"].append((_label_str(labels), "", samples[-1][1]))
        count = fam(
            _metric_name(base, "_samples"), "gauge", f"series samples {base}"
        )
        count["samples"].append((_label_str(labels), "", len(samples)))
        peak = fam(_metric_name(base, "_max"), "gauge", f"series max {base}")
        peak["samples"].append((_label_str(labels), "", max(values)))
        dropped = fam(
            _metric_name(base, "_dropped"), "gauge", f"series dropped {base}"
        )
        dropped["samples"].append((_label_str(labels), "", state["dropped"]))
    for name, state in doc.get("heatmaps", {}).items():
        base, labels = split_labels(name)
        cells = state["cells"]
        count = fam(
            _metric_name(base, "_cells"), "gauge", f"heatmap cells {base}"
        )
        count["samples"].append((_label_str(labels), "", len(cells)))
        total = fam(
            _metric_name(base, "_sum"), "gauge", f"heatmap sum {base}"
        )
        total["samples"].append(
            (_label_str(labels), "", sum(v for _, _, v in cells))
        )
        dropped = fam(
            _metric_name(base, "_dropped"), "gauge", f"heatmap dropped {base}"
        )
        dropped["samples"].append((_label_str(labels), "", state["dropped"]))

    lines: List[str] = []
    for name in sorted(families):
        entry = families[name]
        lines.append(f"# HELP {name} {_escape_exposition(entry['help'])}")
        lines.append(f"# TYPE {name} {entry['type']}")
        for label_str, suffix, value in sorted(
            entry["samples"], key=lambda s: (s[1], s[0])
        ):
            lines.append(f"{name}{suffix}{label_str} {_num(value)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# -- CSV ---------------------------------------------------------------------


def _csv_writer(buf: io.StringIO) -> Any:
    """One CSV dialect for writers and parsers: minimal quoting (point
    labels put commas and brackets inside instrument names, so naive
    ``",".join`` rows would be ambiguous), ``\\n`` line ends."""
    return csv.writer(buf, quoting=csv.QUOTE_MINIMAL, lineterminator="\n")


def series_csv(doc: Dict[str, Any]) -> str:
    """Long-form CSV of every time-series sample."""
    _require_document(doc)
    buf = io.StringIO()
    writer = _csv_writer(buf)
    writer.writerow(["series", "cycle", "value"])
    for name, state in sorted(doc.get("series", {}).items()):
        for cycle, value in state["samples"]:
            writer.writerow([name, cycle, _num(value)])
    return buf.getvalue()


def heatmap_csv(doc: Dict[str, Any]) -> str:
    """Long-form CSV of every heatmap cell (natural row order)."""
    _require_document(doc)
    buf = io.StringIO()
    writer = _csv_writer(buf)
    writer.writerow(["heatmap", "row", "cycle", "value"])
    for name, state in sorted(doc.get("heatmaps", {}).items()):
        cells = sorted(
            state["cells"], key=lambda c: (natural_key(c[0]), c[1])
        )
        for row, cycle, value in cells:
            writer.writerow([name, row, cycle, _num(value)])
    return buf.getvalue()


# -- JSON --------------------------------------------------------------------


def observe_json(doc: Dict[str, Any]) -> str:
    """Canonical JSON: sorted keys, stable indent, trailing newline."""
    _require_document(doc)
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


def load_observation(path: Union[str, Path]) -> Dict[str, Any]:
    """Load and validate an ``observe.json`` document.

    Raises
    ------
    ValueError
        On unparseable JSON, a wrong/missing schema tag, or a malformed
        instrument-name point label (the CLI maps this to exit code 2).
    """
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not JSON ({exc})") from exc
    _require_document(doc)
    try:
        for section in (
            "counters", "timers", "histograms", "gauges", "series", "heatmaps"
        ):
            for name in doc.get(section, {}):
                split_labels(name, strict=True)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from exc
    return doc


# -- round-trip parsers ------------------------------------------------------

#: HELP-text phrases mapping a family back to its document section and
#: field.  Matched longest-first so ``histogram min foo`` never parses
#: as a histogram named ``min foo``; instrument base names are dotted
#: identifiers (no spaces), which keeps the prefixes unambiguous.
_HELP_PHRASES: List[Tuple[str, str, str]] = sorted(
    [
        ("counter ", "counters", "value"),
        ("timer calls ", "timers", "calls"),
        ("gauge ", "gauges", "value"),
        ("gauge updates ", "gauges", "updates"),
        ("histogram ", "histograms", "summary"),
        ("histogram min ", "histograms", "min"),
        ("histogram max ", "histograms", "max"),
        ("histogram mean ", "histograms", "mean"),
        ("histogram stddev ", "histograms", "stddev"),
        ("series digest ", "series", "digest"),
        ("series samples ", "series", "samples"),
        ("series max ", "series", "max"),
        ("series dropped ", "series", "dropped"),
        ("heatmap cells ", "heatmaps", "cells"),
        ("heatmap sum ", "heatmaps", "sum"),
        ("heatmap dropped ", "heatmaps", "dropped"),
    ],
    key=lambda p: -len(p[0]),
)


def _parse_om_labels(text: str) -> List[Tuple[str, str]]:
    """Parse the inside of an OpenMetrics label block back into ordered
    ``(key, value)`` pairs, undoing :func:`_escape_exposition`."""
    labels: List[Tuple[str, str]] = []
    i, n = 0, len(text)
    while i < n:
        eq = text.index("=", i)
        key = text[i:eq]
        if text[eq + 1] != '"':
            raise ValueError(f"label {key!r} is not quoted")
        j = eq + 2
        buf: List[str] = []
        while j < n:
            ch = text[j]
            if ch == "\\" and j + 1 < n:
                nxt = text[j + 1]
                buf.append("\n" if nxt == "n" else nxt)
                j += 2
                continue
            if ch == '"':
                break
            buf.append(ch)
            j += 1
        if j >= n:
            raise ValueError("unterminated label value")
        labels.append((key, "".join(buf)))
        i = j + 1
        if i < n and text[i] == ",":
            i += 1
    return labels


def _parse_om_sample(line: str) -> Tuple[str, List[Tuple[str, str]], str]:
    """Split one sample line into (metric name, labels, value text)."""
    brace = None
    in_quotes = False
    i = 0
    while i < len(line):
        ch = line[i]
        if in_quotes:
            if ch == "\\":
                i += 2
                continue
            if ch == '"':
                in_quotes = False
        elif ch == '"':
            in_quotes = True
        elif ch == "{" and brace is None:
            brace = i
        elif ch == "}" and brace is not None:
            name = line[:brace]
            labels = _parse_om_labels(line[brace + 1 : i])
            return name, labels, line[i + 1 :].strip()
        i += 1
    name, _, value = line.rpartition(" ")
    return name, [], value.strip()


def _rebuild_name(base: str, labels: List[Tuple[str, str]]) -> str:
    """Reattach a ``point_label`` suffix: the exact inverse of
    :func:`split_labels` for labels produced by
    :func:`repro.telemetry.observe.point_label`."""
    if not labels:
        return base
    inner = ",".join(
        f"{k}={escape_label_value(v)}" for k, v in labels
    )
    return f"{base}[{inner}]"


def _parse_number(text: str) -> Union[int, float]:
    try:
        return int(text)
    except ValueError:
        return float(text)


def parse_openmetrics(text: str) -> Dict[str, Any]:
    """Parse :func:`to_openmetrics` output back into the scalar portion
    of its observation document.

    Series ``samples`` lists and heatmap ``cells`` lists come back empty
    (the text only carries their digests); merge the long-form CSVs via
    :func:`reconstruct_observation` to complete them.
    """
    doc: Dict[str, Any] = {
        "schema": OBSERVE_SCHEMA,
        "title": "observation",
        "registry": "repro",
        "counters": {},
        "timers": {},
        "histograms": {},
        "gauges": {},
        "series": {},
        "heatmaps": {},
    }
    section: Optional[str] = None
    field: Optional[str] = None
    family = ""
    for line in text.splitlines():
        if not line or line == "# EOF":
            continue
        if line.startswith("# TYPE "):
            continue
        if line.startswith("# HELP "):
            family, _, help_ = line[len("# HELP ") :].partition(" ")
            help_ = _unescape_exposition(help_)
            section = field = None
            for phrase, sec, fld in _HELP_PHRASES:
                if help_.startswith(phrase):
                    section, field = sec, fld
                    base = help_[len(phrase) :]
                    break
            continue
        name, labels, value_text = _parse_om_sample(line)
        if name.split("{")[0] == "repro_observation_info" or (
            family == "repro_observation_info" and name == family
        ):
            attrs = dict(labels)
            doc["title"] = attrs.get("title", doc["title"])
            doc["registry"] = attrs.get("registry", doc["registry"])
            continue
        if section is None:
            continue
        if section == "histograms" and field == "summary":
            if labels and labels[-1][0] == "quantile":
                q = labels[-1][1]
                key = {"0.5": "p50", "0.95": "p95", "0.99": "p99"}[q]
                labels = labels[:-1]
            elif name.endswith("_count"):
                key = "count"
            elif name.endswith("_sum"):
                key = "sum"
            else:
                continue
            inst = _rebuild_name(base, labels)
            state = doc["histograms"].setdefault(inst, {})
            state[key] = (
                int(value_text) if key == "count" else float(value_text)
            )
            continue
        inst = _rebuild_name(base, labels)
        if section == "counters":
            doc["counters"][inst] = _parse_number(value_text)
        elif section == "timers":
            doc["timers"][inst] = {"calls": int(value_text)}
        elif section == "gauges":
            state = doc["gauges"].setdefault(inst, {})
            state[field] = (
                int(value_text) if field == "updates" else float(value_text)
            )
        elif section == "histograms":
            doc["histograms"].setdefault(inst, {})[field] = float(value_text)
        elif section == "series":
            state = doc["series"].setdefault(
                inst, {"samples": [], "dropped": 0}
            )
            if field == "dropped":
                state["dropped"] = int(value_text)
        elif section == "heatmaps":
            state = doc["heatmaps"].setdefault(
                inst, {"cells": [], "dropped": 0}
            )
            if field == "dropped":
                state["dropped"] = int(value_text)
    return doc


def _parse_long_csv(
    text: str, header: List[str], parse_row
) -> Dict[str, List[Any]]:
    reader = csv.reader(io.StringIO(text))
    got = next(reader, None)
    if got != header:
        raise ValueError(f"bad CSV header: want {header}, got {got}")
    out: Dict[str, List[Any]] = {}
    for row in reader:
        if not row:
            continue
        if len(row) != len(header):
            raise ValueError(f"bad CSV row: {row!r}")
        out.setdefault(row[0], []).append(parse_row(row))
    return out


def parse_series_csv(text: str) -> Dict[str, List[List[Any]]]:
    """Parse :func:`series_csv` output: name -> sample rows."""
    return _parse_long_csv(
        text,
        ["series", "cycle", "value"],
        lambda row: [int(row[1]), float(row[2])],
    )


def parse_heatmap_csv(text: str) -> Dict[str, List[List[Any]]]:
    """Parse :func:`heatmap_csv` output: name -> cell rows."""
    return _parse_long_csv(
        text,
        ["heatmap", "row", "cycle", "value"],
        lambda row: [row[1], int(row[2]), float(row[3])],
    )


def reconstruct_observation(
    metrics_text: str,
    series_text: Optional[str] = None,
    heatmaps_text: Optional[str] = None,
) -> Dict[str, Any]:
    """Rebuild the canonical observation document from its rendered
    artifacts: the OpenMetrics text plus the two long-form CSVs.  The
    result compares equal (``==`` and canonical-JSON byte-equal) to the
    document the artifacts were rendered from."""
    doc = parse_openmetrics(metrics_text)
    if series_text is not None:
        for name, samples in parse_series_csv(series_text).items():
            state = doc["series"].setdefault(
                name, {"samples": [], "dropped": 0}
            )
            state["samples"] = samples
    if heatmaps_text is not None:
        for name, cells in parse_heatmap_csv(heatmaps_text).items():
            state = doc["heatmaps"].setdefault(
                name, {"cells": [], "dropped": 0}
            )
            state["cells"] = cells
    _require_document(doc)
    return doc


# -- bundle writer -----------------------------------------------------------


def write_observation(
    snapshot: Dict[str, Any],
    outdir: Union[str, Path],
    title: str = "observation",
) -> Dict[str, Path]:
    """Write the full observation bundle into ``outdir``.

    Returns the paths written: ``observe.json`` (the document),
    ``metrics.prom`` (OpenMetrics), ``series.csv`` / ``heatmaps.csv``
    (long-form data), and ``dashboard.html`` (self-contained report).
    """
    from repro.telemetry.dashboard import render_dashboard

    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    doc = observation_document(snapshot, title=title)
    paths = {
        "observe.json": observe_json(doc),
        "metrics.prom": to_openmetrics(doc),
        "series.csv": series_csv(doc),
        "heatmaps.csv": heatmap_csv(doc),
        "dashboard.html": render_dashboard(doc),
    }
    written = {}
    for name, content in paths.items():
        path = outdir / name
        path.write_text(content)
        written[name] = path
    return written


# -- human report ------------------------------------------------------------


def format_observe_report(doc: Dict[str, Any]) -> str:
    """Terminal summary of an observation document (``observe-report``)."""
    _require_document(doc)
    lines = [f"observation: {doc.get('title', '?')} [{doc['schema']}]"]
    gauges = doc.get("gauges", {})
    if gauges:
        lines.append("")
        lines.append(f"gauges ({len(gauges)}):")
        width = max(len(n) for n in gauges)
        for name, state in sorted(gauges.items()):
            lines.append(
                f"  {name:<{width}}  {_num(state['value']):>12}"
                f"  ({state['updates']} updates)"
            )
    series = doc.get("series", {})
    if series:
        lines.append("")
        lines.append(f"series ({len(series)}):")
        width = max(len(n) for n in series)
        for name, state in sorted(series.items()):
            samples = state["samples"]
            values = [v for _, v in samples]
            lines.append(
                f"  {name:<{width}}  {len(samples):>6} samples"
                f"  last={_num(samples[-1][1])}"
                f"  min={_num(min(values))}  max={_num(max(values))}"
                + (f"  dropped={state['dropped']}" if state["dropped"] else "")
            )
    heatmaps = doc.get("heatmaps", {})
    if heatmaps:
        lines.append("")
        lines.append(f"heatmaps ({len(heatmaps)}):")
        width = max(len(n) for n in heatmaps)
        for name, state in sorted(heatmaps.items()):
            cells = state["cells"]
            rows = {r for r, _, _ in cells}
            cycles = {c for _, c, _ in cells}
            lines.append(
                f"  {name:<{width}}  {len(rows):>4} rows x "
                f"{len(cycles):>4} cycles  sum={_num(sum(v for _, _, v in cells))}"
                + (f"  dropped={state['dropped']}" if state["dropped"] else "")
            )
    counters = doc.get("counters", {})
    if counters:
        lines.append("")
        lines.append(f"counters: {len(counters)} non-zero")
    dropped = observation_drops(doc)
    if dropped:
        total = sum(n for _, n in dropped)
        lines.append("")
        lines.append(
            f"WARNING: {total} observation(s) dropped across "
            f"{len(dropped)} instrument(s) — capacity caps hit; "
            "raise the sampling stride:"
        )
        for name, count in dropped:
            lines.append(f"  {name}: {count} dropped")
    return "\n".join(lines) + "\n"


def observation_drops(doc: Dict[str, Any]) -> List[Tuple[str, int]]:
    """Every instrument that shed data to a capacity cap, with its tally
    (sorted by name).  Feeds the ``observe-report`` warning block and
    the dashboard warning strip."""
    _require_document(doc)
    drops: List[Tuple[str, int]] = []
    for section in ("series", "heatmaps"):
        for name, state in doc.get(section, {}).items():
            if state.get("dropped"):
                drops.append((name, int(state["dropped"])))
    return sorted(drops)


def format_profile_report(doc: Dict[str, Any]) -> str:
    """Terminal summary of the self-profiling layer (``repro profile``):
    the ``profile.*`` stage timers and route-memo counters an enabled
    :class:`~repro.telemetry.profile.Profiler` left in the document.

    Stage wall times are inherently host-dependent, so this report —
    unlike the observation artifacts — is *not* byte-comparable across
    runs; it is a diagnosis surface, not a determinism one."""
    _require_document(doc)
    stages = {
        name: stats
        for name, stats in doc.get("histograms", {}).items()
        if name.startswith("profile.")
    }
    counters = {
        name: value
        for name, value in doc.get("counters", {}).items()
        if name.startswith("profile.")
    }
    lines = [f"self-profile: {doc.get('title', '?')} [{doc['schema']}]"]
    if not stages and not counters:
        lines.append("")
        lines.append("no profile data (re-run with profiling enabled)")
        return "\n".join(lines) + "\n"
    if stages:
        lines.append("")
        lines.append(f"stages ({len(stages)}):")
        width = max(len(n) for n in stages)
        for name, stats in sorted(stages.items()):
            lines.append(
                f"  {name:<{width}}  calls={stats['count']:>7}"
                f"  total={stats['sum']:.6f}s"
                f"  mean={stats['mean']:.6f}s"
                f"  p95={stats['p95']:.6f}s"
            )
    if counters:
        lines.append("")
        lines.append(f"counters ({len(counters)}):")
        width = max(len(n) for n in counters)
        for name, value in sorted(counters.items()):
            lines.append(f"  {name:<{width}}  {_num(value):>12}")
    return "\n".join(lines) + "\n"
