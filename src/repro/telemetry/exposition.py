"""Exporters for observation data: OpenMetrics, CSV, JSON, dashboard.

One registry snapshot becomes one **observation document** — a plain,
JSON-safe dict with a schema tag — and every exporter renders from that
document, never from live objects.  The document (and therefore every
rendering) is canonical:

* empty instruments are elided (``Registry.reset`` keeps instrument
  keys, and forked pool workers inherit the parent's names — without
  elision a parallel run would expose ghost families a fresh serial
  process lacks);
* wall-clock timer seconds are excluded (only call counts travel), so
  two runs of the same seed compare byte-for-byte no matter the host;
* families, samples and cells are sorted on stable keys.

These two rules are what make ``--observe`` output byte-identical
between a serial sweep and a ``--workers N`` one.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.telemetry.metrics import Histogram
from repro.telemetry.observe import natural_key

__all__ = [
    "OBSERVE_SCHEMA",
    "split_labels",
    "observation_document",
    "to_openmetrics",
    "series_csv",
    "heatmap_csv",
    "observe_json",
    "load_observation",
    "write_observation",
    "format_observe_report",
]

#: Version tag of the observation document format (bump on breaking change).
OBSERVE_SCHEMA = "repro.telemetry.observe/1"

_UNSAFE = re.compile(r"[^a-zA-Z0-9_]")
_LABEL_UNESCAPE = re.compile(r"\\(.)")


def _num(value: float) -> str:
    """Deterministic number rendering: integral floats as ints, the rest
    via ``repr`` (shortest round-trip, platform-independent)."""
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _split_unescaped(text: str, sep: str, maxsplit: Optional[int] = None) -> List[str]:
    """Split on ``sep`` wherever it is not backslash-escaped, keeping the
    escape sequences intact for a later unescape pass."""
    parts: List[str] = []
    buf: List[str] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch == "\\" and i + 1 < n:
            buf.append(ch)
            buf.append(text[i + 1])
            i += 2
            continue
        if ch == sep and (maxsplit is None or len(parts) < maxsplit):
            parts.append("".join(buf))
            buf = []
        else:
            buf.append(ch)
        i += 1
    parts.append("".join(buf))
    return parts


def split_labels(
    name: str, strict: bool = False
) -> Tuple[str, List[Tuple[str, str]]]:
    """Split ``"csd.used_channels[n=16,loc=0.5]"`` into the base name and
    its ``point_label`` attributes.

    The inverse of :func:`repro.telemetry.observe.point_label`: label
    values arrive backslash-unescaped, so a value that itself contained
    ``=``, ``,`` or a bracket round-trips.  A name without a suffix has
    no labels.  A malformed suffix (stray bracket, label part without a
    key) keeps the whole name verbatim as the base with no labels — or,
    with ``strict=True``, raises :class:`ValueError` (``observe-report``
    maps this to exit code 2).
    """
    open_idx: Optional[int] = None
    close_idx: Optional[int] = None
    err: Optional[str] = None
    i, n = 0, len(name)
    while i < n:
        ch = name[i]
        if ch == "\\":
            i += 2
            continue
        if ch == "[":
            if open_idx is not None:
                err = "second unescaped '['"
                break
            open_idx = i
        elif ch == "]":
            if open_idx is None:
                err = "']' before '['"
                break
            if close_idx is not None:
                err = "second unescaped ']'"
                break
            close_idx = i
        i += 1
    if err is None and open_idx is None:
        return name, []
    if err is None and (close_idx is None or close_idx != n - 1 or open_idx == 0):
        err = "label suffix must close exactly at the end of a base name"
    labels: List[Tuple[str, str]] = []
    if err is None:
        inner = name[open_idx + 1 : close_idx]
        for part in _split_unescaped(inner, ",") if inner else []:
            kv = _split_unescaped(part, "=", maxsplit=1)
            if len(kv) != 2 or not kv[0].strip():
                err = f"label part {part!r} is not k=v"
                break
            labels.append(
                (
                    _LABEL_UNESCAPE.sub(r"\1", kv[0].strip()),
                    _LABEL_UNESCAPE.sub(r"\1", kv[1].strip()),
                )
            )
    if err is not None:
        if strict:
            raise ValueError(f"malformed point label in {name!r}: {err}")
        return name, []
    return name[:open_idx], labels


def _metric_name(base: str, suffix: str = "") -> str:
    """OpenMetrics family name: ``repro_`` prefix, dots to underscores."""
    return "repro_" + _UNSAFE.sub("_", base.strip()) + suffix


def _label_str(labels: List[Tuple[str, str]]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_UNSAFE.sub("_", k)}="{v}"' for k, v in labels
    )
    return "{" + inner + "}"


def _hist_stats(values: List[float]) -> Dict[str, float]:
    h = Histogram("exposition.tmp", values=list(values))
    return {
        "count": h.count,
        "sum": float(h.total),
        "min": float(h.min),
        "max": float(h.max),
        "mean": float(h.mean),
        "stddev": float(h.stddev),
        "p50": float(h.percentile(50)),
        "p95": float(h.percentile(95)),
        "p99": float(h.percentile(99)),
    }


def observation_document(
    snapshot: Dict[str, Any], title: str = "observation"
) -> Dict[str, Any]:
    """Distill a :meth:`Registry.snapshot` into the canonical
    observation document every exporter renders from."""
    counters = {
        name: value
        for name, value in sorted(snapshot.get("counters", {}).items())
        if value
    }
    timers = {
        name: {"calls": stats["calls"]}
        for name, stats in sorted(snapshot.get("timers", {}).items())
        if stats.get("calls")
    }
    histograms = {
        name: _hist_stats(values)
        for name, values in sorted(snapshot.get("histograms", {}).items())
        if values
    }
    gauges = {
        name: {
            "value": float(state.get("value", 0.0)),
            "updates": int(state.get("updates", 0)),
        }
        for name, state in sorted(snapshot.get("gauges", {}).items())
        if state.get("updates")
    }
    series = {
        name: {
            "samples": [[int(c), float(v)] for c, v in state.get("samples", ())],
            "dropped": int(state.get("dropped", 0)),
        }
        for name, state in sorted(snapshot.get("series", {}).items())
        if state.get("samples")
    }
    heatmaps = {
        name: {
            "cells": [
                [str(r), int(c), float(v)] for r, c, v in state.get("cells", ())
            ],
            "dropped": int(state.get("dropped", 0)),
        }
        for name, state in sorted(snapshot.get("heatmaps", {}).items())
        if state.get("cells")
    }
    return {
        "schema": OBSERVE_SCHEMA,
        "title": title,
        "registry": snapshot.get("name", "repro"),
        "counters": counters,
        "timers": timers,
        "histograms": histograms,
        "gauges": gauges,
        "series": series,
        "heatmaps": heatmaps,
    }


def _require_document(doc: Dict[str, Any]) -> None:
    if not isinstance(doc, dict) or doc.get("schema") != OBSERVE_SCHEMA:
        raise ValueError(
            f"not an observation document (want schema {OBSERVE_SCHEMA!r}, "
            f"got {doc.get('schema') if isinstance(doc, dict) else type(doc).__name__!r})"
        )


# -- OpenMetrics -------------------------------------------------------------


def to_openmetrics(doc: Dict[str, Any]) -> str:
    """Render the document as OpenMetrics text exposition.

    Families are sorted by metric name; point labels parsed from the
    ``[k=v,...]`` instrument-name suffix become Prometheus labels.
    Series and heatmaps export scalar digests (their full data lives in
    the CSV/JSON artifacts); timers export call counts only — never
    wall seconds — to keep the text byte-comparable across runs.
    """
    _require_document(doc)
    # family name -> (type, help, [(label_str, suffix, value), ...])
    families: Dict[str, Dict[str, Any]] = {}

    def fam(name: str, kind: str, help_: str) -> Dict[str, Any]:
        entry = families.get(name)
        if entry is None:
            entry = families[name] = {
                "type": kind, "help": help_, "samples": []
            }
        return entry

    for name, value in doc.get("counters", {}).items():
        base, labels = split_labels(name)
        entry = fam(_metric_name(base), "counter", f"counter {base}")
        entry["samples"].append((_label_str(labels), "_total", value))
    for name, stats in doc.get("timers", {}).items():
        base, labels = split_labels(name)
        entry = fam(
            _metric_name(base, "_calls"), "counter", f"timer calls {base}"
        )
        entry["samples"].append((_label_str(labels), "_total", stats["calls"]))
    for name, state in doc.get("gauges", {}).items():
        base, labels = split_labels(name)
        entry = fam(_metric_name(base), "gauge", f"gauge {base}")
        entry["samples"].append((_label_str(labels), "", state["value"]))
    for name, state in doc.get("histograms", {}).items():
        base, labels = split_labels(name)
        entry = fam(_metric_name(base), "summary", f"histogram {base}")
        entry["samples"].append((_label_str(labels), "_count", state["count"]))
        entry["samples"].append((_label_str(labels), "_sum", state["sum"]))
        for q, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
            qlabels = labels + [("quantile", q)]
            entry["samples"].append((_label_str(qlabels), "", state[key]))
    for name, state in doc.get("series", {}).items():
        base, labels = split_labels(name)
        samples = state["samples"]
        values = [v for _, v in samples]
        digest = fam(_metric_name(base), "gauge", f"series digest {base}")
        digest["samples"].append((_label_str(labels), "", samples[-1][1]))
        count = fam(
            _metric_name(base, "_samples"), "gauge", f"series samples {base}"
        )
        count["samples"].append((_label_str(labels), "", len(samples)))
        peak = fam(_metric_name(base, "_max"), "gauge", f"series max {base}")
        peak["samples"].append((_label_str(labels), "", max(values)))
    for name, state in doc.get("heatmaps", {}).items():
        base, labels = split_labels(name)
        cells = state["cells"]
        count = fam(
            _metric_name(base, "_cells"), "gauge", f"heatmap cells {base}"
        )
        count["samples"].append((_label_str(labels), "", len(cells)))
        total = fam(
            _metric_name(base, "_sum"), "gauge", f"heatmap sum {base}"
        )
        total["samples"].append(
            (_label_str(labels), "", sum(v for _, _, v in cells))
        )

    lines: List[str] = []
    for name in sorted(families):
        entry = families[name]
        lines.append(f"# HELP {name} {entry['help']}")
        lines.append(f"# TYPE {name} {entry['type']}")
        for label_str, suffix, value in sorted(
            entry["samples"], key=lambda s: (s[1], s[0])
        ):
            lines.append(f"{name}{suffix}{label_str} {_num(value)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# -- CSV ---------------------------------------------------------------------


def series_csv(doc: Dict[str, Any]) -> str:
    """Long-form CSV of every time-series sample."""
    _require_document(doc)
    lines = ["series,cycle,value"]
    for name, state in sorted(doc.get("series", {}).items()):
        for cycle, value in state["samples"]:
            lines.append(f"{name},{cycle},{_num(value)}")
    return "\n".join(lines) + "\n"


def heatmap_csv(doc: Dict[str, Any]) -> str:
    """Long-form CSV of every heatmap cell (natural row order)."""
    _require_document(doc)
    lines = ["heatmap,row,cycle,value"]
    for name, state in sorted(doc.get("heatmaps", {}).items()):
        cells = sorted(
            state["cells"], key=lambda c: (natural_key(c[0]), c[1])
        )
        for row, cycle, value in cells:
            lines.append(f"{name},{row},{cycle},{_num(value)}")
    return "\n".join(lines) + "\n"


# -- JSON --------------------------------------------------------------------


def observe_json(doc: Dict[str, Any]) -> str:
    """Canonical JSON: sorted keys, stable indent, trailing newline."""
    _require_document(doc)
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


def load_observation(path: Union[str, Path]) -> Dict[str, Any]:
    """Load and validate an ``observe.json`` document.

    Raises
    ------
    ValueError
        On unparseable JSON, a wrong/missing schema tag, or a malformed
        instrument-name point label (the CLI maps this to exit code 2).
    """
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not JSON ({exc})") from exc
    _require_document(doc)
    try:
        for section in (
            "counters", "timers", "histograms", "gauges", "series", "heatmaps"
        ):
            for name in doc.get(section, {}):
                split_labels(name, strict=True)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from exc
    return doc


# -- bundle writer -----------------------------------------------------------


def write_observation(
    snapshot: Dict[str, Any],
    outdir: Union[str, Path],
    title: str = "observation",
) -> Dict[str, Path]:
    """Write the full observation bundle into ``outdir``.

    Returns the paths written: ``observe.json`` (the document),
    ``metrics.prom`` (OpenMetrics), ``series.csv`` / ``heatmaps.csv``
    (long-form data), and ``dashboard.html`` (self-contained report).
    """
    from repro.telemetry.dashboard import render_dashboard

    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    doc = observation_document(snapshot, title=title)
    paths = {
        "observe.json": observe_json(doc),
        "metrics.prom": to_openmetrics(doc),
        "series.csv": series_csv(doc),
        "heatmaps.csv": heatmap_csv(doc),
        "dashboard.html": render_dashboard(doc),
    }
    written = {}
    for name, content in paths.items():
        path = outdir / name
        path.write_text(content)
        written[name] = path
    return written


# -- human report ------------------------------------------------------------


def format_observe_report(doc: Dict[str, Any]) -> str:
    """Terminal summary of an observation document (``observe-report``)."""
    _require_document(doc)
    lines = [f"observation: {doc.get('title', '?')} [{doc['schema']}]"]
    gauges = doc.get("gauges", {})
    if gauges:
        lines.append("")
        lines.append(f"gauges ({len(gauges)}):")
        width = max(len(n) for n in gauges)
        for name, state in sorted(gauges.items()):
            lines.append(
                f"  {name:<{width}}  {_num(state['value']):>12}"
                f"  ({state['updates']} updates)"
            )
    series = doc.get("series", {})
    if series:
        lines.append("")
        lines.append(f"series ({len(series)}):")
        width = max(len(n) for n in series)
        for name, state in sorted(series.items()):
            samples = state["samples"]
            values = [v for _, v in samples]
            lines.append(
                f"  {name:<{width}}  {len(samples):>6} samples"
                f"  last={_num(samples[-1][1])}"
                f"  min={_num(min(values))}  max={_num(max(values))}"
                + (f"  dropped={state['dropped']}" if state["dropped"] else "")
            )
    heatmaps = doc.get("heatmaps", {})
    if heatmaps:
        lines.append("")
        lines.append(f"heatmaps ({len(heatmaps)}):")
        width = max(len(n) for n in heatmaps)
        for name, state in sorted(heatmaps.items()):
            cells = state["cells"]
            rows = {r for r, _, _ in cells}
            cycles = {c for _, c, _ in cells}
            lines.append(
                f"  {name:<{width}}  {len(rows):>4} rows x "
                f"{len(cycles):>4} cycles  sum={_num(sum(v for _, _, v in cells))}"
                + (f"  dropped={state['dropped']}" if state["dropped"] else "")
            )
    counters = doc.get("counters", {})
    if counters:
        lines.append("")
        lines.append(f"counters: {len(counters)} non-zero")
    return "\n".join(lines) + "\n"
