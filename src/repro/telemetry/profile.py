"""Self-profiling: stage timers for the engine and kernel fast paths.

The fast paths (route-memo resolution, vector kernel batches, cached
replay, pool dispatch) are exactly the places where a ``Timer`` per call
would distort what it measures.  This module follows the tracer's
zero-cost-when-disabled discipline instead: a :class:`Profiler` guard
that costs one attribute read when off, and a :func:`profile_stage`
context manager that records each stage's wall time into a
``profile.<stage>.seconds`` :class:`~repro.telemetry.metrics.Histogram`
only while profiling is enabled.  Histograms snapshot/merge like every
other instrument, so parallel workers' stage timings fold back into the
parent registry.
"""

from __future__ import annotations

import time

__all__ = ["Profiler", "ProfileStage", "NULL_STAGE"]


class Profiler:
    """The self-profiling switch — one attribute read per guarded site
    while disabled."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self.enabled = False


class ProfileStage:
    """Times one ``with`` block into a histogram (seconds).

    Records on exceptional exit too, like :class:`Scope` — a failing
    stage still spent the time.
    """

    __slots__ = ("_histogram", "_t0")

    def __init__(self, histogram) -> None:
        self._histogram = histogram
        self._t0 = 0.0

    def __enter__(self) -> "ProfileStage":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._histogram.observe(time.perf_counter() - self._t0)
        return False


class _NullStage:
    """Shared do-nothing stage returned while profiling is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullStage":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_STAGE = _NullStage()
