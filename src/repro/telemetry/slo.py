"""Deterministic SLO evaluation over sliding virtual-cycle windows.

An SLO here is a **declarative objective** over the resident fabric
service's completion records: "p99 request latency stays under N
cycles", "the rejection rate stays under X", "fabric utilization stays
above Y".  Objectives are loaded from a small TOML/JSON spec, evaluated
over fixed-width windows of the **virtual cycle** axis (never wall
time — see DESIGN.md, "Why SLO windows run on virtual cycles"), and
folded into an error-budget / burn-rate report:

* a window **violates** its objective when the windowed metric crosses
  the threshold;
* the **error budget** is the fraction of evaluated windows the spec
  allows to violate (``budget``);
* the **burn rate** is ``violations / (budget * windows)`` — above 1.0
  the budget is exhausted and the objective is **breached** (that is
  what makes ``repro slo-report`` exit 1).

Every input is an integer cycle or a seed-deterministic count, every
aggregation iterates canonically-sorted records, and the report renders
through the same sorted-keys JSON discipline as every other canonical
artifact — so the same load produces a byte-identical SLO report across
reruns and transports.

The TOML loader accepts a deliberately small subset (``[[objective]]``
tables of ``key = value`` scalars) parsed by a built-in reader, so the
spec format works on every supported Python without ``tomllib``.
JSON specs (``{"objective": [...]}``) are always accepted.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.telemetry.observe import point_label

__all__ = [
    "SLO_REPORT_SCHEMA",
    "OBJECTIVE_KINDS",
    "Objective",
    "parse_spec",
    "load_spec",
    "evaluate_slos",
    "slo_report_json",
    "format_slo_report",
    "record_slo_observation",
]

#: Version tag of the canonical SLO report (bump on breaking change).
SLO_REPORT_SCHEMA = "repro.telemetry.slo/1"

#: The windowed metrics an objective may target.
OBJECTIVE_KINDS = ("latency_p99", "rejection_rate", "utilization_floor")

#: Evaluating more windows than this means the window width is far too
#: small for the makespan; refuse rather than build a megabyte report.
_MAX_WINDOWS = 100_000


@dataclass(frozen=True)
class Objective:
    """One declarative objective over windowed service metrics."""

    name: str
    kind: str
    #: Threshold the windowed metric is compared against: an upper bound
    #: for ``latency_p99`` (cycles) and ``rejection_rate`` (fraction), a
    #: lower bound for ``utilization_floor`` (fraction).
    threshold: float
    #: Width of the evaluation windows on the virtual-cycle axis.
    window_cycles: int
    #: Fraction of evaluated windows allowed to violate before the
    #: error budget is exhausted.
    budget: float
    #: ``"fleet"`` evaluates one metric over all tenants per window;
    #: ``"tenant"`` evaluates each tenant's own windows and sums them.
    scope: str = "fleet"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("objective needs a non-empty name")
        if self.kind not in OBJECTIVE_KINDS:
            raise ValueError(
                f"objective {self.name!r}: unknown kind {self.kind!r} "
                f"(want one of {list(OBJECTIVE_KINDS)})"
            )
        if self.window_cycles < 1:
            raise ValueError(
                f"objective {self.name!r}: window_cycles must be >= 1"
            )
        if not 0.0 < self.budget <= 1.0:
            raise ValueError(
                f"objective {self.name!r}: budget must be in (0, 1], "
                f"got {self.budget!r}"
            )
        if self.scope not in ("fleet", "tenant"):
            raise ValueError(
                f"objective {self.name!r}: scope must be 'fleet' or "
                f"'tenant', got {self.scope!r}"
            )
        if self.kind == "utilization_floor" and self.scope != "fleet":
            raise ValueError(
                f"objective {self.name!r}: utilization_floor is a "
                "whole-fabric metric; scope must be 'fleet'"
            )


# -- spec loading ------------------------------------------------------------


def parse_spec(data: Mapping[str, Any]) -> List[Objective]:
    """Build objectives from a parsed spec document.

    The document carries a list of objective tables under ``objective``
    (mirroring TOML's ``[[objective]]``); ``objectives`` is accepted as
    an alias.  Raises :class:`ValueError` on anything malformed.
    """
    tables = data.get("objective", data.get("objectives"))
    if not isinstance(tables, list) or not tables:
        raise ValueError(
            "spec needs a non-empty [[objective]] list "
            "(JSON: {\"objective\": [...]})"
        )
    objectives: List[Objective] = []
    seen = set()
    for index, table in enumerate(tables):
        if not isinstance(table, Mapping):
            raise ValueError(f"objective #{index} is not a table")
        known = {"name", "kind", "threshold", "window", "window_cycles",
                 "budget", "scope"}
        unknown = set(table) - known
        if unknown:
            raise ValueError(
                f"objective #{index}: unknown key(s) {sorted(unknown)}"
            )
        for key in ("name", "kind", "threshold", "budget"):
            if key not in table:
                raise ValueError(f"objective #{index}: missing {key!r}")
        window = table.get("window_cycles", table.get("window"))
        if not isinstance(window, int) or isinstance(window, bool):
            raise ValueError(
                f"objective #{index}: needs an integer 'window' "
                f"(cycles), got {window!r}"
            )
        if not isinstance(table["threshold"], (int, float)) or isinstance(
            table["threshold"], bool
        ):
            raise ValueError(
                f"objective #{index}: 'threshold' must be a number"
            )
        if not isinstance(table["budget"], (int, float)) or isinstance(
            table["budget"], bool
        ):
            raise ValueError(f"objective #{index}: 'budget' must be a number")
        objective = Objective(
            name=str(table["name"]),
            kind=str(table["kind"]),
            threshold=float(table["threshold"]),
            window_cycles=window,
            budget=float(table["budget"]),
            scope=str(table.get("scope", "fleet")),
        )
        if objective.name in seen:
            raise ValueError(f"duplicate objective name {objective.name!r}")
        seen.add(objective.name)
        objectives.append(objective)
    return objectives


def load_spec(path: Union[str, Path]) -> List[Objective]:
    """Load a spec file: ``.json`` via the JSON parser, anything else
    through the built-in TOML-subset reader."""
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    if path.suffix.lower() == ".json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not JSON ({exc})") from exc
        if not isinstance(data, dict):
            raise ValueError(f"{path}: spec must be a JSON object")
    else:
        data = _parse_mini_toml(text, source=str(path))
    return parse_spec(data)


def _parse_toml_value(text: str, where: str) -> Any:
    """One scalar of the TOML subset: string, bool, int, or float."""
    if text.startswith('"'):
        end = text.find('"', 1)
        rest = text[end + 1 :].strip() if end != -1 else ""
        if end == -1 or (rest and not rest.startswith("#")):
            raise ValueError(f"{where}: cannot parse string {text!r}")
        return text[1:end]
    # strip a trailing comment off non-string values
    text = text.split("#", 1)[0].strip()
    if text == "true":
        return True
    if text == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise ValueError(f"{where}: cannot parse value {text!r}") from None


def _parse_mini_toml(text: str, source: str = "<spec>") -> Dict[str, Any]:
    """The TOML subset the spec loader understands on every Python:
    ``[[table]]`` array headers, ``[table]`` headers, ``key = value``
    scalars (quoted strings, booleans, ints, floats), comments, and
    blank lines.  Nothing else — a spec is configuration, not a
    document format."""
    root: Dict[str, Any] = {}
    current: Dict[str, Any] = root
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        where = f"{source}:{lineno}"
        if not line or line.startswith("#"):
            continue
        if line.startswith("[[") and line.endswith("]]"):
            key = line[2:-2].strip()
            if not key:
                raise ValueError(f"{where}: empty table-array header")
            tables = root.setdefault(key, [])
            if not isinstance(tables, list):
                raise ValueError(f"{where}: {key!r} is not a table array")
            current = {}
            tables.append(current)
        elif line.startswith("[") and line.endswith("]"):
            key = line[1:-1].strip()
            if not key:
                raise ValueError(f"{where}: empty table header")
            table = root.setdefault(key, {})
            if not isinstance(table, dict):
                raise ValueError(f"{where}: {key!r} is not a table")
            current = table
        elif "=" in line:
            key, _, value = line.partition("=")
            key = key.strip()
            if not key:
                raise ValueError(f"{where}: missing key before '='")
            current[key] = _parse_toml_value(value.strip(), where)
        else:
            raise ValueError(f"{where}: cannot parse line {raw!r}")
    return root


# -- evaluation --------------------------------------------------------------


def _percentile(ordered: Sequence[float], p: int) -> float:
    """Nearest-rank percentile of an ascending sequence (0 when empty)."""
    if not ordered:
        return 0.0
    rank = max(1, -(-len(ordered) * p // 100))
    return float(ordered[rank - 1])


def _window_index(completion: int, width: int, n_windows: int) -> int:
    """Window holding ``completion``; the last window is right-closed so
    the makespan-defining record stays in range."""
    return min(completion // width, n_windows - 1)


def _group_records(
    records: Sequence[Mapping[str, Any]], scope: str
) -> Dict[str, List[Mapping[str, Any]]]:
    if scope == "tenant":
        groups: Dict[str, List[Mapping[str, Any]]] = {}
        for record in records:
            groups.setdefault(record["tenant"], []).append(record)
        return {name: groups[name] for name in sorted(groups)}
    return {"": list(records)}


def _latency_windows(
    records: Sequence[Mapping[str, Any]],
    objective: Objective,
    n_windows: int,
) -> Tuple[Dict[str, Dict[str, Any]], List[int], List[int]]:
    """Per-group window evaluation for ``latency_p99``."""
    evaluated = [0] * n_windows
    violations = [0] * n_windows
    per_group: Dict[str, Dict[str, Any]] = {}
    for group, mine in _group_records(records, objective.scope).items():
        buckets: Dict[int, List[int]] = {}
        for record in mine:
            if not record["ok"]:
                continue
            index = _window_index(
                record["completion_cycle"], objective.window_cycles, n_windows
            )
            buckets.setdefault(index, []).append(record["latency_cycles"])
        group_windows = 0
        group_violations = 0
        worst = 0.0
        for index, latencies in sorted(buckets.items()):
            p99 = _percentile(sorted(latencies), 99)
            worst = max(worst, p99)
            evaluated[index] += 1
            group_windows += 1
            if p99 > objective.threshold:
                violations[index] += 1
                group_violations += 1
        per_group[group] = {
            "windows": group_windows,
            "violations": group_violations,
            "worst": worst,
        }
    return per_group, evaluated, violations


def _rejection_windows(
    records: Sequence[Mapping[str, Any]],
    objective: Objective,
    n_windows: int,
) -> Tuple[Dict[str, Dict[str, Any]], List[int], List[int]]:
    """Per-group window evaluation for ``rejection_rate``."""
    evaluated = [0] * n_windows
    violations = [0] * n_windows
    per_group: Dict[str, Dict[str, Any]] = {}
    for group, mine in _group_records(records, objective.scope).items():
        totals: Dict[int, List[int]] = {}  # index -> [total, rejected]
        for record in mine:
            index = _window_index(
                record["completion_cycle"], objective.window_cycles, n_windows
            )
            cell = totals.setdefault(index, [0, 0])
            cell[0] += 1
            if not record["ok"]:
                cell[1] += 1
        group_windows = 0
        group_violations = 0
        worst = 0.0
        for index, (total, rejected) in sorted(totals.items()):
            rate = rejected / total
            worst = max(worst, rate)
            evaluated[index] += 1
            group_windows += 1
            if rate > objective.threshold:
                violations[index] += 1
                group_violations += 1
        per_group[group] = {
            "windows": group_windows,
            "violations": group_violations,
            "worst": worst,
        }
    return per_group, evaluated, violations


def _occupancy_steps(
    records: Sequence[Mapping[str, Any]],
) -> List[Tuple[int, int]]:
    """Per-tenant ``(completion, owned_clusters)`` step functions merged
    into one sorted list of steps per tenant boundary.

    Raises :class:`ValueError` when a record predates the
    ``owned_clusters`` envelope field — utilization objectives need it.
    """
    steps: List[Tuple[int, int]] = []
    by_tenant: Dict[str, List[Mapping[str, Any]]] = {}
    for record in records:
        if record["ok"]:
            by_tenant.setdefault(record["tenant"], []).append(record)
    for name in sorted(by_tenant):
        mine = sorted(
            by_tenant[name], key=lambda r: (r["completion_cycle"], r["seq"])
        )
        for record in mine:
            if "owned_clusters" not in record:
                raise ValueError(
                    "records lack 'owned_clusters' (recorded by an older "
                    "service?) — utilization objectives cannot be evaluated"
                )
        steps.append((-1, 0))  # sentinel: new tenant, owns nothing
        steps.extend(
            (r["completion_cycle"], r["owned_clusters"]) for r in mine
        )
    return steps


def _utilization_windows(
    records: Sequence[Mapping[str, Any]],
    objective: Objective,
    n_windows: int,
    makespan: int,
    clusters: int,
) -> Tuple[Dict[str, Dict[str, Any]], List[int], List[int]]:
    """Window evaluation for ``utilization_floor`` (fleet scope only).

    Each tenant's occupancy is a step function of its own completions
    (``owned_clusters`` after each op); integrating the steps over every
    window and dividing by ``clusters * window_span`` reproduces exactly
    the occupancy integral the server accounts into ``cluster_cycles``.
    """
    width = objective.window_cycles
    cycles = [0.0] * n_windows

    def integrate(lo: int, hi: int, owned: int) -> None:
        if owned <= 0 or hi <= lo:
            return
        first = min(lo // width, n_windows - 1)
        last = min((hi - 1) // width, n_windows - 1)
        for index in range(first, last + 1):
            w_lo = index * width
            w_hi = makespan if index == n_windows - 1 else (index + 1) * width
            overlap = min(hi, w_hi) - max(lo, w_lo)
            if overlap > 0:
                cycles[index] += owned * overlap

    prev_cycle: Optional[int] = None
    prev_owned = 0
    for cycle, owned in _occupancy_steps(records) + [(-1, 0)]:
        if cycle == -1:  # sentinel: close out the previous tenant
            if prev_cycle is not None:
                integrate(prev_cycle, makespan, prev_owned)
            prev_cycle, prev_owned = None, 0
            continue
        if prev_cycle is not None:
            integrate(prev_cycle, cycle, prev_owned)
        prev_cycle, prev_owned = cycle, owned

    evaluated = [1] * n_windows
    violations = [0] * n_windows
    worst = 1.0
    for index in range(n_windows):
        w_lo = index * width
        w_hi = makespan if index == n_windows - 1 else (index + 1) * width
        span = max(1, w_hi - w_lo)
        utilization = cycles[index] / (clusters * span)
        worst = min(worst, utilization)
        if utilization < objective.threshold:
            violations[index] = 1
    per_group = {
        "": {
            "windows": n_windows,
            "violations": sum(violations),
            "worst": worst,
        }
    }
    return per_group, evaluated, violations


def evaluate_slos(
    objectives: Sequence[Objective],
    records: Sequence[Mapping[str, Any]],
    clusters: int,
) -> Dict[str, Any]:
    """Evaluate every objective over a load run's completion records.

    ``records`` are response envelopes (any order — they are re-sorted
    canonically); ``clusters`` is the die size utilization is measured
    against.  Returns the canonical SLO report document.
    """
    if clusters < 1:
        raise ValueError("clusters must be >= 1")
    records = sorted(records, key=lambda r: (r["tenant"], r["seq"]))
    makespan = max((r["completion_cycle"] for r in records), default=0)

    out_objectives: List[Dict[str, Any]] = []
    for objective in objectives:
        width = objective.window_cycles
        n_windows = -(-makespan // width) if makespan else 0
        if n_windows > _MAX_WINDOWS:
            raise ValueError(
                f"objective {objective.name!r}: {n_windows} windows of "
                f"{width} cycles over a {makespan}-cycle run exceeds the "
                f"{_MAX_WINDOWS}-window cap — widen the window"
            )
        if n_windows == 0:
            per_group: Dict[str, Dict[str, Any]] = {}
            evaluated: List[int] = []
            violations: List[int] = []
        elif objective.kind == "latency_p99":
            per_group, evaluated, violations = _latency_windows(
                records, objective, n_windows
            )
        elif objective.kind == "rejection_rate":
            per_group, evaluated, violations = _rejection_windows(
                records, objective, n_windows
            )
        else:  # utilization_floor
            per_group, evaluated, violations = _utilization_windows(
                records, objective, n_windows, makespan, clusters
            )
        total_windows = sum(evaluated)
        total_violations = sum(violations)
        allowed = objective.budget * total_windows
        burn_rate = total_violations / allowed if allowed > 0 else 0.0
        entry: Dict[str, Any] = {
            "name": objective.name,
            "kind": objective.kind,
            "scope": objective.scope,
            "threshold": objective.threshold,
            "window_cycles": width,
            "budget": objective.budget,
            "windows": total_windows,
            "violations": total_violations,
            "burn_rate": burn_rate,
            "budget_remaining": 1.0 - burn_rate,
            "breached": burn_rate > 1.0,
            "windows_detail": [
                [index * width, evaluated[index], violations[index]]
                for index in range(n_windows)
            ],
        }
        if objective.scope == "tenant":
            entry["per_tenant"] = {
                group: dict(stats) for group, stats in per_group.items()
            }
        out_objectives.append(entry)
    return {
        "schema": SLO_REPORT_SCHEMA,
        "clusters": clusters,
        "makespan_cycles": makespan,
        "objectives": out_objectives,
        "breached": any(o["breached"] for o in out_objectives),
    }


# -- rendering ---------------------------------------------------------------


def slo_report_json(report: Dict[str, Any]) -> str:
    """Render an SLO report canonically (sorted keys, trailing newline)."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def format_slo_report(report: Dict[str, Any]) -> str:
    """Terminal summary: one line per objective plus the verdict."""
    lines = [
        f"slo: {len(report['objectives'])} objective(s) over "
        f"{report['makespan_cycles']} cycles "
        f"({report['clusters']} clusters)"
    ]
    for entry in report["objectives"]:
        verdict = "BREACHED" if entry["breached"] else "ok"
        lines.append(
            f"  {entry['name']} [{entry['kind']}/{entry['scope']}] "
            f"window={entry['window_cycles']} "
            f"violations={entry['violations']}/{entry['windows']} "
            f"burn={entry['burn_rate']:.3f} "
            f"budget_remaining={entry['budget_remaining']:.3f} {verdict}"
        )
    lines.append(
        "slo: error budget exhausted"
        if report["breached"]
        else "slo: all error budgets hold"
    )
    return "\n".join(lines) + "\n"


def record_slo_observation(report: Dict[str, Any]) -> None:
    """Mirror an SLO report into the default registry's instruments so
    the dashboard can render budget-burn strips next to the service
    series: per-objective ``slo.burn_rate`` / ``slo.budget_remaining`` /
    ``slo.breached`` gauges and a ``slo.window_violations`` series (one
    sample per window, at the window's start cycle)."""
    from repro import telemetry

    for entry in report["objectives"]:
        label = point_label(objective=entry["name"])
        telemetry.gauge(f"slo.burn_rate{label}").set(entry["burn_rate"])
        telemetry.gauge(f"slo.budget_remaining{label}").set(
            entry["budget_remaining"]
        )
        telemetry.gauge(f"slo.breached{label}").set(
            1.0 if entry["breached"] else 0.0
        )
        series = telemetry.time_series(f"slo.window_violations{label}")
        for start, _evaluated, violations in entry["windows_detail"]:
            series.record(start, float(violations))
