"""Benchmark baselines and the regression guard over them.

``record_baseline`` runs a small canonical configuration of one of the
two headline benches (the Figure 3 sweep, the fault campaign) and
captures two kinds of numbers:

* **deterministic** metrics — used/blocked channel counts, survival
  fractions, p95 recovery latency *in simulated cycles*.  These derive
  only from the seed, so any drift means the simulation's behaviour
  changed, and the guard flags them near-exactly (recovery latency gets
  a small tolerance because it is the quantity the paper's fault story
  is judged on — a threshold, not an identity).
* **wall-clock** metrics — points-per-second throughput.  These are
  machine-dependent; the guard compares them with a relative tolerance
  and CI can skip them entirely (``--skip-wallclock``) so a slow runner
  never produces a false alarm while local runs still catch real
  slowdowns.

The recorded ``BENCH_fig3.json`` / ``BENCH_faults.json`` files live at
the repo root; ``check_baseline`` re-runs the configuration they embed
and returns a list of regression descriptions (empty = pass).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.telemetry.observe import point_label

__all__ = [
    "BASELINE_SCHEMA",
    "BENCHES",
    "record_baseline",
    "measure_bench",
    "check_baseline",
    "load_baseline",
    "write_baseline",
]

#: Version tag of the baseline file format (bump on breaking change).
BASELINE_SCHEMA = "repro.telemetry.baseline/1"

#: Canonical (small, seconds-scale) configurations per bench.
BENCHES: Dict[str, Dict[str, Any]] = {
    "fig3": {
        "n_objects": [16, 32],
        "localities": [1.0, 0.5, 0.0],
        "n_trials": 3,
        "seed": 42,
    },
    "faults": {
        "rates": [0.0, 0.1],
        "n_objects": [16],
        "n_trials": 3,
        "seed": 42,
    },
}

#: Deterministic metrics matching this substring are latency thresholds,
#: checked with ``latency_tolerance`` instead of exact equality.
_LATENCY_MARKER = "recovery_p95"

#: Absolute slack (simulated cycles) under the latency check, so a zero
#: baseline still has a meaningful threshold.
_LATENCY_SLACK_CYCLES = 2.0


def measure_bench(bench: str, config: Dict[str, Any]) -> Dict[str, Any]:
    """Run one bench configuration; returns deterministic + wall-clock
    measurements in the baseline's shape."""
    if bench == "fig3":
        from repro.csd.simulator import figure3_series

        start = time.perf_counter()
        series = figure3_series(
            localities=list(config["localities"]),
            n_trials=int(config["n_trials"]),
            seed=int(config["seed"]),
            n_objects_list=list(config["n_objects"]),
        )
        elapsed = time.perf_counter() - start
        deterministic: Dict[str, float] = {}
        n_points = 0
        for n, points in sorted(series.items()):
            for point in points:
                label = point_label(n=n, loc=point.locality_knob)
                deterministic[f"fig3.used_channels{label}"] = float(
                    point.used_channels
                )
                deterministic[f"fig3.blocked{label}"] = float(point.blocked)
                n_points += 1
    elif bench == "faults":
        from repro.faults.campaign import run_campaign

        start = time.perf_counter()
        report = run_campaign(
            rates=list(config["rates"]),
            n_objects_list=list(config["n_objects"]),
            n_trials=int(config["n_trials"]),
            seed=int(config["seed"]),
        )
        elapsed = time.perf_counter() - start
        deterministic = {}
        n_points = 0
        for point in report["points"]:
            label = point_label(n=point["n_objects"], rate=point["rate"])
            deterministic[f"faults.survival{label}"] = float(point["survival"])
            deterministic[f"faults.recovery_p95{label}"] = float(
                point["recovery_cycles"]["p95"]
            )
            n_points += 1
    else:
        raise ValueError(f"unknown bench {bench!r} (want one of {sorted(BENCHES)})")
    elapsed = max(elapsed, 1e-9)
    return {
        "deterministic": deterministic,
        "wallclock": {
            "elapsed_s": elapsed,
            "points_per_s": n_points / elapsed,
        },
    }


def record_baseline(
    bench: str, config: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Measure ``bench`` and wrap the result as a baseline document."""
    if config is None:
        config = BENCHES[bench] if bench in BENCHES else None
    if config is None:
        raise ValueError(f"unknown bench {bench!r} (want one of {sorted(BENCHES)})")
    measured = measure_bench(bench, config)
    return {
        "schema": BASELINE_SCHEMA,
        "bench": bench,
        "config": config,
        "deterministic": measured["deterministic"],
        "wallclock": measured["wallclock"],
    }


def check_baseline(
    baseline: Dict[str, Any],
    measured: Optional[Dict[str, Any]] = None,
    throughput_tolerance: float = 0.15,
    latency_tolerance: float = 0.15,
    skip_wallclock: bool = False,
) -> List[str]:
    """Compare a fresh measurement against a recorded baseline.

    Returns human-readable regression descriptions; an empty list means
    the baseline holds.  ``measured`` defaults to re-running the
    baseline's own configuration.  A 20% synthetic throughput drop or a
    20% synthetic p95-latency inflation fails at the default 15%
    tolerances — that is the guard's acceptance contract.
    """
    if not isinstance(baseline, dict) or baseline.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"not a baseline document (want schema {BASELINE_SCHEMA!r})"
        )
    if measured is None:
        measured = measure_bench(baseline["bench"], baseline["config"])
    regressions: List[str] = []
    base_det = baseline.get("deterministic", {})
    got_det = measured.get("deterministic", {})
    for name in sorted(base_det):
        expected = float(base_det[name])
        if name not in got_det:
            regressions.append(f"{name}: missing from measurement")
            continue
        actual = float(got_det[name])
        if _LATENCY_MARKER in name:
            limit = expected * (1.0 + latency_tolerance) + _LATENCY_SLACK_CYCLES
            if actual > limit:
                regressions.append(
                    f"{name}: p95 recovery latency {actual:g} cycles exceeds "
                    f"baseline {expected:g} (limit {limit:g})"
                )
        elif abs(actual - expected) > 1e-9:
            regressions.append(
                f"{name}: deterministic metric changed "
                f"{expected:g} -> {actual:g}"
            )
    for name in sorted(got_det):
        if name not in base_det:
            regressions.append(f"{name}: new metric absent from baseline")
    if not skip_wallclock:
        base_tp = float(baseline.get("wallclock", {}).get("points_per_s", 0.0))
        got_tp = float(measured.get("wallclock", {}).get("points_per_s", 0.0))
        if base_tp > 0 and got_tp < base_tp * (1.0 - throughput_tolerance):
            regressions.append(
                f"throughput: {got_tp:.2f} points/s is more than "
                f"{throughput_tolerance:.0%} below baseline {base_tp:.2f}"
            )
    return regressions


def load_baseline(path: Union[str, Path]) -> Dict[str, Any]:
    """Load and validate a ``BENCH_*.json`` baseline.

    Raises
    ------
    ValueError
        On unparseable JSON or a wrong schema tag (CLI exit code 2).
    """
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not JSON ({exc})") from exc
    if not isinstance(doc, dict) or doc.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{path}: not a baseline document (want schema {BASELINE_SCHEMA!r})"
        )
    return doc


def write_baseline(baseline: Dict[str, Any], path: Union[str, Path]) -> Path:
    """Canonical serialization: sorted keys, indent 2, trailing newline."""
    path = Path(path)
    path.write_text(json.dumps(baseline, sort_keys=True, indent=2) + "\n")
    return path
