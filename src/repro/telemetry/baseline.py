"""Benchmark baselines and the regression guard over them.

``record_baseline`` runs a small canonical configuration of one of the
headline benches (the Figure 3 sweep, the fault campaign, the sweep
engine's warm-vs-cold speedup) and captures two kinds of numbers:

* **deterministic** metrics — used/blocked channel counts, survival
  fractions, p95 recovery latency *in simulated cycles*.  These derive
  only from the seed, so any drift means the simulation's behaviour
  changed, and the guard flags them near-exactly (recovery latency gets
  a small tolerance because it is the quantity the paper's fault story
  is judged on — a threshold, not an identity).
* **wall-clock** metrics — points-per-second throughput.  These are
  machine-dependent; the guard compares them with a relative tolerance
  and CI can skip them entirely (``--skip-wallclock``) so a slow runner
  never produces a false alarm while local runs still catch real
  slowdowns.

The ``engine`` bench is special: it runs the Figure 3 configuration
twice on one :class:`repro.engine.SweepEngine` — cold, then warm — plus
once on the legacy serial path.  Its deterministic metrics include two
identity bits (warm == cold, engine == legacy) so a byte-identity break
fails the guard even under ``--skip-wallclock``; its wall-clock section
carries ``cold_s`` / ``warm_s`` / ``speedup``, and the guard requires
the warm run to be at least ``2x`` faster unless wall-clock checks are
skipped.

The ``megascale`` bench guards the vector CSD kernel the same way:
identity bits (vector == legacy at small N, identical grant streams in
the speedup harness, and a sampled-run bit asserting the vector engine
emits the byte-identical observation document the live sweep emits), a
deterministic mega-N (1024-4096) channel-demand series, and a
wall-clock ``kernel_speedup`` that must stay above ``50x`` unless
wall-clock checks are skipped.

The ``service`` bench drives the seeded multi-tenant load of
``repro service-load`` twice in-process and records two identity bits
(byte-identical reports, byte-identical SLO reports) plus the report's
latency percentiles — in simulated cycles, so they are deterministic
metrics, not wall-clock ones — per-tenant p99s, rejection counts,
fabric utilization, and the exact per-objective SLO burn rates.

The ``planner`` bench prices the shared defrag scenario suite
(:mod:`repro.planner.scenarios`) under every strategy and records three
identity/quality bits — the naive plan's moves must match the legacy
``Defragmenter`` execution exactly, the minimal plan must be strictly
cheaper than naive on every scenario, and the exact solver must never
be worse than greedy — plus each scenario's exact cost totals, so any
drop in ``rewires_saved`` is a deterministic regression.

The recorded ``BENCH_fig3.json`` / ``BENCH_faults.json`` /
``BENCH_engine.json`` / ``BENCH_megascale.json`` /
``BENCH_service.json`` / ``BENCH_planner.json`` files live at the repo
root; ``check_baseline`` re-runs the configuration they embed and
returns a list of regression descriptions (empty = pass).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.telemetry.observe import point_label

__all__ = [
    "BASELINE_SCHEMA",
    "BENCHES",
    "record_baseline",
    "measure_bench",
    "check_baseline",
    "load_baseline",
    "write_baseline",
]

#: Version tag of the baseline file format (bump on breaking change).
BASELINE_SCHEMA = "repro.telemetry.baseline/1"

#: Canonical (small, seconds-scale) configurations per bench.
BENCHES: Dict[str, Dict[str, Any]] = {
    "fig3": {
        "n_objects": [16, 32],
        "localities": [1.0, 0.5, 0.0],
        "n_trials": 3,
        "seed": 42,
    },
    "faults": {
        "rates": [0.0, 0.1],
        "n_objects": [16],
        "n_trials": 3,
        "seed": 42,
    },
    # the sweep engine's acceptance configuration: the N=256 sweep must
    # run >=2x faster warm than cold
    "engine": {
        "n_objects": [256],
        "localities": [1.0, 0.5, 0.0],
        "n_trials": 5,
        "seed": 42,
    },
    # the fabric service's acceptance configuration: the seeded load's
    # canonical report must be byte-identical across back-to-back runs
    # (identity bit), with deterministic latency percentiles in
    # simulated cycles and deterministic rejection counts
    "service": {
        "tenants": 4,
        "requests": 12,
        "rps": 500,
        "seed": 42,
        "rows": 8,
        "cols": 8,
        # evaluated over the run's records; the burn rates and the
        # report-identity bit are deterministic metrics
        "slo": {
            "objective": [
                {
                    "name": "latency-p99",
                    "kind": "latency_p99",
                    "threshold": 400000,
                    "window_cycles": 65536,
                    "budget": 0.25,
                },
                {
                    "name": "rejection-rate",
                    "kind": "rejection_rate",
                    "threshold": 0.5,
                    "window_cycles": 65536,
                    "budget": 0.25,
                },
                {
                    "name": "utilization-floor",
                    "kind": "utilization_floor",
                    "threshold": 0.001,
                    "window_cycles": 65536,
                    "budget": 0.5,
                },
            ]
        },
    },
    # the reconfiguration planner's acceptance configuration: the naive
    # plan must replay the legacy defrag loop move-for-move, the minimal
    # plan must be strictly cheaper on every scenario, and exact must be
    # greedy-or-better; per-scenario totals pin the rewires-saved floor
    "planner": {
        "scenarios": [
            "checkerboard",
            "pinned-band",
            "mixed-sizes",
            "head-slide",
            "exact-demo",
            "already-compact",
        ],
        "max_passes": 8,
        "node_budget": 50000,
    },
    # the vector kernel's acceptance configuration: bit-identity to the
    # legacy sweep at small N, deterministic mega-N series, and a >=50x
    # protocol-resolution speedup over the live network at N=256
    "megascale": {
        "identity_n_objects": [16, 64],
        "mega_n_objects": [1024, 2048, 4096],
        "localities": [1.0, 0.5, 0.0],
        "n_trials": 3,
        "mega_trials": 2,
        "speedup_n_objects": 256,
        "seed": 42,
    },
}

#: Deterministic metrics matching this substring are latency thresholds,
#: checked with ``latency_tolerance`` instead of exact equality.
_LATENCY_MARKER = "recovery_p95"

#: Absolute slack (simulated cycles) under the latency check, so a zero
#: baseline still has a meaningful threshold.
_LATENCY_SLACK_CYCLES = 2.0

#: Minimum warm-over-cold speedup the engine bench must sustain.
_ENGINE_MIN_SPEEDUP = 2.0

#: Minimum live-over-vector protocol-resolution speedup the megascale
#: bench must sustain at its acceptance size (N=256).
_MEGASCALE_MIN_SPEEDUP = 50.0


def measure_bench(bench: str, config: Dict[str, Any]) -> Dict[str, Any]:
    """Run one bench configuration; returns deterministic + wall-clock
    measurements in the baseline's shape."""
    if bench == "fig3":
        from repro.csd.simulator import figure3_series

        start = time.perf_counter()
        series = figure3_series(
            localities=list(config["localities"]),
            n_trials=int(config["n_trials"]),
            seed=int(config["seed"]),
            n_objects_list=list(config["n_objects"]),
        )
        elapsed = time.perf_counter() - start
        deterministic: Dict[str, float] = {}
        n_points = 0
        for n, points in sorted(series.items()):
            for point in points:
                label = point_label(n=n, loc=point.locality_knob)
                deterministic[f"fig3.used_channels{label}"] = float(
                    point.used_channels
                )
                deterministic[f"fig3.blocked{label}"] = float(point.blocked)
                n_points += 1
    elif bench == "faults":
        from repro.faults.campaign import run_campaign

        start = time.perf_counter()
        report = run_campaign(
            rates=list(config["rates"]),
            n_objects_list=list(config["n_objects"]),
            n_trials=int(config["n_trials"]),
            seed=int(config["seed"]),
        )
        elapsed = time.perf_counter() - start
        deterministic = {}
        n_points = 0
        for point in report["points"]:
            label = point_label(n=point["n_objects"], rate=point["rate"])
            deterministic[f"faults.survival{label}"] = float(point["survival"])
            deterministic[f"faults.recovery_p95{label}"] = float(
                point["recovery_cycles"]["p95"]
            )
            n_points += 1
    elif bench == "engine":
        from repro.csd.simulator import figure3_series
        from repro.engine import SweepEngine, run_fig3

        kwargs = dict(
            localities=list(config["localities"]),
            n_trials=int(config["n_trials"]),
            seed=int(config["seed"]),
            n_objects_list=list(config["n_objects"]),
        )
        engine = SweepEngine()
        start = time.perf_counter()
        cold = run_fig3(engine=engine, **kwargs)
        cold_s = max(time.perf_counter() - start, 1e-9)
        start = time.perf_counter()
        warm = run_fig3(engine=engine, **kwargs)
        warm_s = max(time.perf_counter() - start, 1e-9)
        legacy = figure3_series(**kwargs)
        deterministic = {}
        n_points = 0
        for n, points in sorted(cold.items()):
            for point in points:
                label = point_label(n=n, loc=point.locality_knob)
                deterministic[f"engine.used_channels{label}"] = float(
                    point.used_channels
                )
                deterministic[f"engine.blocked{label}"] = float(point.blocked)
                n_points += 1
        # identity bits: a byte-identity break trips the deterministic
        # guard even when wall-clock checks are skipped
        deterministic["engine.identical_warm"] = float(warm == cold)
        deterministic["engine.identical_legacy"] = float(legacy == cold)
        elapsed = cold_s + warm_s
        wallclock_extra = {
            "cold_s": cold_s,
            "warm_s": warm_s,
            "speedup": cold_s / warm_s,
        }
    elif bench == "service":
        from repro.service import (
            LoadConfig,
            build_report,
            execute_load,
            report_json,
        )

        load_config = LoadConfig(
            tenants=int(config["tenants"]),
            requests=int(config["requests"]),
            rps=float(config["rps"]),
            seed=int(config["seed"]),
            rows=int(config["rows"]),
            cols=int(config["cols"]),
        )
        start = time.perf_counter()
        records = execute_load(load_config, transport="inproc")
        elapsed = time.perf_counter() - start
        report = build_report(load_config, records)
        rerun_records = execute_load(load_config, transport="inproc")
        rerun = build_report(load_config, rerun_records)
        deterministic = {
            # identity bit: a determinism break (interleaving leaking
            # into the report) trips the guard even under
            # --skip-wallclock
            "service.identical_rerun": float(
                report_json(report) == report_json(rerun)
            ),
            "service.requests_ok": float(report["requests"]["ok"]),
            "service.requests_rejected": float(
                report["requests"]["rejected"]
            ),
            "service.latency_p50": float(report["latency_cycles"]["p50"]),
            "service.latency_p95": float(report["latency_cycles"]["p95"]),
            "service.latency_p99": float(report["latency_cycles"]["p99"]),
            "service.makespan_cycles": float(
                report["fabric"]["makespan_cycles"]
            ),
            "service.utilization": float(report["fabric"]["utilization"]),
        }
        for entry in report["per_tenant"]:
            label = point_label(tenant=entry["tenant"])
            deterministic[f"service.tenant_p99{label}"] = float(
                entry["latency_cycles"]["p99"]
            )
        if config.get("slo"):
            from repro.telemetry.slo import (
                evaluate_slos,
                parse_spec,
                slo_report_json,
            )

            objectives = parse_spec(config["slo"])
            clusters = int(config["rows"]) * int(config["cols"])
            slo = evaluate_slos(objectives, records, clusters)
            slo_rerun = evaluate_slos(objectives, rerun_records, clusters)
            # a second identity bit: the budget-burn math must also be a
            # pure function of the seed, not just the latency rollup
            deterministic["service.slo_identical"] = float(
                slo_report_json(slo) == slo_report_json(slo_rerun)
            )
            for entry in slo["objectives"]:
                label = point_label(objective=entry["name"])
                deterministic[f"service.slo_burn{label}"] = float(
                    entry["burn_rate"]
                )
        n_points = int(report["requests"]["total"])
    elif bench == "planner":
        from repro.core.defrag import Defragmenter
        from repro.planner import MinimalPlanner, NaivePlanner, build_scenario

        max_passes = int(config["max_passes"])
        node_budget = int(config["node_budget"])
        naive_planner = NaivePlanner()
        greedy_planner = MinimalPlanner(mode="greedy")
        exact_planner = MinimalPlanner(mode="exact", node_budget=node_budget)
        deterministic = {}
        naive_matches = True
        minimal_cheaper = True
        exact_le_greedy = True
        n_points = 0
        start = time.perf_counter()
        for name in list(config["scenarios"]):
            chip = build_scenario(name)
            # planning is a pure function of the snapshot, so all three
            # strategies price the same chip; the legacy loop needs its
            # own build because executing it mutates the layout
            naive = naive_planner.plan_compaction(chip, max_passes=max_passes)
            greedy = greedy_planner.plan_compaction(chip, max_passes=max_passes)
            exact = exact_planner.plan_compaction(chip, max_passes=max_passes)
            legacy_moves = Defragmenter(build_scenario(name)).compact_until_stable(
                max_passes=max_passes
            )
            planned = [
                (m.name, m.old.path[0], m.new.path[0], len(m.new))
                for m in naive.moves
            ]
            executed = [
                (m.name, m.old_start, m.new_start, m.clusters)
                for m in legacy_moves
            ]
            naive_matches = naive_matches and planned == executed
            minimal_cheaper = (
                minimal_cheaper and greedy.cost.total < naive.cost.total
            )
            exact_le_greedy = (
                exact_le_greedy and exact.cost.total <= greedy.cost.total
            )
            label = point_label(scenario=name)
            deterministic[f"planner.naive_total{label}"] = float(
                naive.cost.total
            )
            deterministic[f"planner.minimal_total{label}"] = float(
                greedy.cost.total
            )
            deterministic[f"planner.exact_total{label}"] = float(
                exact.cost.total
            )
            # the regression floor: saved rewires are pinned exactly
            deterministic[f"planner.rewires_saved{label}"] = float(
                greedy.rewires_saved
            )
            n_points += 1
        elapsed = time.perf_counter() - start
        # identity/quality bits: any break trips the deterministic guard
        # even under --skip-wallclock
        deterministic["planner.naive_matches_legacy"] = float(naive_matches)
        deterministic["planner.minimal_cheaper"] = float(minimal_cheaper)
        deterministic["planner.exact_le_greedy"] = float(exact_le_greedy)
    elif bench == "megascale":
        from repro.csd.simulator import figure3_series
        from repro.engine import run_fig3
        from repro.megascale.bench import measure_kernel_speedup

        localities = list(config["localities"])
        seed = int(config["seed"])
        # identity leg: the vector kernel must replay the legacy sweep
        # byte-for-byte at sizes the live simulator can still afford
        id_kwargs = dict(
            localities=localities,
            n_trials=int(config["n_trials"]),
            seed=seed,
            n_objects_list=list(config["identity_n_objects"]),
        )
        vector_small = run_fig3(kernel="vector", **id_kwargs)
        legacy_small = figure3_series(**id_kwargs)
        deterministic = {
            "megascale.identical_legacy": float(vector_small == legacy_small)
        }
        # sampled-run determinism bit: under observation the vector
        # engine must emit the byte-identical observation document the
        # live sweep emits (same stride, same probes, same document)
        from repro import telemetry
        from repro.telemetry.exposition import observation_document, observe_json

        obs_kwargs = dict(
            localities=localities,
            n_trials=int(config["n_trials"]),
            seed=seed,
            n_objects_list=[int(config["identity_n_objects"][0])],
        )
        try:
            telemetry.reset()
            telemetry.enable_observation()
            figure3_series(**obs_kwargs)
            live_doc = observe_json(observation_document(telemetry.snapshot()))
            telemetry.reset()
            telemetry.enable_observation()
            run_fig3(kernel="vector", **obs_kwargs)
            vector_doc = observe_json(observation_document(telemetry.snapshot()))
        finally:
            telemetry.enable_observation(False)
            telemetry.reset()
        deterministic["megascale.identical_observed"] = float(
            vector_doc == live_doc
        )
        # mega leg: sizes only the vector kernel reaches; the series is
        # seed-deterministic, so any drift is a behaviour change
        start = time.perf_counter()
        mega = run_fig3(
            kernel="vector",
            localities=localities,
            n_trials=int(config["mega_trials"]),
            seed=seed,
            n_objects_list=list(config["mega_n_objects"]),
        )
        elapsed = time.perf_counter() - start
        n_points = 0
        for n, points in sorted(mega.items()):
            for point in points:
                label = point_label(n=n, loc=point.locality_knob)
                deterministic[f"megascale.used_channels{label}"] = float(
                    point.used_channels
                )
                deterministic[f"megascale.blocked{label}"] = float(point.blocked)
                n_points += 1
        # speedup leg: raw grant resolution, live network vs kernel,
        # on identical span streams (the kernel bench asserts identity)
        speed = measure_kernel_speedup(
            n_objects=int(config["speedup_n_objects"]), seed=seed
        )
        deterministic["megascale.identical_speedup"] = float(speed["identical"])
        wallclock_extra = {
            "live_s": speed["live_s"],
            "kernel_s": speed["kernel_s"],
            "kernel_speedup": speed["kernel_speedup"],
        }
    else:
        raise ValueError(f"unknown bench {bench!r} (want one of {sorted(BENCHES)})")
    elapsed = max(elapsed, 1e-9)
    wallclock = {
        "elapsed_s": elapsed,
        "points_per_s": n_points / elapsed,
    }
    if bench in ("engine", "megascale"):
        wallclock.update(wallclock_extra)
    return {
        "deterministic": deterministic,
        "wallclock": wallclock,
    }


def record_baseline(
    bench: str, config: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Measure ``bench`` and wrap the result as a baseline document."""
    if config is None:
        config = BENCHES[bench] if bench in BENCHES else None
    if config is None:
        raise ValueError(f"unknown bench {bench!r} (want one of {sorted(BENCHES)})")
    measured = measure_bench(bench, config)
    return {
        "schema": BASELINE_SCHEMA,
        "bench": bench,
        "config": config,
        "deterministic": measured["deterministic"],
        "wallclock": measured["wallclock"],
    }


def check_baseline(
    baseline: Dict[str, Any],
    measured: Optional[Dict[str, Any]] = None,
    throughput_tolerance: float = 0.15,
    latency_tolerance: float = 0.15,
    skip_wallclock: bool = False,
) -> List[str]:
    """Compare a fresh measurement against a recorded baseline.

    Returns human-readable regression descriptions; an empty list means
    the baseline holds.  ``measured`` defaults to re-running the
    baseline's own configuration.  A 20% synthetic throughput drop or a
    20% synthetic p95-latency inflation fails at the default 15%
    tolerances — that is the guard's acceptance contract.
    """
    if not isinstance(baseline, dict) or baseline.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"not a baseline document (want schema {BASELINE_SCHEMA!r})"
        )
    if measured is None:
        measured = measure_bench(baseline["bench"], baseline["config"])
    regressions: List[str] = []
    base_det = baseline.get("deterministic", {})
    got_det = measured.get("deterministic", {})
    for name in sorted(base_det):
        expected = float(base_det[name])
        if name not in got_det:
            regressions.append(f"{name}: missing from measurement")
            continue
        actual = float(got_det[name])
        if _LATENCY_MARKER in name:
            limit = expected * (1.0 + latency_tolerance) + _LATENCY_SLACK_CYCLES
            if actual > limit:
                regressions.append(
                    f"{name}: p95 recovery latency {actual:g} cycles exceeds "
                    f"baseline {expected:g} (limit {limit:g})"
                )
        elif abs(actual - expected) > 1e-9:
            regressions.append(
                f"{name}: deterministic metric changed "
                f"{expected:g} -> {actual:g}"
            )
    for name in sorted(got_det):
        if name not in base_det:
            regressions.append(f"{name}: new metric absent from baseline")
    if not skip_wallclock:
        base_tp = float(baseline.get("wallclock", {}).get("points_per_s", 0.0))
        got_tp = float(measured.get("wallclock", {}).get("points_per_s", 0.0))
        if base_tp > 0 and got_tp < base_tp * (1.0 - throughput_tolerance):
            regressions.append(
                f"throughput: {got_tp:.2f} points/s is more than "
                f"{throughput_tolerance:.0%} below baseline {base_tp:.2f}"
            )
        got_speedup = measured.get("wallclock", {}).get("speedup")
        if got_speedup is not None and float(got_speedup) < _ENGINE_MIN_SPEEDUP:
            regressions.append(
                f"engine speedup: warm run only {float(got_speedup):.2f}x "
                f"faster than cold (floor {_ENGINE_MIN_SPEEDUP:g}x)"
            )
        got_kernel = measured.get("wallclock", {}).get("kernel_speedup")
        if got_kernel is not None and float(got_kernel) < _MEGASCALE_MIN_SPEEDUP:
            regressions.append(
                f"megascale speedup: vector kernel only {float(got_kernel):.2f}x "
                f"faster than the live network "
                f"(floor {_MEGASCALE_MIN_SPEEDUP:g}x)"
            )
    return regressions


def load_baseline(path: Union[str, Path]) -> Dict[str, Any]:
    """Load and validate a ``BENCH_*.json`` baseline.

    Raises
    ------
    ValueError
        On unparseable JSON or a wrong schema tag (CLI exit code 2).
    """
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not JSON ({exc})") from exc
    if not isinstance(doc, dict) or doc.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{path}: not a baseline document (want schema {BASELINE_SCHEMA!r})"
        )
    return doc


def write_baseline(baseline: Dict[str, Any], path: Union[str, Path]) -> Path:
    """Canonical serialization: sorted keys, indent 2, trailing newline."""
    path = Path(path)
    path.write_text(json.dumps(baseline, sort_keys=True, indent=2) + "\n")
    return path
