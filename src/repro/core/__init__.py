"""The VLSI processor: dynamic CMP of fusable adaptive processors (§3).

This package is the paper's headline contribution assembled from the
substrates: the S-topology fabric (:mod:`repro.topology`), the wormhole
configuration network (:mod:`repro.noc`), the adaptive-processor engine
(:mod:`repro.ap`) and the cost model (:mod:`repro.costmodel`).

Modules
-------
:mod:`repro.core.states`
    The release / inactive / active / sleep lifecycle (Figure 6(e)).
:mod:`repro.core.allocation`
    Finding free regions of clusters for a requested scale.
:mod:`repro.core.scaling`
    Up-/down-scaling, fusion and splitting of processors (§3.3).
:mod:`repro.core.ipc`
    Inter-processor communication through memory blocks (§3.4).
:mod:`repro.core.partition`
    Executing basic-block partitioned programs across processors
    (Figure 7's speculative pipelined execution).
:mod:`repro.core.defects`
    Defect injection and tolerance (§1's defect-tolerance benefit).
:mod:`repro.core.vlsi_processor`
    The :class:`VLSIProcessor` façade tying it all together.
"""

from repro.core.states import ProcessorState, ProcessorStateMachine
from repro.core.allocation import ClusterAllocator
from repro.core.scaling import ScalingController
from repro.core.ipc import Mailbox, MessageRecord
from repro.core.partition import ProgramExecutor, BlockExecution, deploy_program
from repro.core.pipelined import PipelinedExecutor, PipelinedStats, WaveRecord
from repro.core.defects import DefectInjector, DefectReport
from repro.core.defrag import Defragmenter, MoveRecord
from repro.core.vlsi_processor import VLSIProcessor, ProcessorInstance

__all__ = [
    "ProcessorState",
    "ProcessorStateMachine",
    "ClusterAllocator",
    "ScalingController",
    "Mailbox",
    "MessageRecord",
    "ProgramExecutor",
    "BlockExecution",
    "deploy_program",
    "PipelinedExecutor",
    "PipelinedStats",
    "WaveRecord",
    "DefectInjector",
    "DefectReport",
    "Defragmenter",
    "MoveRecord",
    "VLSIProcessor",
    "ProcessorInstance",
]
