"""Cluster allocation: finding a free region of the requested scale.

"To configure an AP with the necessary scale, we should first configure
the processor at an executable scale (a minimum requirement for an
application task) by gathering the clusters (resources)" (section 3.3).

Two strategies are provided:

* **serpentine** — a contiguous run of free clusters along the fabric's
  global fold order.  This is the paper's natural placement: the linear
  array simply continues along the S, and an in-order configuration
  "performs a spatially local placement" (Figure 7(b)).
* **rectangle** — the smallest free rectangle holding the requested
  cluster count, threaded serpentine internally.  Compact shapes keep
  the region's Manhattan diameter (and hence chaining delay) low.

Every query takes an optional ``within`` — a set of coordinates the
search is confined to.  A resident fabric (:mod:`repro.service`) shards
the die into per-tenant slices and passes each tenant's shard here, so
one tenant's placement can never depend on (or collide with) another
tenant's occupancy.
"""

from __future__ import annotations

from typing import Collection, List, Optional, Set, Tuple

from repro.errors import RegionError
from repro.topology.regions import Region, path_region, rectangle_region
from repro.topology.s_topology import STopology

__all__ = ["ClusterAllocator"]

Coord = Tuple[int, int]


class ClusterAllocator:
    """Finds free regions on an :class:`STopology`."""

    def __init__(self, fabric: STopology) -> None:
        self.fabric = fabric

    # -- queries -----------------------------------------------------------

    def free_count(self, within: Optional[Collection[Coord]] = None) -> int:
        free = self.fabric.free_clusters()
        if within is None:
            return len(free)
        scope = set(within)
        return sum(1 for cluster in free if cluster.coord in scope)

    def largest_free_run(
        self, within: Optional[Collection[Coord]] = None
    ) -> int:
        """Longest contiguous run of free clusters in fold order."""
        scope = self._scope(within)
        best = run = 0
        for coord in self.fabric.linear_order():
            if self._eligible(coord, scope):
                run += 1
                best = max(best, run)
            else:
                run = 0
        return best

    # -- strategies -------------------------------------------------------

    def find_serpentine(
        self, n_clusters: int, within: Optional[Collection[Coord]] = None
    ) -> Optional[Region]:
        """First contiguous free run of ``n_clusters`` along the fold."""
        if n_clusters < 1:
            raise RegionError("need at least one cluster")
        scope = self._scope(within)
        run: List[Coord] = []
        for coord in self.fabric.linear_order():
            if self._eligible(coord, scope):
                run.append(coord)
                if len(run) == n_clusters:
                    return path_region(run)
            else:
                run = []
        return None

    def find_rectangle(
        self, n_clusters: int, within: Optional[Collection[Coord]] = None
    ) -> Optional[Region]:
        """Smallest-area free rectangle holding ``n_clusters``.

        Scans candidate shapes in increasing area, then increasing
        aspect-ratio skew, and positions top-left first.
        """
        if n_clusters < 1:
            raise RegionError("need at least one cluster")
        scope = self._scope(within)
        shapes = self._candidate_shapes(n_clusters)
        for h, w in shapes:
            for r0 in range(self.fabric.rows - h + 1):
                for c0 in range(self.fabric.cols - w + 1):
                    if self._rect_free(r0, c0, h, w, scope):
                        return rectangle_region((r0, c0), h, w)
        return None

    def allocate(
        self,
        n_clusters: int,
        strategy: str = "serpentine",
        within: Optional[Collection[Coord]] = None,
    ) -> Region:
        """Find a region or raise.

        Raises
        ------
        RegionError
            If no free region of the requested scale exists (callers can
            retry after releasing processors, or report back pressure).
        """
        if strategy == "serpentine":
            region = self.find_serpentine(n_clusters, within=within)
        elif strategy == "rectangle":
            region = self.find_rectangle(n_clusters, within=within)
        else:
            raise ValueError(f"unknown strategy {strategy!r}")
        if region is None:
            raise RegionError(
                f"no free {strategy} region of {n_clusters} clusters "
                f"({self.free_count(within)} free in "
                + ("the scope" if within is not None else "total")
                + ")"
            )
        return region

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _scope(within: Optional[Collection[Coord]]) -> Optional[Set[Coord]]:
        return None if within is None else set(within)

    def _eligible(self, coord: Coord, scope: Optional[Set[Coord]]) -> bool:
        if scope is not None and coord not in scope:
            return False
        return self.fabric.cluster(coord).is_free

    def _candidate_shapes(self, n: int) -> List[Tuple[int, int]]:
        """(h, w) shapes with h*w >= n, sorted by area then skew."""
        shapes = []
        for h in range(1, self.fabric.rows + 1):
            w = -(-n // h)  # ceil
            if w <= self.fabric.cols:
                shapes.append((h, w))
        shapes.sort(key=lambda s: (s[0] * s[1], abs(s[0] - s[1])))
        return shapes

    def _rect_free(
        self, r0: int, c0: int, h: int, w: int, scope: Optional[Set[Coord]]
    ) -> bool:
        return all(
            self._eligible((r, c), scope)
            for r in range(r0, r0 + h)
            for c in range(c0, c0 + w)
        )
