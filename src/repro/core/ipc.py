"""Inter-processor communication through memory blocks (section 3.4).

"The execution uses an inactive state, whereas the preceding processor
makes the processor active.  Before activation, the processor stores
sending data to [the] memory block."

A :class:`Mailbox` models the externally-writable face of a processor's
memory blocks: predecessors may deliver values only while the owner is
INACTIVE (read/write protection follows the state machine); the owner
reads its mailbox when it activates.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional

from repro.errors import QuotaError, StateTransitionError
from repro.core.states import ProcessorStateMachine

__all__ = ["MessageRecord", "Mailbox"]


@dataclass(frozen=True)
class MessageRecord:
    """One delivered value, for tracing pipelined executions.

    ``msg_id`` is the position of the delivery in its *own* mailbox's
    log (0, 1, 2, ...), not a process-wide serial: two mailboxes fed the
    same delivery sequence produce byte-identical logs, in any process,
    regardless of what was imported or delivered before.
    """

    msg_id: int
    sender: Hashable
    key: Any
    value: Any


class Mailbox:
    """Externally-writable slots in a processor's memory blocks.

    ``capacity`` bounds the number of *distinct* occupied slots — the
    memory blocks a processor opens for external stores are finite, and
    a resident fabric uses this as the per-tenant mailbox quota.  ``None``
    (the default) keeps the historical unbounded behaviour.
    """

    def __init__(
        self,
        owner_state: ProcessorStateMachine,
        capacity: Optional[int] = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("mailbox capacity must be positive (or None)")
        self._state = owner_state
        self.capacity = capacity
        self._slots: Dict[Any, Any] = {}
        self.log: List[MessageRecord] = []
        # per-mailbox, not module-global: message ids must not depend on
        # import-time history or on other mailboxes' traffic, or logs
        # diverge between serial runs, re-runs, and spawned pool workers
        self._msg_ids = itertools.count()

    def deliver(self, sender: Hashable, key: Any, value: Any) -> MessageRecord:
        """A predecessor stores a value.

        Raises
        ------
        StateTransitionError
            If the owner is not INACTIVE — its memory is protected
            (ACTIVE/SLEEP) or deallocated (RELEASE).
        QuotaError
            If the mailbox is bounded, full, and ``key`` does not
            overwrite an already-occupied slot.
        """
        if not self._state.accepts_external_writes:
            raise StateTransitionError(
                f"memory blocks are {self._state.state.value}: "
                "external writes only land in the inactive state"
            )
        if (
            self.capacity is not None
            and key not in self._slots
            and len(self._slots) >= self.capacity
        ):
            raise QuotaError(
                f"mailbox full: {len(self._slots)} of {self.capacity} "
                "slots occupied"
            )
        self._slots[key] = value
        record = MessageRecord(next(self._msg_ids), sender, key, value)
        self.log.append(record)
        return record

    def read(self, key: Any) -> Any:
        """The owner reads a delivered value (any allocated state).

        Raises
        ------
        KeyError
            If nothing was delivered under ``key``.
        """
        if key not in self._slots:
            raise KeyError(f"no value delivered under {key!r}")
        return self._slots[key]

    def peek(self, key: Any, default: Any = None) -> Any:
        return self._slots.get(key, default)

    def take_all(self) -> Dict[Any, Any]:
        """Drain the mailbox (typical on activation)."""
        slots, self._slots = self._slots, {}
        return slots

    def __contains__(self, key: Any) -> bool:
        return key in self._slots

    def __len__(self) -> int:
        return len(self._slots)
