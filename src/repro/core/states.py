"""Processor lifecycle states (paper Figure 6(e), section 3.3).

"Figure 6 (e) shows a basic state diagram consisting of release, sleep,
active, and inactive states.  First the processor starts from and ends
with the release state ...  After programming the switches in a minimum
AP, the processor turns into an inactive state that is ready to execute
but not read and write protected from others.  Either a timer, or read
and write protections in the scaled region are set, and the region is
invoked as the scaled active AP. ... In an inactive state, others can
access its memory blocks. ... The sleep state is ready to execute and is
read- and write-protected from others ... the sleep state can be used
for processor-level synchronization."

Legal transitions::

    release  -> inactive            (switches programmed)
    inactive -> active              (protections set, invoked)
    inactive -> release             (deallocate)
    active   -> inactive            (clear protections)
    active   -> sleep               (wait for timer/event)
    active   -> release             (down-scale / finish)
    sleep    -> active              (event/timer fires)
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro import telemetry
from repro.errors import StateTransitionError

__all__ = ["ProcessorState", "ProcessorStateMachine", "lifecycle_census"]


class ProcessorState(enum.Enum):
    RELEASE = "release"
    INACTIVE = "inactive"
    ACTIVE = "active"
    SLEEP = "sleep"


_LEGAL: FrozenSet[Tuple[ProcessorState, ProcessorState]] = frozenset(
    {
        (ProcessorState.RELEASE, ProcessorState.INACTIVE),
        (ProcessorState.INACTIVE, ProcessorState.ACTIVE),
        (ProcessorState.INACTIVE, ProcessorState.RELEASE),
        (ProcessorState.ACTIVE, ProcessorState.INACTIVE),
        (ProcessorState.ACTIVE, ProcessorState.SLEEP),
        (ProcessorState.ACTIVE, ProcessorState.RELEASE),
        (ProcessorState.SLEEP, ProcessorState.ACTIVE),
    }
)


class ProcessorStateMachine:
    """Tracks one processor's lifecycle with protection semantics.

    Read/write protection follows the state: ACTIVE and SLEEP are
    protected (others may not touch the region's memory blocks); INACTIVE
    is open (that is how predecessors deliver data); RELEASE has no
    memory to protect.
    """

    def __init__(self) -> None:
        self.state = ProcessorState.RELEASE
        self.history: List[ProcessorState] = [ProcessorState.RELEASE]
        #: Wake deadline while sleeping, or None for event-only sleep.
        self.wake_at: Optional[int] = None

    # -- transitions ---------------------------------------------------------

    def transition(self, target: ProcessorState) -> None:
        """Move to ``target``.

        Raises
        ------
        StateTransitionError
            For an edge not in the Figure 6(e) diagram.
        """
        if (self.state, target) not in _LEGAL:
            raise StateTransitionError(
                f"illegal transition {self.state.value} -> {target.value}"
            )
        tracer = telemetry.tracer()
        if tracer.enabled:
            # §3.4 lifecycle edges become instant events on whatever
            # operation (scaling, configure) is currently in flight
            tracer.instant(
                "lifecycle.transition",
                src=self.state.value, dst=target.value,
            )
        self.state = target
        self.history.append(target)

    def configure(self) -> None:
        """release → inactive (switches programmed)."""
        self.transition(ProcessorState.INACTIVE)

    def activate(self) -> None:
        """inactive → active (protections set, region invoked)."""
        self.transition(ProcessorState.ACTIVE)

    def deactivate(self) -> None:
        """active → inactive (protections cleared; memory now open)."""
        self.transition(ProcessorState.INACTIVE)

    def sleep(self, wake_at: Optional[int] = None) -> None:
        """active → sleep (wait on a timer or event).

        "The active scaled AP can sleep and wait for an event by setting
        the timer, or wait for an event from inside" — pass ``wake_at``
        to arm the timer; omit it for event-only sleep.
        """
        self.transition(ProcessorState.SLEEP)
        self.wake_at = wake_at

    def wake(self) -> None:
        """sleep → active (an event arrived, or the timer fired)."""
        self.transition(ProcessorState.ACTIVE)
        self.wake_at = None

    def tick(self, now: int) -> bool:
        """Deliver a clock tick; wakes the processor when its timer has
        expired.  Returns True if this tick woke it."""
        if (
            self.state is ProcessorState.SLEEP
            and self.wake_at is not None
            and now >= self.wake_at
        ):
            self.wake()
            return True
        return False

    def release(self) -> None:
        """→ release (from active or inactive)."""
        self.transition(ProcessorState.RELEASE)

    # -- protection queries ----------------------------------------------

    @property
    def is_protected(self) -> bool:
        """Whether the region's memory is read/write protected from others."""
        return self.state in (ProcessorState.ACTIVE, ProcessorState.SLEEP)

    @property
    def accepts_external_writes(self) -> bool:
        """Others may store into the region's memory blocks (section 3.4:
        data delivery, library stores, spilling/filling)."""
        return self.state is ProcessorState.INACTIVE

    @property
    def can_execute(self) -> bool:
        return self.state is ProcessorState.ACTIVE

    @property
    def is_allocated(self) -> bool:
        return self.state is not ProcessorState.RELEASE


def lifecycle_census(
    machines: Iterable["ProcessorStateMachine"],
) -> Dict[str, int]:
    """Count how many machines sit in each Figure 6(e) state.

    Every state appears in the result (zero when empty) and keys follow
    the diagram's order — release, inactive, active, sleep — so sampled
    censuses line up row-for-row across cycles."""
    census = {state.value: 0 for state in ProcessorState}
    for machine in machines:
        census[machine.state.value] += 1
    return census
