"""Fabric defragmentation (paper section 5).

"[With a mesh,] a host system has to manage the placement, routing,
replacement, and defragmentation.  ...  The VLSI processor is
manageable."  — on the S-topology, defragmentation is just another
scaling operation: INACTIVE processors are re-configured onto the
earliest free serpentine run, compacting live regions toward the head
of the fold and coalescing free clusters into one contiguous tail.

Only INACTIVE processors move (their memory is open and nothing is
executing); ACTIVE/SLEEP processors are left in place, which bounds how
much compaction one pass can achieve — exactly the trade-off a real
system would face.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import RegionError
from repro.core.states import ProcessorState
from repro.core.vlsi_processor import VLSIProcessor
from repro.topology.folding import serpentine_unfold
from repro.topology.regions import path_region

__all__ = ["MoveRecord", "Defragmenter"]


@dataclass(frozen=True)
class MoveRecord:
    """One processor relocation performed by a defrag pass."""

    name: str
    old_start: Tuple[int, int]
    new_start: Tuple[int, int]
    clusters: int


class Defragmenter:
    """Compacts INACTIVE processors along the fabric's fold order."""

    def __init__(self, vlsi: VLSIProcessor) -> None:
        self.vlsi = vlsi

    # -- queries -----------------------------------------------------------

    def fragmentation(self) -> float:
        """1 − (largest free run / free clusters); 0 when free space is
        one contiguous run (or there is none)."""
        free = self.vlsi.allocator.free_count()
        if free == 0:
            return 0.0
        return 1.0 - self.vlsi.allocator.largest_free_run() / free

    def _fold_index(self, coord: Tuple[int, int]) -> int:
        return serpentine_unfold(coord, self.vlsi.fabric.cols)

    # -- compaction ---------------------------------------------------------

    def compact(self) -> List[MoveRecord]:
        """One compaction pass.

        Processors are visited in fold order of their first cluster;
        each INACTIVE one is re-configured onto the earliest free
        serpentine run if that moves its start earlier.  Mailbox
        contents move with the processor (spill/fill through the open
        memory blocks, §3.3).
        """
        moves: List[MoveRecord] = []
        order = sorted(
            self.vlsi.processors.values(),
            key=lambda p: self._fold_index(p.region.path[0]),
        )
        for instance in order:
            if instance.state.state is not ProcessorState.INACTIVE:
                continue
            name = instance.name
            n = instance.n_clusters
            old_region = instance.region
            old_start = old_region.path[0]
            # free our own clusters first so the search can reuse them
            self.vlsi.configurator.release(old_region, owner=name)
            target = self.vlsi.allocator.find_serpentine(n)
            if target is None or self._fold_index(target.path[0]) >= self._fold_index(old_start):
                # no better spot: put it back where it was
                self.vlsi.configurator.configure(old_region, owner=name)
                continue
            self.vlsi.configurator.configure(target, owner=name)
            # spill/fill: the mailbox (memory-block state) moves along
            instance.region = target
            moves.append(MoveRecord(name, old_start, target.path[0], n))
        return moves

    def compact_until_stable(self, max_passes: int = 8) -> List[MoveRecord]:
        """Repeat passes until nothing moves (or the pass budget ends)."""
        all_moves: List[MoveRecord] = []
        for _ in range(max_passes):
            moves = self.compact()
            if not moves:
                break
            all_moves.extend(moves)
        return all_moves
