"""Fabric defragmentation (paper section 5).

"[With a mesh,] a host system has to manage the placement, routing,
replacement, and defragmentation.  ...  The VLSI processor is
manageable."  — on the S-topology, defragmentation is just another
scaling operation: INACTIVE processors are re-configured onto the
earliest free serpentine run, compacting live regions toward the head
of the fold and coalescing free clusters into one contiguous tail.

Only INACTIVE processors move (their memory is open and nothing is
executing); ACTIVE/SLEEP processors are left in place, which bounds how
much compaction one pass can achieve — exactly the trade-off a real
system would face.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.core.states import ProcessorState
from repro.core.vlsi_processor import VLSIProcessor
from repro.noc.wormhole import WORM_FAILURES
from repro.topology.folding import serpentine_unfold

__all__ = ["MoveRecord", "Defragmenter"]


@dataclass(frozen=True)
class MoveRecord:
    """One processor relocation performed by a defrag pass."""

    name: str
    old_start: Tuple[int, int]
    new_start: Tuple[int, int]
    clusters: int


class Defragmenter:
    """Compacts INACTIVE processors along the fabric's fold order.

    Parameters
    ----------
    vlsi:
        The chip to compact.
    planner:
        Optional reconfiguration planner (e.g.
        :class:`repro.planner.MinimalPlanner`).  When set,
        :meth:`compact_until_stable` plans the whole compaction first and
        executes it as delta rewirings; when ``None`` (the default) the
        legacy release-then-reconfigure loop runs, byte-identical to the
        pre-planner behaviour.
    """

    def __init__(
        self, vlsi: VLSIProcessor, planner: Optional[Any] = None
    ) -> None:
        self.vlsi = vlsi
        self.planner = planner
        #: The :class:`repro.planner.RewirePlan` behind the most recent
        #: planned compaction (``None`` until one runs).
        self.last_plan: Optional[Any] = None

    # -- queries -----------------------------------------------------------

    def fragmentation(self) -> float:
        """1 − (largest free run / free clusters); 0 when free space is
        one contiguous run (or there is none)."""
        free = self.vlsi.allocator.free_count()
        if free == 0:
            return 0.0
        return 1.0 - self.vlsi.allocator.largest_free_run() / free

    def _fold_index(self, coord: Tuple[int, int]) -> int:
        return serpentine_unfold(coord, self.vlsi.fabric.cols)

    # -- compaction ---------------------------------------------------------

    def compact(self) -> List[MoveRecord]:
        """One compaction pass.

        Processors are visited in fold order of their first cluster —
        the key is re-derived from the *current* layout on every
        iteration, never from a stale pre-pass sort (fold indices are
        unique, so the order is deterministic).  Each INACTIVE processor
        is re-configured onto the earliest free serpentine run if that
        moves its start earlier.  Mailbox contents move with the
        processor (spill/fill through the open memory blocks, §3.3).

        A move that fails mid-reconfigure (an injected switch fault, a
        conflicting worm) is rolled back: the processor's old region is
        configured straight back before the failure propagates, so no
        processor is ever left regionless.
        """
        moves: List[MoveRecord] = []
        visited = set()
        while True:
            pending = [
                p
                for p in self.vlsi.processors.values()
                if p.name not in visited
                and p.state.state is ProcessorState.INACTIVE
            ]
            if not pending:
                break
            instance = min(
                pending, key=lambda p: self._fold_index(p.region.path[0])
            )
            visited.add(instance.name)
            name = instance.name
            n = instance.n_clusters
            old_region = instance.region
            old_start = old_region.path[0]
            # free our own clusters first so the search can reuse them
            self.vlsi.configurator.release(old_region, owner=name)
            target = self.vlsi.allocator.find_serpentine(n)
            if target is None or self._fold_index(target.path[0]) >= self._fold_index(old_start):
                # no better spot: put it back where it was
                self.vlsi.configurator.configure(old_region, owner=name)
                continue
            try:
                self.vlsi.configurator.configure(target, owner=name)
            except WORM_FAILURES:
                # rollback: restore the released region before propagating
                self.vlsi.configurator.configure(old_region, owner=name)
                raise
            # spill/fill: the mailbox (memory-block state) moves along
            instance.region = target
            moves.append(MoveRecord(name, old_start, target.path[0], n))
        return moves

    def compact_until_stable(self, max_passes: int = 8) -> List[MoveRecord]:
        """Repeat passes until nothing moves (or the pass budget ends).

        With a ``planner`` attached, the whole compaction is planned
        against a snapshot first and executed as minimal delta rewirings
        (the plan lands in :attr:`last_plan`); the returned move records
        are shaped exactly like the legacy loop's.
        """
        if self.planner is not None:
            # imported here: repro.planner depends on this module's
            # MoveRecord, so a top-level import would be circular
            from repro.planner.execute import execute_plan

            plan = self.planner.plan_compaction(
                self.vlsi, max_passes=max_passes
            )
            self.last_plan = plan
            return execute_plan(self.vlsi, plan)
        all_moves: List[MoveRecord] = []
        for _ in range(max_passes):
            moves = self.compact()
            if not moves:
                break
            all_moves.extend(moves)
        return all_moves
