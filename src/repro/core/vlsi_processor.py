"""The VLSI processor façade (paper sections 1 and 3).

A :class:`VLSIProcessor` owns one S-topology fabric, its wormhole
configuration machinery, and the set of live processor instances — each
an adaptive processor fused out of clusters, with its Figure 6(e) state
machine and externally-writable mailbox.

The up/down-scaling operations live in
:class:`repro.core.scaling.ScalingController`; program execution across
processors in :class:`repro.core.partition.ProgramExecutor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.errors import ConfigurationError, RegionError, StateTransitionError
from repro.core.allocation import ClusterAllocator
from repro.core.ipc import Mailbox
from repro.core.states import (
    ProcessorState,
    ProcessorStateMachine,
    lifecycle_census,
)
from repro.noc.network import RouterNetwork
from repro.noc.wormhole import WormholeConfigurator
from repro.topology.cluster import ClusterResources
from repro.topology.metrics import diameter
from repro.topology.regions import Region
from repro.topology.s_topology import STopology

__all__ = ["ProcessorInstance", "VLSIProcessor"]


@dataclass
class ProcessorInstance:
    """One live (configured) adaptive processor on the fabric."""

    name: str
    region: Region
    state: ProcessorStateMachine = field(default_factory=ProcessorStateMachine)
    mailbox: Mailbox = field(init=False)
    #: Lifetime router cycles spent on this processor's configuration
    #: worms — accumulated across create/scale/relocate operations
    #: (0 without a network).
    config_cycles: int = 0
    #: Router cycles of the most recent configuration worm alone (what
    #: one operation cost, as opposed to the lifetime total above).
    last_config_cycles: int = 0

    def __post_init__(self) -> None:
        self.mailbox = Mailbox(self.state)

    @property
    def n_clusters(self) -> int:
        return len(self.region)

    def capacity(self, resources: ClusterResources) -> int:
        """Stack capacity C of this processor (compute objects)."""
        return self.region.capacity(resources.compute_objects)

    def span(self) -> int:
        """Manhattan diameter of the region — the worst-case chaining
        distance inside this processor."""
        return diameter(self.region.path)


class VLSIProcessor:
    """A whole chip: fabric + routers + live processors.

    Parameters
    ----------
    rows, cols:
        Cluster grid dimensions.
    resources:
        Per-cluster object mix (Table 4 default: 16 compute + 16 memory).
    with_network:
        Attach a cycle-level router network so configuration worms are
        actually delivered and timed.
    """

    def __init__(
        self,
        rows: int = 8,
        cols: int = 8,
        resources: Optional[ClusterResources] = None,
        with_network: bool = True,
    ) -> None:
        self.fabric = STopology(rows, cols, resources)
        self.network: Optional[RouterNetwork] = (
            RouterNetwork(rows, cols) if with_network else None
        )
        self.configurator = WormholeConfigurator(self.fabric, network=self.network)
        self.allocator = ClusterAllocator(self.fabric)
        self.processors: Dict[str, ProcessorInstance] = {}

    # -- lifecycle ---------------------------------------------------------

    def create_processor(
        self,
        name: str,
        n_clusters: int = 1,
        strategy: str = "serpentine",
        region: Optional[Region] = None,
        within: Optional[Any] = None,
    ) -> ProcessorInstance:
        """Gather clusters, wormhole-configure them, enter INACTIVE.

        ``within`` confines the allocator's search to a coordinate set
        (a resident fabric passes the owning tenant's shard).

        Raises
        ------
        ConfigurationError
            On a duplicate name.
        RegionError
            When no free region of the requested scale exists.
        """
        if name in self.processors:
            raise ConfigurationError(f"processor {name!r} already exists")
        if region is None:
            region = self.allocator.allocate(
                n_clusters, strategy=strategy, within=within
            )
        op = self.configurator.configure(region, owner=name)
        instance = ProcessorInstance(name=name, region=region)
        instance.config_cycles = op.config_cycles
        instance.last_config_cycles = op.config_cycles
        instance.state.configure()  # release -> inactive
        self.processors[name] = instance
        return instance

    def destroy_processor(self, name: str) -> None:
        """Down-scale to nothing: release clusters and forget the name."""
        instance = self.processor(name)
        if instance.state.state is ProcessorState.SLEEP:
            instance.state.wake()
        instance.state.release()
        self.configurator.release(instance.region, owner=name)
        del self.processors[name]

    def processor(self, name: str) -> ProcessorInstance:
        try:
            return self.processors[name]
        except KeyError:
            raise ConfigurationError(f"no processor {name!r}") from None

    # -- state control ----------------------------------------------------

    def activate(self, name: str) -> None:
        self.processor(name).state.activate()

    def deactivate(self, name: str) -> None:
        self.processor(name).state.deactivate()

    def sleep(self, name: str) -> None:
        self.processor(name).state.sleep()

    def wake(self, name: str) -> None:
        self.processor(name).state.wake()

    # -- inter-processor communication -------------------------------------

    def send(self, sender: str, target: str, key: Any, value: Any) -> None:
        """The §3.4 delivery: ``sender`` stores into ``target``'s memory
        blocks (target must be INACTIVE)."""
        self.processor(sender)  # must exist
        self.processor(target).mailbox.deliver(sender, key, value)

    # -- fabric-level queries ------------------------------------------------

    def free_clusters(self) -> int:
        return self.allocator.free_count()

    def utilization(self) -> float:
        """Fraction of clusters owned by live processors."""
        owned = sum(p.n_clusters for p in self.processors.values())
        return owned / len(self.fabric)

    def lifecycle_census(self) -> Dict[str, int]:
        """Figure 6(e) state census across the whole chip.

        Live processors report their machine's state; the ``release``
        row counts the fabric's free clusters (a destroyed processor
        leaves no machine behind, but its clusters return to the release
        pool — §3.3 "starts from and ends with the release state")."""
        census = lifecycle_census(p.state for p in self.processors.values())
        census[ProcessorState.RELEASE.value] = self.allocator.free_count()
        return census

    def render(self) -> str:
        """ASCII view of the fabric with processor ownership."""
        return self.fabric.render()
