"""Defect injection and tolerance (paper section 1).

"Scaling to hundreds or thousands of processor elements and memory
blocks on chip will increase the number of defects.  Through the VLSI
processor architecture, the failing AP can be removed from the system.
For example, when four APs are used on chip ... When a second AP fail[s],
the first processor can become a small-scale processor, the third and
fourth processors can be fused into the a medium-scale processor or
split into two small-scale processors."

:class:`DefectInjector` marks clusters defective; when a live processor
is hit, the failing processor is removed and — when possible — re-created
at the same scale from the remaining healthy clusters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import DefectError, ReproError
from repro.core.states import ProcessorState
from repro.core.vlsi_processor import VLSIProcessor

__all__ = ["DefectReport", "DefectInjector"]

Coord = Tuple[int, int]


@dataclass(frozen=True)
class DefectReport:
    """Outcome of one defect event."""

    coord: Coord
    affected_processor: Optional[str]
    remapped: bool
    #: The replacement's region path, when remapping succeeded.
    new_path: Optional[Tuple[Coord, ...]] = None


class DefectInjector:
    """Injects defects and drives the removal/remap response."""

    def __init__(self, vlsi: VLSIProcessor, seed: Optional[int] = None) -> None:
        self.vlsi = vlsi
        self._rng = np.random.default_rng(seed)
        self.reports: List[DefectReport] = []

    # -- injection --------------------------------------------------------

    def inject_at(self, coord: Coord, remap: bool = True) -> DefectReport:
        """Fail the cluster at ``coord`` and handle the consequences.

        An owned cluster takes its whole processor down (the paper
        removes the failing AP); with ``remap`` the processor is
        re-created at the same scale elsewhere if capacity allows.

        Raises
        ------
        DefectError
            When ``coord`` lies outside the fabric — a defect cannot be
            injected into hardware that does not exist.
        """
        if coord not in self.vlsi.fabric:
            raise DefectError(
                f"cannot inject a defect at {coord}: outside the "
                f"{self.vlsi.fabric.rows}x{self.vlsi.fabric.cols} fabric"
            )
        cluster = self.vlsi.fabric.cluster(coord)
        owner = cluster.owner
        affected = None
        remapped = False
        new_path = None
        if owner is not None:
            affected = str(owner)
            instance = self.vlsi.processor(affected)
            n_clusters = instance.n_clusters
            self._force_release(affected)
            cluster.mark_defective()
            if remap:
                try:
                    replacement = self.vlsi.create_processor(
                        affected, n_clusters=n_clusters
                    )
                    remapped = True
                    new_path = replacement.region.path
                except ReproError:
                    # remapping failed (no capacity, fabric too broken,
                    # worm could not deliver) — the defect still happened,
                    # so the report below is recorded regardless
                    remapped = False
        else:
            cluster.mark_defective()
        report = DefectReport(coord, affected, remapped, new_path)
        self.reports.append(report)
        return report

    def inject_random(self, n: int = 1, remap: bool = True) -> List[DefectReport]:
        """Fail ``n`` random non-defective clusters."""
        if n < 0:
            raise ValueError("defect count cannot be negative")
        out = []
        for _ in range(n):
            healthy = [
                cl.coord
                for cl in self.vlsi.fabric.clusters()
                if not cl.defective
            ]
            if not healthy:
                break
            coord = healthy[int(self._rng.integers(len(healthy)))]
            out.append(self.inject_at(coord, remap=remap))
        return out

    # -- queries -----------------------------------------------------------

    def defective_count(self) -> int:
        return sum(1 for cl in self.vlsi.fabric.clusters() if cl.defective)

    def surviving_capacity(self) -> int:
        """Healthy clusters (free or owned) still on the fabric."""
        return sum(1 for cl in self.vlsi.fabric.clusters() if not cl.defective)

    # -- internals ---------------------------------------------------------

    def _force_release(self, name: str) -> None:
        """Tear down a processor regardless of its current state."""
        instance = self.vlsi.processor(name)
        if instance.state.state is ProcessorState.SLEEP:
            instance.state.wake()
        if instance.state.state is not ProcessorState.RELEASE:
            instance.state.release()
        self.vlsi.configurator.release(instance.region, owner=name)
        del self.vlsi.processors[name]
