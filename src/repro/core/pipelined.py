"""Wave-pipelined execution across processors (paper Figure 7(d)).

"This can be a pipelined execution through multiple processors."  The
sequential :class:`repro.core.partition.ProgramExecutor` runs one wave
at a time; this module overlaps waves: while the merge processor
finishes wave *k*, the condition processor already evaluates wave
*k+2*.  Each block occupies its processor for one time step per wave,
so for a linear chain of ``d`` blocks and ``n`` waves the makespan is
``d + n - 1`` steps instead of the sequential ``d·n`` — the same
fill-then-stream shape as the datapath-level pipeline of §2.5.

Control flow is handled exactly as in Figure 7: the condition block
forwards each wave to *one* branch, so different waves may travel
different paths; the merge point sees them in wave order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.core.vlsi_processor import VLSIProcessor
from repro.workloads.programs import BasicBlock, PartitionedProgram

__all__ = ["WaveRecord", "PipelinedStats", "PipelinedExecutor"]


@dataclass(frozen=True)
class WaveRecord:
    """One wave's journey: which blocks it visited at which step."""

    wave: int
    path: Tuple[Tuple[int, str], ...]  # ((step, block), ...)
    result: Dict[int, Any]


@dataclass(frozen=True)
class PipelinedStats:
    """Timing of one pipelined run."""

    waves: int
    steps: int
    block_executions: int

    @property
    def throughput(self) -> float:
        """Waves completed per step (→ 1.0 for long streams)."""
        if self.steps == 0:
            return 0.0
        return self.waves / self.steps


class PipelinedExecutor:
    """Runs many input waves through a partitioned program, overlapped.

    The scheduling model: at each time step, every processor executes at
    most one wave's block; a wave advances one block per step.  This is
    the steady-state behaviour Figure 7(d) sketches.  (Values move
    between steps as direct hand-offs; the mailbox-level protocol is
    exercised by :class:`repro.core.partition.ProgramExecutor`.)
    """

    def __init__(
        self,
        vlsi: VLSIProcessor,
        program: PartitionedProgram,
        placement: Dict[str, str],
    ) -> None:
        program.validate()
        for block in program.blocks():
            if block.name not in placement:
                raise ConfigurationError(f"block {block.name!r} unplaced")
            vlsi.processor(placement[block.name])
        self.vlsi = vlsi
        self.program = program
        self.placement = placement
        self.records: List[WaveRecord] = []

    def run(
        self, waves: List[Dict[int, Any]], max_steps: int = 10_000
    ) -> PipelinedStats:
        """Push every wave through the program, overlapping their block
        executions.  Results land in :attr:`records` in wave order.

        Raises
        ------
        SimulationError
            If the pipeline fails to drain within ``max_steps``.
        """
        entry = self.program.block(self.program.entry)
        # in-flight: wave index -> (block, pending inputs, path so far)
        in_flight: Dict[int, Tuple[BasicBlock, Dict[int, Any], List]] = {}
        next_wave = 0
        done: Dict[int, WaveRecord] = {}
        executions = 0
        step = 0
        while len(done) < len(waves):
            if step >= max_steps:
                raise SimulationError(
                    f"pipeline failed to drain within {max_steps} steps"
                )
            busy: set = set()
            # advance in-flight waves, oldest first (they have priority
            # at shared processors)
            for wave in sorted(in_flight):
                block, inputs, path = in_flight[wave]
                proc = self.placement[block.name]
                if proc in busy:
                    continue  # structural hazard: processor taken this step
                busy.add(proc)
                self.vlsi.activate(proc)
                outputs = block.run(inputs)
                self.vlsi.deactivate(proc)
                executions += 1
                path.append((step, block.name))
                nxt = self._successor(block, outputs)
                if nxt is None:
                    done[wave] = WaveRecord(wave, tuple(path), outputs)
                    del in_flight[wave]
                else:
                    succ_block, succ_inputs = nxt
                    in_flight[wave] = (succ_block, succ_inputs, path)
            # admit one new wave per step if the entry processor is free
            entry_proc = self.placement[entry.name]
            if next_wave < len(waves) and entry_proc not in busy and not any(
                blk.name == entry.name for blk, _, _ in in_flight.values()
            ):
                in_flight[next_wave] = (entry, dict(waves[next_wave]), [])
                next_wave += 1
            step += 1
        self.records = [done[w] for w in sorted(done)]
        return PipelinedStats(len(waves), step, executions)

    def _successor(
        self, block: BasicBlock, outputs: Dict[int, Any]
    ) -> Optional[Tuple[BasicBlock, Dict[int, Any]]]:
        """Pick the taken edge and build the successor's inputs."""
        taken: Optional[str] = None
        for condition_key, succ in block.successors:
            if condition_key is None or bool(outputs.get(condition_key)):
                taken = succ
                break
        if taken is None:
            return None
        succ_block = self.program.block(taken)
        payload = {
            k: v for k, v in outputs.items() if k in succ_block.input_ids
        }
        if not payload:
            condition_keys = {
                ck for ck, _ in block.successors if ck is not None
            }
            values = [v for k, v in outputs.items() if k not in condition_keys]
            if len(succ_block.input_ids) == 1 and values:
                payload = {succ_block.input_ids[0]: values[0]}
        return succ_block, payload

    def results(self) -> List[Dict[int, Any]]:
        """Final outputs, in wave order."""
        return [r.result for r in self.records]
