"""Up-/down-scaling, fusion and splitting of processors (section 3.3).

"Up- or down-scaling is simply to chain or unchain between the
segmented interconnection networks.  The scaling does not require a
dedicated instruction, and is to simply store the appropriate
configuration data to the appropriate programmable switch with a
wormhole reconfiguration."

All four operations work on INACTIVE processors (their memory is open
and nothing is executing) and preserve the linear-array invariant: a
processor's region is always one grid-adjacent path.
"""

from __future__ import annotations

from typing import Any, Collection, List, Optional, Set, Tuple

from repro import telemetry
from repro.errors import (
    ConfigurationError,
    RegionError,
    StateTransitionError,
)
from repro.core.states import ProcessorState
from repro.core.vlsi_processor import ProcessorInstance, VLSIProcessor
from repro.topology.regions import Region, path_region

__all__ = ["ScalingController"]

Coord = Tuple[int, int]


class ScalingController:
    """Performs scaling operations on a :class:`VLSIProcessor`.

    Parameters
    ----------
    vlsi:
        The chip being scaled.
    planner:
        Optional reconfiguration planner (e.g.
        :class:`repro.planner.MinimalPlanner`).  When set, an up-scale
        whose tail has no free adjacent extension relocates the whole
        processor onto the cheapest fold run of its grown size (a delta
        rewire) instead of failing, and shrink savings are accounted in
        :attr:`last_rewire_saved`.  ``None`` (the default) keeps the
        pre-planner behaviour byte-identical.
    """

    def __init__(
        self, vlsi: VLSIProcessor, planner: Optional[Any] = None
    ) -> None:
        self.vlsi = vlsi
        self.planner = planner
        #: Switch writes + config flits the most recent planned scaling
        #: operation avoided versus release-then-reconfigure (0 when the
        #: last operation needed no planning).
        self.last_rewire_saved = 0

    # -- up-scaling ---------------------------------------------------------

    def up_scale(
        self,
        name: str,
        extra_clusters: int,
        within: Optional[Collection[Coord]] = None,
    ) -> ProcessorInstance:
        """Grow a processor by chaining free clusters onto its tail.

        The extension is found by walking free clusters adjacent to the
        current tail (depth-first, preferring the fabric's fold
        direction), then wormhole-configured and chained on.  When
        ``within`` is given, the extension may only use those
        coordinates (a resident fabric confines each tenant to its
        shard this way).  The configuration worm's delivery latency is
        recorded on ``instance.config_cycles``.

        Raises
        ------
        RegionError
            If no free adjacent extension of that size exists.
        StateTransitionError
            If the processor is not INACTIVE.
        """
        if extra_clusters < 1:
            raise ValueError("need at least one extra cluster")
        instance = self._inactive(name)
        self.last_rewire_saved = 0
        tracer = telemetry.tracer()
        with telemetry.scope("scaling.up_scale"), tracer.span(
            "scaling.up_scale", kind="scaling",
            processor=name, extra_clusters=extra_clusters,
        ):
            extension = self._find_extension(
                instance.region, extra_clusters, within=within
            )
            if extension is None:
                if not self._planned_grow(
                    instance, extra_clusters, within, tracer
                ):
                    raise RegionError(
                        f"no free {extra_clusters}-cluster extension "
                        f"adjacent to {name!r}'s tail "
                        f"{instance.region.path[-1]}"
                    )
            else:
                ext_region = path_region(extension)
                op = self.vlsi.configurator.configure(ext_region, owner=name)
                instance.config_cycles += op.config_cycles
                instance.last_config_cycles = op.config_cycles
                # chain the junction: old tail -> new head
                tail, head = instance.region.path[-1], extension[0]
                self.vlsi.fabric.chain_switch(tail, head).chain()
                self.vlsi.fabric.shift_switch(tail, head).chain()
                instance.region = Region(
                    instance.region.path + tuple(extension)
                )
                if tracer.enabled:
                    tracer.instant(
                        "scaling.junction.chained",
                        tail=str(tail), head=str(head),
                    )
                    tracer.advance()
        telemetry.counter("scaling.up_scales").inc()
        self._observe_census()
        return instance

    def _planned_grow(
        self,
        instance: ProcessorInstance,
        extra_clusters: int,
        within: Optional[Collection[Coord]],
        tracer: Any,
    ) -> bool:
        """Planner fallback when no adjacent extension exists: relocate
        the whole processor onto the cheapest fold run of its grown size
        as one delta rewire.  Returns ``False`` (caller raises the usual
        :class:`RegionError`) when no planner is attached or the shard
        holds no such run."""
        if self.planner is None:
            return False
        move = self.planner.plan_grow(
            self.vlsi, instance, extra_clusters, within=within
        )
        if move is None:
            return False
        op = self.vlsi.configurator.reconfigure(
            move.old, move.new, owner=instance.name
        )
        instance.region = move.new
        instance.config_cycles += op.config_cycles
        instance.last_config_cycles = op.config_cycles
        self.last_rewire_saved = move.saved
        telemetry.counter("planner.rewires_saved").inc(move.saved)
        telemetry.counter("planner.grow_relocations").inc()
        if tracer.enabled:
            tracer.instant(
                "scaling.planned_relocation",
                head=str(move.new.path[0]), saved=move.saved,
            )
            tracer.advance()
        return True

    def _find_extension(
        self,
        region: Region,
        n: int,
        within: Optional[Collection[Coord]] = None,
    ) -> Optional[List[Coord]]:
        """DFS for a free path of ``n`` clusters starting adjacent to the
        region's tail, avoiding the region itself and (when ``within``
        is given) anything outside that scope."""
        fabric = self.vlsi.fabric
        blocked: Set[Coord] = set(region.path)
        scope: Optional[Set[Coord]] = None if within is None else set(within)

        def dfs(path: List[Coord]) -> Optional[List[Coord]]:
            if len(path) == n:
                return path
            cur = path[-1] if path else region.path[-1]
            for nbr in fabric.neighbors(cur):
                if nbr in blocked or nbr in path:
                    continue
                if scope is not None and nbr not in scope:
                    continue
                if not fabric.cluster(nbr).is_free:
                    continue
                found = dfs(path + [nbr])
                if found is not None:
                    return found
            return None

        return dfs([])

    # -- down-scaling --------------------------------------------------------

    def down_scale(self, name: str, drop_clusters: int) -> ProcessorInstance:
        """Shrink a processor by unchaining clusters from its tail.

        "The down-scale ... is possible with wormhole routing along with
        the unidirectional routing by clearing active state" — dropped
        clusters return to the release pool.

        Raises
        ------
        RegionError
            If the processor would shrink to nothing (use
            :meth:`VLSIProcessor.destroy_processor` for that).
        """
        instance = self._inactive(name)
        if drop_clusters < 1:
            raise ValueError("need at least one cluster to drop")
        if drop_clusters >= len(instance.region):
            raise RegionError(
                f"dropping {drop_clusters} of {len(instance.region)} "
                "clusters leaves nothing; destroy the processor instead"
            )
        self.last_rewire_saved = 0
        if self.planner is not None:
            # the legacy unchain below already *is* the delta — account
            # what release-then-reconfigure would have paid instead
            shrink = self.planner.plan_shrink(instance, drop_clusters)
            self.last_rewire_saved = shrink.saved
            telemetry.counter("planner.rewires_saved").inc(shrink.saved)
        tracer = telemetry.tracer()
        with telemetry.scope("scaling.down_scale"), tracer.span(
            "scaling.down_scale", kind="scaling",
            processor=name, drop_clusters=drop_clusters,
        ):
            if tracer.enabled:
                tracer.advance()
            keep = instance.region.path[:-drop_clusters]
            dropped = instance.region.path[-drop_clusters:]
            # unchain the junction and the dropped sub-path, then free clusters
            junction = (keep[-1], dropped[0])
            self.vlsi.fabric.chain_switch(*junction).unchain()
            self.vlsi.fabric.shift_switch(*junction).unchain()
            if len(dropped) > 1:
                self.vlsi.fabric.unchain_path(list(dropped))
            for coord in dropped:
                self.vlsi.fabric.cluster(coord).free()
            instance.region = Region(keep)
        telemetry.counter("scaling.down_scales").inc()
        self._observe_census()
        return instance

    # -- fusion / splitting ---------------------------------------------------

    def fuse(self, first: str, second: str, fused_name: Optional[str] = None) -> ProcessorInstance:
        """Fuse two processors into one large-scale processor.

        The tail of ``first`` must be grid-adjacent to the head of
        ``second`` (their linear arrays concatenate).  Both must be
        INACTIVE.  The fused processor keeps ``first``'s resources under
        ``fused_name`` (default: ``first``'s name).
        """
        a = self._inactive(first)
        b = self._inactive(second)
        tail, head = a.region.path[-1], b.region.path[0]
        if abs(tail[0] - head[0]) + abs(tail[1] - head[1]) != 1:
            raise RegionError(
                f"cannot fuse: {first!r} tail {tail} not adjacent to "
                f"{second!r} head {head}"
            )
        name = fused_name or first
        if name != first and name != second and name in self.vlsi.processors:
            raise ConfigurationError(f"processor {name!r} already exists")
        tracer = telemetry.tracer()
        with telemetry.scope("scaling.fuse"), tracer.span(
            "scaling.fuse", kind="scaling", first=first, second=second,
        ):
            if tracer.enabled:
                tracer.advance()
            # chain the junction and unify ownership
            self.vlsi.fabric.chain_switch(tail, head).chain()
            self.vlsi.fabric.shift_switch(tail, head).chain()
            for coord in b.region.path:
                cluster = self.vlsi.fabric.cluster(coord)
                cluster.free()
                cluster.allocate(name)
            if name != first:
                for coord in a.region.path:
                    cluster = self.vlsi.fabric.cluster(coord)
                    cluster.free()
                    cluster.allocate(name)
            fused_region = Region(a.region.path + b.region.path)
            del self.vlsi.processors[second]
            del self.vlsi.processors[first]
            fused = ProcessorInstance(name=name, region=fused_region)
            fused.state.configure()
            self.vlsi.processors[name] = fused
        telemetry.counter("scaling.fuses").inc()
        self._observe_census()
        return fused

    def split(
        self, name: str, at: int, head_name: str, tail_name: str
    ) -> Tuple[ProcessorInstance, ProcessorInstance]:
        """Split one processor into two at linear position ``at``.

        The first ``at`` clusters become ``head_name``, the rest
        ``tail_name``.  The junction switch is unchained; both halves
        come back INACTIVE.
        """
        instance = self._inactive(name)
        if not 0 < at < len(instance.region):
            raise RegionError(
                f"split point {at} outside (0, {len(instance.region)})"
            )
        for new in (head_name, tail_name):
            if new != name and new in self.vlsi.processors:
                raise ConfigurationError(f"processor {new!r} already exists")
        if head_name == tail_name:
            raise ConfigurationError("split halves need distinct names")
        tracer = telemetry.tracer()
        with telemetry.scope("scaling.split"), tracer.span(
            "scaling.split", kind="scaling", processor=name, at=at,
        ):
            if tracer.enabled:
                tracer.advance()
            head_path = instance.region.path[:at]
            tail_path = instance.region.path[at:]
            junction = (head_path[-1], tail_path[0])
            self.vlsi.fabric.chain_switch(*junction).unchain()
            self.vlsi.fabric.shift_switch(*junction).unchain()
            del self.vlsi.processors[name]
            halves = []
            for new_name, path in ((head_name, head_path), (tail_name, tail_path)):
                for coord in path:
                    cluster = self.vlsi.fabric.cluster(coord)
                    cluster.free()
                    cluster.allocate(new_name)
                inst = ProcessorInstance(name=new_name, region=Region(path))
                inst.state.configure()
                self.vlsi.processors[new_name] = inst
                halves.append(inst)
        telemetry.counter("scaling.splits").inc()
        self._observe_census()
        return halves[0], halves[1]

    # -- helpers -----------------------------------------------------------

    def _observe_census(self) -> None:
        """Publish the chip-wide Figure 6(e) census as gauges after a
        scaling operation — one ``enabled`` check when observation is
        off, so the hot path stays free (same discipline as tracing)."""
        if not telemetry.observer().enabled:
            return
        for state, count in self.vlsi.lifecycle_census().items():
            telemetry.gauge(f"scaling.census.{state}").set(float(count))

    def _inactive(self, name: str) -> ProcessorInstance:
        instance = self.vlsi.processor(name)
        if instance.state.state is not ProcessorState.INACTIVE:
            raise StateTransitionError(
                f"scaling needs {name!r} INACTIVE, is {instance.state.state.value}"
            )
        return instance
