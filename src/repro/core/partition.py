"""Executing partitioned programs across processors (paper Figure 7).

The Figure 7 flow: four basic blocks map onto four processors; the
condition processor activates and sends its operand to the taken branch
(writing into that processor's memory blocks while it is inactive), the
branch computes and forwards to the merge processor, which buffers the
final ``z``.  "This can be a pipelined execution through multiple
processors", and by isolating control flow into separate processors, a
mispredicted branch never flushes anyone else's datapath.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.core.vlsi_processor import VLSIProcessor
from repro.workloads.programs import BasicBlock, PartitionedProgram

__all__ = ["BlockExecution", "ProgramExecutor", "deploy_program"]


@dataclass(frozen=True)
class BlockExecution:
    """Trace record of one block's run on one processor."""

    step: int
    block: str
    processor: str
    inputs: Dict[int, Any]
    outputs: Dict[int, Any]


class ProgramExecutor:
    """Runs a :class:`PartitionedProgram` on a :class:`VLSIProcessor`.

    Parameters
    ----------
    vlsi:
        The chip.
    program:
        The partitioned program (entry + blocks + control edges).
    placement:
        ``{block_name: processor_name}``.  Every named processor must
        already exist (create them with clusters sized to each block).
    """

    def __init__(
        self,
        vlsi: VLSIProcessor,
        program: PartitionedProgram,
        placement: Dict[str, str],
    ) -> None:
        program.validate()
        for block in program.blocks():
            if block.name not in placement:
                raise ConfigurationError(f"block {block.name!r} unplaced")
            vlsi.processor(placement[block.name])  # must exist
        self.vlsi = vlsi
        self.program = program
        self.placement = placement
        self.trace: List[BlockExecution] = []

    def run(self, inputs: Dict[int, Any], max_steps: int = 100) -> Dict[int, Any]:
        """Execute from the entry block; returns the final block's outputs.

        ``inputs`` are delivered into the entry processor's mailbox first
        (the supervising processor plays Figure 7's "preceding
        processor" role).

        Raises
        ------
        SimulationError
            If the control flow fails to terminate within ``max_steps``.
        """
        self.trace = []
        entry = self.program.block(self.program.entry)
        entry_proc = self.placement[entry.name]
        # deliver program inputs directly (the supervisor writes them)
        for key, value in inputs.items():
            self.vlsi.processor(entry_proc).mailbox.deliver(
                "supervisor", key, value
            )

        current: Optional[BasicBlock] = entry
        outputs: Dict[int, Any] = {}
        step = 0
        while current is not None:
            if step >= max_steps:
                raise SimulationError(
                    f"program exceeded {max_steps} block executions"
                )
            proc_name = self.placement[current.name]
            instance = self.vlsi.processor(proc_name)
            block_inputs = {
                key: instance.mailbox.read(key) for key in current.input_ids
            }
            # activation: protections set, the block runs, then deactivates
            self.vlsi.activate(proc_name)
            outputs = current.run(block_inputs)
            self.vlsi.deactivate(proc_name)
            self.trace.append(
                BlockExecution(step, current.name, proc_name, block_inputs, outputs)
            )
            current = self._forward(current, proc_name, outputs)
            step += 1
        return outputs

    def _forward(
        self, block: BasicBlock, proc_name: str, outputs: Dict[int, Any]
    ) -> Optional[BasicBlock]:
        """Pick the taken successor and deliver its inputs (§3.4 writes)."""
        taken: Optional[str] = None
        for condition_key, succ in block.successors:
            if condition_key is None or bool(outputs.get(condition_key)):
                taken = succ
                break
        if taken is None:
            return None
        succ_block = self.program.block(taken)
        succ_proc = self.placement[taken]
        self._deliver(block, proc_name, succ_block, succ_proc, outputs)
        return succ_block

    def _deliver(
        self,
        block: BasicBlock,
        proc_name: str,
        succ_block: BasicBlock,
        succ_proc: str,
        outputs: Dict[int, Any],
    ) -> None:
        """Write the values the successor needs into its memory blocks.

        Keys the successor expects that the current block produced are
        forwarded under the successor's input IDs; matching is by ID
        (shared namespace), falling back to positional order when the
        arities line up (single-input blocks keep their historical
        first-value fallback).  A successor whose inputs can be matched
        neither by ID nor positionally would silently read stale mailbox
        values — that is a wiring bug in the program, so it raises
        :class:`SimulationError` instead.
        """
        forwarded = dict(outputs)
        # drop pure condition outputs the successor does not consume
        payload = {
            k: v for k, v in forwarded.items() if k in succ_block.input_ids
        }
        if not payload and succ_block.input_ids:
            # positional fallback: send the non-condition outputs in order
            values = [
                v
                for k, v in forwarded.items()
                if all(k != ck for ck, _ in block.successors if ck is not None)
            ]
            if len(succ_block.input_ids) == 1 and len(values) >= 1:
                payload = {succ_block.input_ids[0]: values[0]}
            elif values and len(values) == len(succ_block.input_ids):
                payload = dict(zip(succ_block.input_ids, values))
            elif values:
                raise SimulationError(
                    f"block {block.name!r} forwards {len(values)} values "
                    f"but successor {succ_block.name!r} expects "
                    f"{len(succ_block.input_ids)} inputs "
                    f"{list(succ_block.input_ids)!r} with no matching IDs; "
                    "the successor would read stale mailbox state"
                )
        for key, value in payload.items():
            self.vlsi.send(proc_name, succ_proc, key, value)


def deploy_program(
    vlsi: VLSIProcessor,
    program: PartitionedProgram,
    name_prefix: str = "P",
    strategy: str = "rectangle",
) -> ProgramExecutor:
    """The supervisor role of §3.3/Figure 7: size, place and configure
    one processor per basic block, then return a ready executor.

    "Another processor, which may be a preceding atomic block or
    supervisor processor[,] configures the four processors."  Each
    block's processor is sized so its datapath fits the stack capacity
    (§2.5's streaming rule), and blocks are configured in program order
    — the in-order configuration that "perform[s] a spatially local
    placement" (Figure 7(b)).

    Raises
    ------
    repro.errors.RegionError
        If the fabric cannot host every block at its required scale.
    """
    program.validate()
    per_cluster = vlsi.fabric.resources.compute_objects
    placement: Dict[str, str] = {}
    for block in program.blocks():
        demand = len(block.graph)
        n_clusters = max(1, -(-demand // per_cluster))  # ceil
        proc_name = f"{name_prefix}_{block.name}"
        vlsi.create_processor(proc_name, n_clusters=n_clusters, strategy=strategy)
        placement[block.name] = proc_name
    return ProgramExecutor(vlsi, program, placement)
