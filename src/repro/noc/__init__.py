"""On-chip network for inter-processor communication and scaling (§3.3-3.4).

The VLSI processor reconfigures itself by *wormhole routing*: a
configuration worm travels hop by hop through on-chip routers, planting
reservation flags at each programmable switch it crosses so that two
concurrent scaling operations cannot allocate the same cluster, and then
storing the configuration data that chains the region.

Modules
-------
:mod:`repro.noc.flit`
    Flits and packets (head/body/tail worm structure).
:mod:`repro.noc.routing_algos`
    Port model and XY (dimension-ordered) routing.
:mod:`repro.noc.router`
    The five-port router of Figure 7(e): queue → allocation → output.
:mod:`repro.noc.network`
    A cycle-level grid of routers with injection/ejection and statistics.
:mod:`repro.noc.wormhole`
    Two-phase wormhole reconfiguration over the S-topology (reserve →
    program/commit, abort on conflict), per section 3.3.
:mod:`repro.noc.traffic`
    Synthetic traffic generators for the network benches.
"""

from repro.noc.flit import Flit, FlitType, Packet, make_packet
from repro.noc.routing_algos import Port, xy_next_port, xy_path
from repro.noc.router import Router
from repro.noc.network import RouterNetwork, DeliveryRecord
from repro.noc.wormhole import WormholeConfigurator, ScalingOperation
from repro.noc.traffic import (
    uniform_random_pairs,
    neighbor_pairs,
    hotspot_pairs,
)

__all__ = [
    "Flit",
    "FlitType",
    "Packet",
    "make_packet",
    "Port",
    "xy_next_port",
    "xy_path",
    "Router",
    "RouterNetwork",
    "DeliveryRecord",
    "WormholeConfigurator",
    "ScalingOperation",
    "uniform_random_pairs",
    "neighbor_pairs",
    "hotspot_pairs",
]
