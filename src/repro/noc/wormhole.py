"""Wormhole reconfiguration of the S-topology (paper section 3.3).

"The scaling is done by programming the switches through wormhole
routing using on-chip routers ... Wormhole routing is used to store a
reservation flag at each programmable switch to avoid a resource
(cluster) allocation conflict among the scaling configurations."

A scaling operation is two-phase, exactly like the worm:

1. **Reserve** — the worm's head crawls the region path, planting the
   reservation flag on every chain switch it will program and claiming
   every cluster.  Hitting a flag or cluster owned by another in-flight
   operation aborts the worm, which retreats and releases everything it
   had taken (no partial configurations survive).
2. **Commit** — the configuration data in the worm's body programs the
   switches (chain the region), ownership transfers to the processor,
   and the reservation flags clear.

Down-scaling is the reverse: unchain and free, no reservation needed
("the down-scale ... is possible ... by clearing active state").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Tuple

from repro import telemetry
from repro.errors import (
    AllocationConflictError,
    DefectError,
    FaultInjectionError,
    RegionError,
    SimulationError,
)
from repro.noc.flit import make_packet
from repro.noc.network import RouterNetwork
from repro.noc.routing_algos import xy_path
from repro.topology.regions import Region
from repro.topology.s_topology import STopology

__all__ = ["ScalingOperation", "WormholeConfigurator", "WORM_FAILURES"]

Coord = Tuple[int, int]

#: The exceptions a scaling worm can *legitimately* die of — conflicts,
#: defects, bad regions, injected faults, transport no-progress.  The
#: abort/rollback handlers catch exactly these; anything else (an
#: ``AttributeError`` in a probe, say) is a genuine software defect and
#: must propagate instead of being counted as an aborted attempt.
WORM_FAILURES = (
    AllocationConflictError,
    DefectError,
    FaultInjectionError,
    RegionError,
    SimulationError,
)

#: Backwards-compatible alias (pre-planner callers import the old name).
_WORM_FAILURES = WORM_FAILURES


@dataclass(frozen=True)
class ScalingOperation:
    """Record of one completed scaling (configuration) worm."""

    op_id: int
    owner: Hashable
    region: Region
    #: Router cycles spent delivering the configuration worm (0 when the
    #: operation ran without a router network attached).
    config_cycles: int
    #: Switches programmed (chained) by the commit phase.
    switches_programmed: int


class WormholeConfigurator:
    """Programs regions onto an :class:`STopology` with worm semantics.

    Parameters
    ----------
    fabric:
        The S-topology being (re)configured.
    network:
        Optional cycle-level router network.  When given, each scaling
        operation also sends a real configuration worm (one flit per
        switch to program) from ``origin`` to the region's first cluster
        and reports the measured delivery latency.
    origin:
        Where configuration worms start — the supervising processor's
        position (Figure 7(c) shows a preceding processor configuring its
        successors).
    """

    def __init__(
        self,
        fabric: STopology,
        network: Optional[RouterNetwork] = None,
        origin: Coord = (0, 0),
        faults=None,
    ) -> None:
        self.fabric = fabric
        self.network = network
        self.origin = origin
        #: Optional :class:`repro.faults.FaultInjector`: a faulty chain
        #: switch silently ignores its programming instruction, which the
        #: post-delivery verify turns into an abort-and-retreat.
        self.faults = faults
        # per-configurator, not module-global: op and packet ids would
        # otherwise depend on import-time history and leak into trace
        # attributes, breaking cross-run and serial-vs-parallel identity
        self._op_ids = itertools.count()
        self._packet_ids = itertools.count()

    # -- up-scaling ---------------------------------------------------------

    def configure(self, region: Region, owner: Hashable) -> ScalingOperation:
        """Run a full reserve→commit scaling worm for ``region``.

        Raises
        ------
        AllocationConflictError
            If another in-flight worm holds any needed switch/cluster
            (everything this worm took is rolled back first).
        DefectError
            If the region includes a defective cluster.
        RegionError
            If the region path leaves the fabric.
        """
        op_id = next(self._op_ids)
        worm_token = ("worm", op_id)
        tracer = telemetry.tracer()
        tspan = None
        if tracer.enabled:
            tspan = tracer.start(
                "wormhole.configure", kind="reconfig", op_id=op_id,
                owner=str(owner), head=str(region.path[0]),
                clusters=len(region.path), ring=region.ring,
            )
        try:
            with telemetry.scope("wormhole.reserve"), \
                    tracer.span("wormhole.reserve", kind="reconfig"):
                self._reserve(region, worm_token)
                if tracer.enabled:
                    tracer.advance()
        except _WORM_FAILURES:
            # a failed reserve already rolled its own flags back — only
            # close the operation span, don't run the commit-side abort
            if tspan is not None:
                tspan.end(status="error")
            raise
        try:
            with telemetry.scope("wormhole.commit"), \
                    tracer.span("wormhole.commit", kind="reconfig"):
                if self.network is not None:
                    # phase 2a: take ownership, then let the worm's payload
                    # flits program the switches as they eject (§3.3)
                    for coord in region.path:
                        self.fabric.cluster(coord).allocate(owner)
                    cycles, switches = self._deliver_worm(region)
                    self._verify_chained(region)
                    self._release_flags(region, worm_token)
                else:
                    switches = self._commit(region, owner, worm_token)
                    cycles = 0
                if tracer.enabled:
                    tracer.advance()
        except _WORM_FAILURES:
            telemetry.counter("wormhole.aborts").inc()
            telemetry.event(
                "wormhole.abort", op_id=op_id, region_head=region.path[0]
            )
            if tspan is not None:
                tspan.add_event(
                    "wormhole.abort", op_id=op_id,
                    region_head=str(region.path[0]),
                )
            self._abort(region, worm_token)
            if self.network is not None:
                # the worm retreats: its dead flits leave the routers so
                # a retry (or the next operation) sees clean transport
                self.network.purge()
            if tspan is not None:
                tspan.end(status="error")
            raise
        telemetry.counter("wormhole.configures").inc()
        telemetry.counter("wormhole.switches_programmed").inc(switches)
        if tspan is not None:
            tspan.set_attr("config_cycles", cycles)
            tspan.set_attr("switches_programmed", switches)
            tspan.end()
        return ScalingOperation(op_id, owner, region, cycles, switches)

    def _reserve(self, region: Region, token: Hashable) -> None:
        """Phase 1: plant reservation flags; abort-and-rollback on conflict."""
        taken: List[Tuple[Coord, Coord]] = []
        #: where the worm's head was when it hit trouble (span annotation)
        at = "start"
        try:
            for coord in region.path:
                at = f"cluster {coord}"
                if coord not in self.fabric:
                    raise RegionError(f"cluster {coord} outside the fabric")
                cluster = self.fabric.cluster(coord)
                if cluster.defective:
                    raise DefectError(f"cluster {coord} is defective")
                if cluster.owner is not None:
                    raise AllocationConflictError(
                        f"cluster {coord} owned by {cluster.owner!r}"
                    )
            edges = list(zip(region.path, region.path[1:]))
            if region.ring:
                edges.append((region.path[-1], region.path[0]))
            for a, b in edges:
                at = f"switch {a}-{b}"
                self.fabric.chain_switch(a, b).reserve(token)
                taken.append((a, b))
        except _WORM_FAILURES as exc:
            if isinstance(exc, AllocationConflictError):
                telemetry.counter("wormhole.reserve.conflicts").inc()
                telemetry.instant(
                    "wormhole.reserve.conflict", at=at,
                    flags_rolled_back=len(taken),
                )
            for a, b in taken:
                self.fabric.chain_switch(a, b).release_reservation(token)
            raise

    def _commit(self, region: Region, owner: Hashable, token: Hashable) -> int:
        """Phase 2: program switches, take ownership, clear flags."""
        for coord in region.path:
            self.fabric.cluster(coord).allocate(owner)
        if self.faults is not None:
            edges = list(zip(region.path, region.path[1:]))
            if region.ring:
                edges.append((region.path[-1], region.path[0]))
            for a, b in edges:
                if self.faults.chain_switch_fault(a, b):
                    raise FaultInjectionError(
                        f"chain switch {a}-{b} ignored its programming"
                    )
        region.chain_on(self.fabric)
        switches = max(0, len(region.path) - 1) + (1 if region.ring else 0)
        self._release_flags(region, token)
        return switches

    def _abort(self, region: Region, token: Hashable) -> None:
        """Roll back a failed commit: unchain any programmed switches,
        free clusters, clear flags."""
        if all(coord in self.fabric for coord in region.path):
            region.unchain_on(self.fabric)  # unchaining twice is a no-op
        for coord in region.path:
            if coord in self.fabric:
                cluster = self.fabric.cluster(coord)
                if cluster.owner is not None:
                    cluster.free()
        self._release_flags(region, token)

    def _release_flags(self, region: Region, token: Hashable) -> None:
        for a, b in zip(region.path, region.path[1:]):
            self.fabric.chain_switch(a, b).release_reservation(token)
        if region.ring:
            self.fabric.chain_switch(
                region.path[-1], region.path[0]
            ).release_reservation(token)

    def _deliver_worm(
        self,
        region: Region,
        edges: Optional[List[Tuple[Coord, Coord]]] = None,
    ) -> Tuple[int, int]:
        """Send the configuration worm whose payload flits *are* the
        switch programming: each flit carries one chain instruction that
        the destination cluster applies on ejection.

        ``edges`` restricts the worm's payload to those chain
        instructions (a delta rewire only ships the freshly-chained
        edges); by default the worm programs the whole region.

        Returns ``(delivery_cycles, switches_programmed)``.
        """
        assert self.network is not None
        start = self.network.cycle_count
        if edges is None:
            edges = list(zip(region.path, region.path[1:]))
            if region.ring:
                edges.append((region.path[-1], region.path[0]))
        payloads: List[Tuple[str, Coord, Coord]] = [
            ("chain", a, b) for a, b in edges
        ]
        applied = 0

        def apply_payload(flit) -> None:
            nonlocal applied
            if not isinstance(flit.payload, tuple):
                return
            kind, a, b = flit.payload
            if kind == "chain":
                if self.faults is not None and self.faults.chain_switch_fault(a, b):
                    # the switch ignored the instruction; the region ends
                    # up partially chained and _verify_chained aborts
                    telemetry.counter("wormhole.switch_faults").inc()
                    return
                self.fabric.chain_switch(a, b).chain()
                self.fabric.shift_switch(a, b).chain()
                applied += 1

        previous_hook = self.network.on_deliver
        self.network.on_deliver = apply_payload
        try:
            packet = make_packet(
                self.origin, region.path[0], payloads=payloads or [None],
                packet_id=next(self._packet_ids),
            )
            if self.network.express_eligible(packet):
                # solo worm on a drained, unobserved, fault-pristine
                # network: its schedule is closed-form, so skip the
                # cycle stepping (bit-identical — see deliver_express)
                record = self.network.deliver_express(packet)
            else:
                self.network.inject(packet)
                self.network.run_until_drained()
                record = self.network.record_for(packet.packet_id)
        finally:
            self.network.on_deliver = previous_hook
        cycles = (record.delivered_at - start) if record else 0
        return cycles, applied

    def _verify_chained(self, region: Region) -> None:
        """Post-condition of a delivered worm: the region is one chained
        component (single-cluster regions are trivially so)."""
        component = self.fabric.chained_component(region.path[0])
        if not set(region.path) <= component:
            raise RegionError(
                f"configuration worm left region at {region.path[0]} "
                "partially chained"
            )

    # -- delta rewiring ------------------------------------------------------

    def reconfigure(
        self, old: Region, new: Region, owner: Hashable
    ) -> ScalingOperation:
        """Morph ``owner``'s region from ``old`` to ``new`` as a delta.

        Unlike release-then-:meth:`configure`, only the *difference* is
        touched: directed edges leaving the assignment are unchained
        (direct clearing, §3.3 — no worm flits), freshly-added directed
        edges are reserved then chained (one config-stream flit each when
        a router network is attached), and only the added clusters are
        claimed / removed clusters freed.  Clusters shared by both
        assignments never leave ``owner``, so a failure mid-commit rolls
        the fabric back to exactly the ``old`` wiring — the processor is
        never left regionless.

        Raises
        ------
        AllocationConflictError
            If ``owner`` does not own all of ``old``, or an added cluster
            or switch is held by someone else (rolled back first).
        DefectError
            If an added cluster is defective.
        RegionError
            If ``new`` leaves the fabric or the delta worm leaves it
            partially chained.
        """
        for coord in old.path:
            cluster = self.fabric.cluster(coord)
            if cluster.owner != owner:
                raise AllocationConflictError(
                    f"cluster {coord} owned by {cluster.owner!r}, "
                    f"not {owner!r}"
                )
        op_id = next(self._op_ids)
        token = ("rewire", op_id)
        old_edges = self._region_edges(old)
        new_edges = self._region_edges(new)
        removed = [e for e in old_edges if e not in set(new_edges)]
        added = [e for e in new_edges if e not in set(old_edges)]
        old_coords = set(old.path)
        new_coords = set(new.path)
        added_coords = [c for c in new.path if c not in old_coords]
        removed_coords = [c for c in old.path if c not in new_coords]
        tracer = telemetry.tracer()
        tspan = None
        if tracer.enabled:
            tspan = tracer.start(
                "wormhole.reconfigure", kind="reconfig", op_id=op_id,
                owner=str(owner), head=str(new.path[0]),
                added_edges=len(added), removed_edges=len(removed),
            )
        # phase 1: reserve the added edges' switches, validate added clusters
        taken: List[Tuple[Coord, Coord]] = []
        try:
            for coord in added_coords:
                if coord not in self.fabric:
                    raise RegionError(f"cluster {coord} outside the fabric")
                cluster = self.fabric.cluster(coord)
                if cluster.defective:
                    raise DefectError(f"cluster {coord} is defective")
                if cluster.owner is not None:
                    raise AllocationConflictError(
                        f"cluster {coord} owned by {cluster.owner!r}"
                    )
            for a, b in added:
                self.fabric.chain_switch(a, b).reserve(token)
                taken.append((a, b))
        except WORM_FAILURES:
            for a, b in taken:
                self.fabric.chain_switch(a, b).release_reservation(token)
            if tspan is not None:
                tspan.end(status="error")
            raise
        # phase 2: commit the delta
        try:
            for coord in added_coords:
                self.fabric.cluster(coord).allocate(owner)
            for a, b in removed:
                self.fabric.chain_switch(a, b).unchain()
                self.fabric.shift_switch(a, b).unchain()
            if self.network is not None and added:
                cycles, switches = self._deliver_worm(new, edges=added)
            else:
                if self.faults is not None:
                    for a, b in added:
                        if self.faults.chain_switch_fault(a, b):
                            raise FaultInjectionError(
                                f"chain switch {a}-{b} ignored its "
                                "programming"
                            )
                for a, b in added:
                    self.fabric.chain_switch(a, b).chain()
                    self.fabric.shift_switch(a, b).chain()
                cycles, switches = 0, len(added)
            self._verify_chained(new)
            for a, b in added:
                self.fabric.chain_switch(a, b).release_reservation(token)
            for coord in removed_coords:
                self.fabric.cluster(coord).free()
        except WORM_FAILURES:
            telemetry.counter("wormhole.aborts").inc()
            telemetry.event(
                "wormhole.abort", op_id=op_id, region_head=new.path[0]
            )
            if tspan is not None:
                tspan.add_event(
                    "wormhole.abort", op_id=op_id,
                    region_head=str(new.path[0]),
                )
            # the worm retreats to the *old* wiring: undo the additions,
            # restore the removals, keep shared clusters untouched
            for a, b in added:
                self.fabric.chain_switch(a, b).unchain()
                self.fabric.shift_switch(a, b).unchain()
            for coord in added_coords:
                cluster = self.fabric.cluster(coord)
                if cluster.owner is not None:
                    cluster.free()
            for a, b in removed:
                self.fabric.chain_switch(a, b).chain()
                self.fabric.shift_switch(a, b).chain()
            for a, b in added:
                self.fabric.chain_switch(a, b).release_reservation(token)
            if self.network is not None:
                self.network.purge()
            if tspan is not None:
                tspan.end(status="error")
            raise
        telemetry.counter("wormhole.reconfigures").inc()
        telemetry.counter("wormhole.switches_programmed").inc(switches)
        if tspan is not None:
            tspan.set_attr("config_cycles", cycles)
            tspan.set_attr("switches_programmed", switches)
            tspan.end()
        return ScalingOperation(op_id, owner, new, cycles, switches)

    @staticmethod
    def _region_edges(region: Region) -> List[Tuple[Coord, Coord]]:
        edges = list(zip(region.path, region.path[1:]))
        if region.ring and len(region.path) > 1:
            edges.append((region.path[-1], region.path[0]))
        return edges

    # -- down-scaling --------------------------------------------------------

    def release(self, region: Region, owner: Hashable) -> None:
        """Down-scale: unchain the region and return clusters to the pool.

        Raises
        ------
        AllocationConflictError
            If any cluster in the region is not owned by ``owner``.
        """
        for coord in region.path:
            cluster = self.fabric.cluster(coord)
            if cluster.owner != owner:
                raise AllocationConflictError(
                    f"cluster {coord} owned by {cluster.owner!r}, not {owner!r}"
                )
        region.unchain_on(self.fabric)
        for coord in region.path:
            self.fabric.cluster(coord).free()

    # -- helpers -----------------------------------------------------------

    def route_length(self, region: Region) -> int:
        """Hops the configuration worm travels from the origin to the region."""
        return len(xy_path(self.origin, region.path[0])) - 1
