"""The five-port wormhole router (paper Figure 7(e), reference [18]).

"Figure 7 (e) shows the current router architecture under development"
— each of the five ports (N/E/S/W/Local) has an input **queue**, an
**allocation** stage, and an **output** stage.  This model implements
that microarchitecture at flit granularity:

* one flit may leave per *physical* output port per cycle;
* a HEAD flit requests an output from the allocation stage (XY routing)
  and, once granted, *locks* the (input, VC) → output pairing — the
  wormhole — until its TAIL flit passes;
* allocation among competing inputs is round-robin for fairness;
* optional **virtual channels** (the paper cites Dally's virtual-channel
  flow control [18]): with ``n_vcs > 1`` each input port holds one
  queue per VC, and worm locks are per-VC, so a blocked worm on one VC
  no longer head-of-line-blocks the physical link for other worms.

Backpressure is cooperative: the router *proposes* moves
(:meth:`Router.arbitrate`), and the network commits each move only when
the downstream queue has space (:meth:`Router.commit_move`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Tuple

from repro.errors import SimulationError
from repro.noc.flit import Flit
from repro.noc.routing_algos import Port, xy_next_port

__all__ = ["ProposedMove", "Router"]

Coord = Tuple[int, int]
VcKey = Tuple[Port, int]

_PORT_ORDER = [Port.NORTH, Port.EAST, Port.SOUTH, Port.WEST, Port.LOCAL]


@dataclass(frozen=True)
class ProposedMove:
    """One flit movement the allocation stage wants to make this cycle."""

    in_port: Port
    out_port: Port
    flit: Flit
    vc: int = 0


class Router:
    """One grid router with five ports, per-VC in-queues and wormhole
    output locking."""

    def __init__(
        self, coord: Coord, queue_capacity: int = 4, n_vcs: int = 1
    ) -> None:
        if queue_capacity < 1:
            raise ValueError("queue capacity must be positive")
        if n_vcs < 1:
            raise ValueError("need at least one virtual channel")
        self.coord = coord
        self.queue_capacity = queue_capacity
        self.n_vcs = n_vcs
        self.queues: Dict[VcKey, Deque[Flit]] = {
            (p, vc): deque() for p in _PORT_ORDER for vc in range(n_vcs)
        }
        self._route_lock: Dict[VcKey, Port] = {}  # (input, vc) -> output
        self._out_owner: Dict[Tuple[Port, int], VcKey] = {}  # (output, vc) -> owner
        self._rr = 0  # round-robin start index for allocation fairness

    # -- queue stage -----------------------------------------------------

    def can_accept(self, port: Port, vc: int = 0) -> bool:
        """Whether the input queue at ``(port, vc)`` has space."""
        return len(self.queues[(port, vc)]) < self.queue_capacity

    def receive(self, port: Port, flit: Flit) -> None:
        """Enqueue an arriving flit on its virtual channel.

        Raises
        ------
        SimulationError
            On overflow — the network must check :meth:`can_accept`
            first — or a flit carrying an unprovisioned VC.
        """
        vc = getattr(flit, "vc", 0)
        if not 0 <= vc < self.n_vcs:
            raise SimulationError(
                f"router {self.coord}: flit on VC {vc} but only "
                f"{self.n_vcs} VCs provisioned"
            )
        if not self.can_accept(port, vc):
            raise SimulationError(
                f"router {self.coord} queue {port.value}/vc{vc} overflow"
            )
        self.queues[(port, vc)].append(flit)

    def queued_flits(self) -> int:
        """Total flits buffered across every (port, VC) input queue —
        the router's contribution to the buffer-depth heatmap."""
        return sum(len(q) for q in self.queues.values())

    # -- allocation stage --------------------------------------------------

    def arbitrate(self) -> List[ProposedMove]:
        """Propose up to one flit per physical output port for this cycle.

        (Input, VC) pairs are scanned in round-robin order.  A locked
        pair always proposes along its lock; an unlocked pair must
        present a HEAD flit (wormhole invariant) and contends for the
        XY output on its own VC.
        """
        moves: List[ProposedMove] = []
        granted_outputs: set = set()
        keys = [
            (p, vc) for p in _PORT_ORDER for vc in range(self.n_vcs)
        ]
        n = len(keys)
        for i in range(n):
            in_key = keys[(self._rr + i) % n]
            in_port, vc = in_key
            q = self.queues[in_key]
            if not q:
                continue
            flit = q[0]
            locked = self._route_lock.get(in_key)
            if locked is not None:
                out = locked
            else:
                if not flit.is_head:
                    raise SimulationError(
                        f"router {self.coord}: non-head flit of packet "
                        f"{flit.packet_id} at unlocked input "
                        f"{in_port.value}/vc{vc}"
                    )
                out = xy_next_port(self.coord, flit.dst)
                owner = self._out_owner.get((out, vc))
                if owner is not None and owner != in_key:
                    continue  # this VC of the output held by another worm
            if out in granted_outputs:
                continue  # one flit per physical output per cycle
            granted_outputs.add(out)
            moves.append(ProposedMove(in_port, out, flit, vc))
        return moves

    # -- output stage -----------------------------------------------------

    def commit_move(self, move: ProposedMove) -> Flit:
        """Actually send the proposed flit (the network verified space).

        Updates wormhole locks: HEAD locks the pairing, TAIL releases it.
        """
        in_key = (move.in_port, move.vc)
        q = self.queues[in_key]
        if not q or q[0] is not move.flit:
            raise SimulationError(
                f"router {self.coord}: stale move commit at "
                f"{move.in_port.value}/vc{move.vc}"
            )
        flit = q.popleft()
        out_key = (move.out_port, move.vc)
        if flit.is_head and not flit.is_tail:
            self._route_lock[in_key] = move.out_port
            self._out_owner[out_key] = in_key
        if flit.is_tail:
            self._route_lock.pop(in_key, None)
            if self._out_owner.get(out_key) == in_key:
                del self._out_owner[out_key]
        self._rr = (self._rr + 1) % (len(_PORT_ORDER) * self.n_vcs)
        return flit

    def clear(self) -> int:
        """Drop every queued flit and release all wormhole locks (the
        network's :meth:`~repro.noc.network.RouterNetwork.purge` —
        a retreating worm's flits vanish).  Returns flits dropped."""
        dropped = sum(len(q) for q in self.queues.values())
        for q in self.queues.values():
            q.clear()
        self._route_lock.clear()
        self._out_owner.clear()
        return dropped

    # -- inspection --------------------------------------------------------

    @property
    def is_idle(self) -> bool:
        return all(not q for q in self.queues.values()) and not self._route_lock

    def occupancy(self) -> int:
        """Total queued flits across all ports and VCs."""
        return sum(len(q) for q in self.queues.values())

    def locked_pairs(self) -> Dict[VcKey, Port]:
        """Live wormhole (input, vc) → output locks (diagnostics)."""
        return dict(self._route_lock)
