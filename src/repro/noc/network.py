"""Cycle-level router-grid simulator.

Connects a grid of :class:`repro.noc.router.Router` instances, injects
packets at their source routers' LOCAL ports, steps the whole fabric one
cycle at a time, and collects per-packet latency records.  XY routing on
a mesh is deadlock-free, but the simulator still watches for global
no-progress (a protocol bug would otherwise hang a test run).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro import telemetry
from repro.errors import RoutingError, SimulationError
from repro.noc.flit import Flit, Packet
from repro.noc.router import Router
from repro.noc.routing_algos import OPPOSITE, Port, neighbor_via, xy_path
from repro.topology.metrics import manhattan

__all__ = ["DeliveryRecord", "RouterNetwork"]

Coord = Tuple[int, int]


@dataclass(frozen=True)
class DeliveryRecord:
    """Lifetime of one delivered packet."""

    packet_id: int
    src: Coord
    dst: Coord
    injected_at: int
    delivered_at: int
    n_flits: int

    @property
    def latency(self) -> int:
        return self.delivered_at - self.injected_at

    @property
    def hops(self) -> int:
        return manhattan(self.src, self.dst)


class RouterNetwork:
    """A ``rows × cols`` grid of wormhole routers."""

    def __init__(
        self,
        rows: int,
        cols: int,
        queue_capacity: int = 4,
        n_vcs: int = 1,
        on_deliver=None,
        faults=None,
    ) -> None:
        """``on_deliver(flit)`` — optional hook invoked as each flit
        ejects at its destination's LOCAL port; this is how configuration
        worms apply their switch-programming payloads (§3.3).

        ``faults`` — optional :class:`repro.faults.FaultInjector`: a
        faulty link stalls the flit crossing it that cycle (transient
        faults heal, permanent ones starve the worm until the
        no-progress watchdog aborts it); a corrupted payload flit still
        arrives but its ``on_deliver`` programming action is lost."""
        if rows < 1 or cols < 1:
            raise RoutingError("network needs positive dimensions")
        self.rows = rows
        self.cols = cols
        self.n_vcs = n_vcs
        self.on_deliver = on_deliver
        self.faults = faults
        self.routers: Dict[Coord, Router] = {
            (r, c): Router((r, c), queue_capacity, n_vcs=n_vcs)
            for r in range(rows)
            for c in range(cols)
        }
        self.cycle_count = 0
        #: Optional :class:`repro.telemetry.Sampler` ticked once per
        #: :meth:`step` — attach buffer-depth probes here to record the
        #: per-router queue heatmap; ``None`` (the default) costs one
        #: attribute check per cycle.
        self.sampler = None
        #: While express delivery replays a worm's schedule, this holds the
        #: synthetic per-router queue depths :meth:`buffer_depths` should
        #: report to the sampler's probes; ``None`` means live queues.
        self._express_depths: Optional[Dict[str, int]] = None
        self.delivered: List[DeliveryRecord] = []
        self._inject_backlog: Dict[Coord, Deque[Flit]] = {
            coord: deque() for coord in self.routers
        }
        self._inject_time: Dict[int, int] = {}
        self._arrived_flits: Dict[int, int] = {}
        self._packet_meta: Dict[int, Packet] = {}

    # -- injection --------------------------------------------------------

    def inject(self, packet: Packet) -> None:
        """Queue a packet for injection at its source router."""
        if packet.src not in self.routers or packet.dst not in self.routers:
            raise RoutingError(
                f"packet {packet.packet_id} endpoints outside the grid"
            )
        if any(f.vc >= self.n_vcs for f in packet.flits):
            raise RoutingError(
                f"packet {packet.packet_id} uses a VC beyond the "
                f"{self.n_vcs} provisioned"
            )
        self._inject_time[packet.packet_id] = self.cycle_count
        self._packet_meta[packet.packet_id] = packet
        self._inject_backlog[packet.src].extend(packet.flits)

    # -- simulation -------------------------------------------------------

    def step(self) -> int:
        """Advance one cycle; returns the number of flit movements made."""
        # inject backlog into LOCAL queues as space allows (per-VC queues)
        for coord, backlog in self._inject_backlog.items():
            router = self.routers[coord]
            while backlog and router.can_accept(Port.LOCAL, backlog[0].vc):
                router.receive(Port.LOCAL, backlog.popleft())

        # gather ALL proposals before committing any, so a flit advances at
        # most one hop per cycle regardless of router iteration order
        proposals = [
            (coord, router, move)
            for coord, router in self.routers.items()
            for move in router.arbitrate()
        ]
        tracer = telemetry.tracer()
        tracing = tracer.enabled
        movements = 0
        for coord, router, move in proposals:
            if move.out_port is Port.LOCAL:
                flit = router.commit_move(move)
                if tracing:
                    tracer.complete(
                        "noc.hop", kind="flit", packet=flit.packet_id,
                        at=str(coord), port="LOCAL", eject=True,
                    )
                self._deliver(flit)
                movements += 1
            else:
                nbr = neighbor_via(coord, move.out_port)
                in_port = OPPOSITE[move.out_port]
                nbr_router = self.routers.get(nbr)
                if nbr_router is None:
                    raise SimulationError(
                        f"route runs off the grid at {coord} -> {nbr}"
                    )
                if self.faults is not None and self.faults.link_fault(coord, nbr):
                    # the link dropped the flit this cycle: stall in
                    # place and retry next cycle (counts as a stall)
                    telemetry.counter("noc.link_fault_stalls").inc()
                    continue
                if nbr_router.can_accept(in_port, move.vc):
                    flit = router.commit_move(move)
                    nbr_router.receive(in_port, flit)
                    if tracing:
                        tracer.complete(
                            "noc.hop", kind="flit", packet=flit.packet_id,
                            src=str(coord), dst=str(nbr),
                            port=move.out_port.name,
                        )
                    movements += 1
                # else: stall this worm for a cycle
        if tracing:
            stalled_now = len(proposals) - movements
            if stalled_now:
                tracer.instant(
                    "noc.stall", cycle=tracer.cycle, flits=stalled_now
                )
            tracer.advance()  # one network step = one trace cycle
        self.cycle_count += 1
        telemetry.counter("noc.cycles").inc()
        if movements:
            telemetry.counter("noc.flit_moves").inc(movements)
        stalled = len(proposals) - movements
        if stalled:
            telemetry.counter("noc.stalls").inc(stalled)
        if self.sampler is not None:
            self.sampler.tick()
        return movements

    def run_until_drained(self, max_cycles: int = 100_000) -> int:
        """Step until every queue and backlog is empty.

        Returns the cycle count at drain.

        Raises
        ------
        SimulationError
            If no progress happens while work remains, or the cycle
            budget is exhausted.
        """
        idle_streak = 0
        while not self.is_drained():
            moved = self.step()
            idle_streak = idle_streak + 1 if moved == 0 else 0
            if idle_streak > 4:
                raise SimulationError(
                    f"network made no progress for {idle_streak} cycles "
                    f"with {self.in_flight()} flits in flight"
                )
            if self.cycle_count > max_cycles:
                raise SimulationError(f"exceeded cycle budget {max_cycles}")
        return self.cycle_count

    # -- express delivery (mega-scale fast path) -----------------------------

    def express_eligible(self, packet: Optional[Packet] = None) -> bool:
        """Whether a solo worm can be delivered by closed form instead of
        cycle stepping.

        The closed-form schedule (:mod:`repro.megascale.noc_kernel`) is
        exact only when nothing can perturb the cycle-by-cycle transport:
        the network must be fully drained (no contention), no tracer span
        per hop, and no fault injector that could stall a link (a
        pristine injector — rate-0 plan, nothing quarantined — is fine:
        its hooks are no-ops).  An attached sampler does *not* disqualify
        the fast path: :meth:`deliver_express` ticks it once per
        scheduled step against the schedule's closed-form queue depths,
        byte-identical to stepping.

        When ``packet`` is given, additionally checks that *its* schedule
        is exact — single-slot queues make multi-flit, multi-hop timing
        depend on router commit order, which only the stepped simulator
        reproduces.
        """
        if (
            not self.is_drained()
            or telemetry.tracer().enabled
            or (self.faults is not None and not self.faults.pristine())
        ):
            return False
        if packet is None:
            return True
        if packet.src not in self.routers or packet.dst not in self.routers:
            return False  # let inject() raise the real error
        from repro.megascale.noc_kernel import worm_schedule

        return worm_schedule(
            packet.src,
            packet.dst,
            len(packet),
            self.routers[packet.src].queue_capacity,
        ).exact

    def deliver_express(self, packet: Packet, max_cycles: int = 100_000):
        """Deliver ``packet`` as if by :meth:`inject` +
        :meth:`run_until_drained`, without stepping routers.

        Callers must have checked :meth:`express_eligible`.  Every
        observable matches the stepped run bit-for-bit: the per-flit
        ``on_deliver`` hook order, each flit's corruption check, the
        :class:`DeliveryRecord` (``delivered_at`` included), the final
        ``cycle_count``, and the ``noc.cycles`` / ``noc.flit_moves`` /
        ``noc.stalls`` / delivery counters.  Returns the delivery record.

        Raises
        ------
        SimulationError
            When the schedule would cross ``max_cycles`` — the stepped
            run would have exhausted its cycle budget too.
        """
        from repro.megascale.noc_kernel import worm_schedule

        if packet.src not in self.routers or packet.dst not in self.routers:
            raise RoutingError(
                f"packet {packet.packet_id} endpoints outside the grid"
            )
        if any(f.vc >= self.n_vcs for f in packet.flits):
            raise RoutingError(
                f"packet {packet.packet_id} uses a VC beyond the "
                f"{self.n_vcs} provisioned"
            )
        schedule = worm_schedule(
            packet.src,
            packet.dst,
            len(packet),
            self.routers[packet.src].queue_capacity,
        )
        if not schedule.exact:
            raise SimulationError(
                f"packet {packet.packet_id} has no exact express schedule "
                "(single-slot queues, multi-flit, multi-hop) — "
                "deliver it by stepping"
            )
        start = self.cycle_count
        if start + schedule.drain_at > max_cycles:
            raise SimulationError(f"exceeded cycle budget {max_cycles}")
        self._inject_time[packet.packet_id] = start
        self._packet_meta[packet.packet_id] = packet
        if self.sampler is None:
            for flit, offset in zip(packet.flits, schedule.eject_offsets()):
                # _deliver stamps the record from cycle_count, and hooks
                # may read it: hold the clock at each flit's ejection cycle
                self.cycle_count = start + offset
                self._deliver(flit)
        else:
            self._deliver_express_sampled(packet, schedule, start)
        self.cycle_count = start + schedule.drain_at
        telemetry.counter("noc.cycles").inc(schedule.drain_at)
        telemetry.counter("noc.flit_moves").inc(schedule.flit_moves)
        if schedule.stalls:
            telemetry.counter("noc.stalls").inc(schedule.stalls)
        return self.delivered[-1]

    def _deliver_express_sampled(self, packet: Packet, schedule, start: int) -> None:
        """Walk the closed-form schedule step by step, ticking the
        attached sampler exactly as :meth:`run_until_drained` would.

        Each scheduled local step ``t`` first delivers the flits whose
        eject offset falls in it (``offset == t - 1`` — the stepped run
        stamps deliveries from the pre-increment clock), then advances
        the clock and ticks the sampler once while :meth:`buffer_depths`
        reports the schedule's closed-form queue depths mapped onto the
        worm's XY route — so the buffer-depth heatmap matches the
        stepped run's sample for sample.
        """
        route = xy_path(packet.src, packet.dst)
        zeros = {
            f"r{r}c{c}": 0 for (r, c) in sorted(self.routers)
        }
        ejects = list(zip(packet.flits, schedule.eject_offsets()))
        next_eject = 0
        try:
            for t in range(1, schedule.drain_at + 1):
                while next_eject < len(ejects) and ejects[next_eject][1] == t - 1:
                    flit, offset = ejects[next_eject]
                    self.cycle_count = start + offset
                    self._deliver(flit)
                    next_eject += 1
                self.cycle_count = start + t
                depths = dict(zeros)
                for pos, depth in schedule.queue_depths(t).items():
                    r, c = route[pos]
                    depths[f"r{r}c{c}"] = depth
                self._express_depths = depths
                self.sampler.tick()
        finally:
            self._express_depths = None

    # -- delivery bookkeeping ----------------------------------------------

    def _deliver(self, flit: Flit) -> None:
        corrupted = (
            self.faults is not None
            and flit.payload is not None
            and self.faults.flit_fault(flit.payload)
        )
        if corrupted:
            # the flit arrives but its payload (e.g. a switch-programming
            # instruction) is lost — §3.3's verify step catches the
            # partially-configured region and the worm is re-sent
            telemetry.counter("noc.corrupted_flits").inc()
        elif self.on_deliver is not None:
            self.on_deliver(flit)
        pid = flit.packet_id
        self._arrived_flits[pid] = self._arrived_flits.get(pid, 0) + 1
        packet = self._packet_meta[pid]
        if self._arrived_flits[pid] == len(packet):
            record = DeliveryRecord(
                packet_id=pid,
                src=packet.src,
                dst=packet.dst,
                injected_at=self._inject_time[pid],
                delivered_at=self.cycle_count,
                n_flits=len(packet),
            )
            self.delivered.append(record)
            telemetry.counter("noc.packets.delivered").inc()
            telemetry.event(
                "noc.delivered", packet_id=pid, latency=record.latency,
                hops=record.hops, n_flits=record.n_flits,
            )
            telemetry.instant(
                "noc.packet.delivered", packet=pid,
                latency=record.latency, hops=record.hops,
            )

    # -- recovery ----------------------------------------------------------

    def purge(self) -> int:
        """Drop every in-flight flit (queues, locks, inject backlog).

        This is the transport half of a worm retreat: after an aborted
        scaling operation rolled the fabric back, the dead worm's flits
        must not keep clogging the routers — a later, healthy operation
        would otherwise fail :meth:`run_until_drained` forever.  Returns
        the number of flits dropped.
        """
        dropped = 0
        for router in self.routers.values():
            dropped += router.clear()
        for backlog in self._inject_backlog.values():
            dropped += len(backlog)
            backlog.clear()
        if dropped:
            telemetry.counter("noc.purged_flits").inc(dropped)
            telemetry.event("noc.purge", flits=dropped)
        return dropped

    # -- state queries -----------------------------------------------------

    def is_drained(self) -> bool:
        return (
            all(not b for b in self._inject_backlog.values())
            and all(r.is_idle for r in self.routers.values())
        )

    def in_flight(self) -> int:
        """Flits currently queued in routers or awaiting injection."""
        return sum(r.occupancy() for r in self.routers.values()) + sum(
            len(b) for b in self._inject_backlog.values()
        )

    def buffer_depths(self) -> Dict[str, int]:
        """Queued-flit count per router, keyed ``"r<row>c<col>"`` in
        row-major order — the Figure 7(e) input queues as one samplable
        observation (where a worm's backpressure piles up).

        During express delivery the live queues never hold the worm's
        flits; the synthetic depths derived from the closed-form schedule
        are reported instead (same keys, same row-major order)."""
        if self._express_depths is not None:
            return self._express_depths
        return {
            f"r{r}c{c}": router.queued_flits()
            for (r, c), router in sorted(self.routers.items())
        }

    def mean_latency(self) -> float:
        if not self.delivered:
            return 0.0
        return sum(d.latency for d in self.delivered) / len(self.delivered)

    def record_for(self, packet_id: int) -> Optional[DeliveryRecord]:
        """The most recent delivery record for ``packet_id``.

        Most recent, not first: packet ids are scoped to whoever created
        the packet (e.g. a :class:`WormholeConfigurator`'s own counter),
        so one network may legitimately see the same id twice over its
        lifetime; callers always want the delivery they just drained.
        """
        for rec in reversed(self.delivered):
            if rec.packet_id == packet_id:
                return rec
        return None
