"""Synthetic traffic generators for network benches.

Standard NoC evaluation patterns: uniform random, nearest-neighbour
(high locality — the regime the S-topology's folded linear array is
built for), and hotspot (everyone talks to one memory-ish tile).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

__all__ = ["uniform_random_pairs", "neighbor_pairs", "hotspot_pairs"]

Coord = Tuple[int, int]


def _check_grid(rows: int, cols: int, n_pairs: int) -> None:
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    if rows * cols < 2:
        raise ValueError("need at least two tiles for traffic")
    if n_pairs < 1:
        raise ValueError("need at least one pair")


def uniform_random_pairs(
    rows: int, cols: int, n_pairs: int, seed: Optional[int] = None
) -> List[Tuple[Coord, Coord]]:
    """``n_pairs`` (src, dst) pairs drawn uniformly, src != dst."""
    _check_grid(rows, cols, n_pairs)
    rng = np.random.default_rng(seed)
    pairs: List[Tuple[Coord, Coord]] = []
    while len(pairs) < n_pairs:
        s = (int(rng.integers(rows)), int(rng.integers(cols)))
        d = (int(rng.integers(rows)), int(rng.integers(cols)))
        if s != d:
            pairs.append((s, d))
    return pairs


def neighbor_pairs(
    rows: int, cols: int, n_pairs: int, seed: Optional[int] = None
) -> List[Tuple[Coord, Coord]]:
    """Pairs one grid hop apart — the locality-friendly pattern."""
    _check_grid(rows, cols, n_pairs)
    rng = np.random.default_rng(seed)
    deltas = [(-1, 0), (1, 0), (0, -1), (0, 1)]
    pairs: List[Tuple[Coord, Coord]] = []
    while len(pairs) < n_pairs:
        s = (int(rng.integers(rows)), int(rng.integers(cols)))
        dr, dc = deltas[int(rng.integers(4))]
        d = (s[0] + dr, s[1] + dc)
        if 0 <= d[0] < rows and 0 <= d[1] < cols:
            pairs.append((s, d))
    return pairs


def hotspot_pairs(
    rows: int,
    cols: int,
    n_pairs: int,
    hotspot: Optional[Coord] = None,
    seed: Optional[int] = None,
) -> List[Tuple[Coord, Coord]]:
    """Every pair targets the hotspot tile (default: grid centre)."""
    _check_grid(rows, cols, n_pairs)
    if hotspot is None:
        hotspot = (rows // 2, cols // 2)
    if not (0 <= hotspot[0] < rows and 0 <= hotspot[1] < cols):
        raise ValueError(f"hotspot {hotspot} outside the grid")
    rng = np.random.default_rng(seed)
    pairs: List[Tuple[Coord, Coord]] = []
    while len(pairs) < n_pairs:
        s = (int(rng.integers(rows)), int(rng.integers(cols)))
        if s != hotspot:
            pairs.append((s, hotspot))
    return pairs
