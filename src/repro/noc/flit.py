"""Flits and packets for wormhole routing (paper sections 3.3-3.4).

Wormhole routing splits a packet into flow-control digits (flits): a
HEAD flit that claims the path, BODY flits that follow it, and a TAIL
flit that releases it.  A single-flit packet is a HEAD_TAIL.  The
configuration worms of section 3.3 carry switch-programming payloads.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

__all__ = ["FlitType", "Flit", "Packet", "make_packet"]

Coord = Tuple[int, int]

#: Fallback id stream for callers that pass no ``packet_id``.  It only
#: guarantees in-process uniqueness; code whose output must be
#: deterministic across runs and worker processes (the wormhole
#: configurator, traffic generators) owns its own counter and passes
#: ``packet_id`` explicitly, because this module-global stream depends
#: on import-time history.
_fallback_packet_ids = itertools.count()


class FlitType(enum.Enum):
    HEAD = "head"
    BODY = "body"
    TAIL = "tail"
    HEAD_TAIL = "head_tail"  # single-flit packet


@dataclass(frozen=True)
class Flit:
    """One flow-control digit of a packet."""

    packet_id: int
    ftype: FlitType
    src: Coord
    dst: Coord
    seq: int
    payload: Any = None
    #: Virtual channel the flit travels on (Dally [18]); whole packets
    #: stay on one VC.
    vc: int = 0

    @property
    def is_head(self) -> bool:
        return self.ftype in (FlitType.HEAD, FlitType.HEAD_TAIL)

    @property
    def is_tail(self) -> bool:
        return self.ftype in (FlitType.TAIL, FlitType.HEAD_TAIL)


@dataclass(frozen=True)
class Packet:
    """A whole packet, pre-split into flits."""

    packet_id: int
    src: Coord
    dst: Coord
    flits: Tuple[Flit, ...] = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.flits)

    @property
    def payloads(self) -> List[Any]:
        return [f.payload for f in self.flits]


def make_packet(
    src: Coord,
    dst: Coord,
    payloads: Optional[List[Any]] = None,
    n_flits: Optional[int] = None,
    vc: int = 0,
    packet_id: Optional[int] = None,
) -> Packet:
    """Build a packet of ``n_flits`` (or one per payload, min 1).

    The flit sequence is HEAD, BODY..., TAIL — or a single HEAD_TAIL.
    All flits travel on virtual channel ``vc``.  ``packet_id`` lets the
    caller supply a deterministic id (scoped to its own counter); when
    omitted, an id is drawn from a process-wide fallback stream that is
    unique but *not* reproducible across runs.
    """
    if payloads is None:
        payloads = [None] * (n_flits if n_flits is not None else 1)
    elif n_flits is not None and n_flits != len(payloads):
        raise ValueError("n_flits disagrees with payload count")
    if not payloads:
        raise ValueError("a packet needs at least one flit")
    if vc < 0:
        raise ValueError("virtual channel cannot be negative")
    pid = next(_fallback_packet_ids) if packet_id is None else packet_id
    n = len(payloads)
    flits: List[Flit] = []
    for i, payload in enumerate(payloads):
        if n == 1:
            ftype = FlitType.HEAD_TAIL
        elif i == 0:
            ftype = FlitType.HEAD
        elif i == n - 1:
            ftype = FlitType.TAIL
        else:
            ftype = FlitType.BODY
        flits.append(Flit(pid, ftype, src, dst, seq=i, payload=payload, vc=vc))
    return Packet(pid, src, dst, tuple(flits))
