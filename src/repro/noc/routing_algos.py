"""Ports and dimension-ordered routing (paper Figure 7(c),(e)).

The router of Figure 7(e) has five ports — North, East, South, West and
Local — and the configuration examples route in X-then-Y order, the
classic deadlock-free dimension-ordered algorithm for meshes.
"""

from __future__ import annotations

import enum
from typing import List, Tuple

from repro.errors import RoutingError

__all__ = ["Port", "xy_next_port", "xy_path", "OPPOSITE"]

Coord = Tuple[int, int]


class Port(enum.Enum):
    NORTH = "N"
    EAST = "E"
    SOUTH = "S"
    WEST = "W"
    LOCAL = "L"


#: The port a flit arrives on when sent out of the given port.
OPPOSITE = {
    Port.NORTH: Port.SOUTH,
    Port.SOUTH: Port.NORTH,
    Port.EAST: Port.WEST,
    Port.WEST: Port.EAST,
    Port.LOCAL: Port.LOCAL,
}


def xy_next_port(current: Coord, dst: Coord) -> Port:
    """Output port for the next XY-routing hop from ``current`` to ``dst``.

    Column (X / East-West) is corrected first, then row (Y / North-South);
    ``LOCAL`` when already at the destination.  Rows grow southward.
    """
    r, c = current
    dr, dc = dst[0] - r, dst[1] - c
    if dc > 0:
        return Port.EAST
    if dc < 0:
        return Port.WEST
    if dr > 0:
        return Port.SOUTH
    if dr < 0:
        return Port.NORTH
    return Port.LOCAL


def neighbor_via(coord: Coord, port: Port) -> Coord:
    """The coordinate one hop out of ``port`` from ``coord``."""
    r, c = coord
    if port is Port.NORTH:
        return (r - 1, c)
    if port is Port.SOUTH:
        return (r + 1, c)
    if port is Port.EAST:
        return (r, c + 1)
    if port is Port.WEST:
        return (r, c - 1)
    raise RoutingError("LOCAL port has no neighbour")


def xy_path(src: Coord, dst: Coord) -> List[Coord]:
    """Full XY route including both endpoints."""
    path = [src]
    cur = src
    while cur != dst:
        cur = neighbor_via(cur, xy_next_port(cur, dst))
        path.append(cur)
    return path
