"""Benchmark: the service observability plane must be free when off.

Same contract (and same harness shape) as the tracing / observation /
profiling overhead guards: drives the seeded multi-tenant service load
with the whole plane disabled (the default) and with it fully enabled
(observation + tracing + SLO evaluation over the records), several
interleaved repetitions each, and records both medians in
``benchmarks/results/slo_overhead.txt``.

With the plane disabled every per-request hook in
:class:`repro.service.server.FabricService` reduces to one attribute
read (``tracer.enabled`` / ``observer().enabled``) — no span
allocation, no sampler ticks, no heatmap cells — so the disabled load
must stay within noise of the enabled one.  We assert (a) a disabled
load records no spans and no service instruments at all and (b) its
median wall time does not exceed the enabled load by more than the
noise margin.
"""

import json
import statistics
import time

from repro import telemetry
from repro.service import LoadConfig, execute_load
from repro.telemetry.slo import evaluate_slos, parse_spec

TENANTS = 4
REQUESTS = 48
REPS = 5

_SLO_SPEC = {
    "objective": [
        {
            "name": "latency-p99",
            "kind": "latency_p99",
            "threshold": 400000,
            "window_cycles": 65536,
            "budget": 0.25,
        },
        {
            "name": "rejection-rate",
            "kind": "rejection_rate",
            "threshold": 0.5,
            "window_cycles": 65536,
            "budget": 0.25,
        },
        {
            "name": "utilization-floor",
            "kind": "utilization_floor",
            "threshold": 0.001,
            "window_cycles": 65536,
            "budget": 0.5,
        },
    ]
}

_CONFIG = LoadConfig(tenants=TENANTS, requests=REQUESTS, seed=42)


def _service_observation_size() -> int:
    snap = telemetry.snapshot()
    return (
        sum(
            len(state.get("samples", ()))
            for name, state in snap.get("series", {}).items()
            if name.startswith("service.")
        )
        + sum(
            len(state.get("cells", ()))
            for name, state in snap.get("heatmaps", {}).items()
            if name.startswith("service.")
        )
        + sum(
            # updates, not presence: reset() zeroes instruments but
            # keeps them registered across the interleaved arms
            int(state.get("updates", 0))
            for name, state in snap.get("gauges", {}).items()
            if name.startswith("service.")
        )
    )


def _run_load_once(enabled: bool) -> float:
    telemetry.reset()
    telemetry.enable_observation(enabled)
    telemetry.enable_tracing(enabled)
    objectives = parse_spec(_SLO_SPEC)
    t0 = time.perf_counter()
    records = execute_load(_CONFIG, transport="inproc")
    if enabled:
        evaluate_slos(
            objectives, records, _CONFIG.rows * _CONFIG.cols
        )
    elapsed = time.perf_counter() - t0
    if enabled:
        assert len(telemetry.tracer()) > 0
        assert _service_observation_size() > 0
    else:
        assert len(telemetry.tracer()) == 0, (
            "disabled tracer recorded service spans — the "
            "zero-overhead guard is broken"
        )
        assert _service_observation_size() == 0, (
            "disabled observer recorded service instruments — the "
            "zero-overhead guard is broken"
        )
    return elapsed


def test_disabled_observability_adds_no_measurable_overhead(emit):
    disabled, enabled = [], []
    _run_load_once(False)  # warm-up: imports, allocator, event loop
    for _ in range(REPS):  # interleave so drift hits both arms equally
        disabled.append(_run_load_once(False))
        enabled.append(_run_load_once(True))
    telemetry.enable_observation(False)
    telemetry.enable_tracing(False)
    telemetry.reset()

    med_off = statistics.median(disabled)
    med_on = statistics.median(enabled)
    overhead = (med_on - med_off) / med_off if med_off else 0.0

    payload = {
        "tenants": TENANTS,
        "requests": REQUESTS,
        "reps": REPS,
        "disabled_median_s": round(med_off, 4),
        "enabled_median_s": round(med_on, 4),
        "enabled_overhead_pct": round(100 * overhead, 1),
    }
    lines = [
        "Service load: observability plane disabled vs enabled",
        f"  disabled (default)          : {med_off:.4f} s median of {REPS}",
        f"  enabled (observe+trace+slo) : {med_on:.4f} s median of {REPS}",
        f"  enabled overhead            : {100 * overhead:+.1f}%",
        "",
        "json: " + json.dumps(payload, sort_keys=True),
    ]
    emit("slo_overhead", "\n".join(lines))

    # The disabled path must not cost more than the enabled one plus
    # noise: if disabled were secretly sampling or emitting spans, it
    # would pace the enabled arm instead of undercutting it.  10 ms
    # absolute slack absorbs scheduler jitter on short loads.
    assert med_off <= med_on * 1.25 + 0.010, (
        f"disabled load ({med_off:.4f}s) is not measurably cheaper than "
        f"the enabled one ({med_on:.4f}s) — the enabled-guard on a "
        "service observability hook may have been dropped"
    )
