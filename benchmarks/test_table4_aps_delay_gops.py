"""Bench: regenerate Table 4 — Number of APs, Wire Delay, and Peak GOPS.

Paper rows (year / process / #APs / delay / GOPS):

    2010  45nm  12  1.08ns  178
    2011  40nm  16  1.21ns  211
    2012  36nm  21  1.21ns  276
    2013  32nm  24  1.43ns  269
    2014  28nm  34  1.58ns  345
    2015  25nm  41  1.56ns  432

Reproduction bands (see EXPERIMENTS.md): AP counts within ±2 (exact at
45/40/25 nm), delays exact (calibrated), GOPS within 10 %.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.costmodel.chip_budget import PAPER_TABLE4_APS
from repro.costmodel.performance import PAPER_TABLE4_GOPS, table4
from repro.costmodel.wire_delay import PAPER_TABLE4_DELAY_NS


def test_table4_rows(benchmark, emit):
    rows = benchmark(table4)
    assert len(rows) == 6

    table_rows = []
    for point in rows:
        paper_aps = PAPER_TABLE4_APS[point.feature_nm]
        paper_delay = PAPER_TABLE4_DELAY_NS[point.feature_nm]
        paper_gops = PAPER_TABLE4_GOPS[point.feature_nm]
        assert abs(point.available_aps - paper_aps) <= 2
        assert point.wire_delay_ns == pytest.approx(paper_delay, rel=1e-6)
        assert point.peak_gops == pytest.approx(paper_gops, rel=0.10)
        table_rows.append(
            (
                point.year,
                f"{point.feature_nm:.0f}",
                point.available_aps,
                paper_aps,
                f"{point.wire_delay_ns:.2f}",
                f"{point.peak_gops:.0f}",
                paper_gops,
            )
        )

    # the monotone shape the paper's conclusion rides on
    gops = [p.peak_gops for p in rows]
    assert gops[-1] > 2 * gops[0]

    report = format_table(
        [
            "Year", "Process[nm]", "#APs", "(paper)",
            "Wire-Delay[ns]", "GOPS", "(paper)",
        ],
        table_rows,
        title="Table 4: Number of APs, Wire Delay, and Peak GOPS "
        "(1 cm^2 die, AP = 16 PO + 16 MB)",
    )
    emit("table4_aps_delay_gops", report)


def test_headline_2012_gops(benchmark):
    """Conclusion: 'a pure 64bit 276 GOPS can be achieved in a typical
    1 cm^2 area ... on current [2012] process technology'."""
    rows = benchmark(table4)
    row_2012 = next(r for r in rows if r.year == 2012)
    assert row_2012.peak_gops == pytest.approx(276, rel=0.10)
