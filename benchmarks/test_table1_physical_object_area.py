"""Bench: regenerate Table 1 — Physical Object Area Requirement.

Paper rows (0.25 µm reference estimates, λ²):

    64b fMul, fAdd          1.35e8
    64b fDiv                0.21e8
    64b iMul + iALU/Shift   2.90e8
    64b iDiv                0.81e8
    64b Register x6         5.36e6
    Total                   5.32e8
"""

import pytest

from repro.analysis.reporting import format_table
from repro.costmodel.areas import PAPER_TABLE1_TOTAL, physical_object_budget


def test_table1_rows(benchmark, emit):
    budget = benchmark(physical_object_budget)
    assert budget.total_lambda2 == pytest.approx(PAPER_TABLE1_TOTAL, rel=0.01)

    rows = [
        (name, f"{proc:.2f}", f"{area:.3e}")
        for name, proc, area in budget.rows()
    ]
    rows.append(("Total", "", f"{budget.total_lambda2:.3e}"))
    report = format_table(
        ["Module", "Process [um]", "Area [lambda^2]"],
        rows,
        title="Table 1: Physical Object Area Requirement "
        f"(paper total {PAPER_TABLE1_TOTAL:.3e})",
    )
    emit("table1_physical_object_area", report)
