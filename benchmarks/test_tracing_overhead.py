"""Benchmark: span tracing must be free when it is off.

Runs the serial Figure 3 sweep with tracing disabled (the default) and
enabled, several interleaved repetitions each, and records both medians
in ``benchmarks/results/tracing_overhead.txt``.

The guard is the acceptance criterion from the tracing PR: with the
tracer disabled every instrumentation site reduces to one attribute
check, so the disabled sweep must stay within noise of the pre-tracing
baseline.  We assert that (a) a disabled sweep records no spans at all
and (b) its median wall time does not exceed the *enabled* sweep by more
than the noise margin — i.e. the disabled path cannot be doing the
recording work.  A generous absolute floor keeps the check meaningful on
slow shared CI runners without flaking.
"""

import json
import statistics
import time

from repro import telemetry
from repro.csd.simulator import sweep_locality

N_TRIALS = 10
REPS = 5
LOCALITIES = [1.0, 0.6, 0.2]
N_OBJECTS = 64


def _run_sweep_once(trace: bool) -> float:
    telemetry.reset()
    telemetry.enable_tracing(trace)
    t0 = time.perf_counter()
    sweep_locality(N_OBJECTS, LOCALITIES, n_trials=N_TRIALS, seed=42)
    elapsed = time.perf_counter() - t0
    if trace:
        assert len(telemetry.tracer()) > 0
    else:
        assert len(telemetry.tracer()) == 0, (
            "disabled tracer recorded spans — the zero-overhead guard "
            "is broken"
        )
    return elapsed


def test_disabled_tracing_adds_no_measurable_overhead(emit):
    disabled, enabled = [], []
    _run_sweep_once(False)  # warm-up: imports, allocator, caches
    for _ in range(REPS):  # interleave so drift hits both arms equally
        disabled.append(_run_sweep_once(False))
        enabled.append(_run_sweep_once(True))
    telemetry.enable_tracing(False)
    telemetry.reset()

    med_off = statistics.median(disabled)
    med_on = statistics.median(enabled)
    overhead = (med_on - med_off) / med_off if med_off else 0.0

    payload = {
        "n_objects": N_OBJECTS,
        "n_trials": N_TRIALS,
        "localities": LOCALITIES,
        "reps": REPS,
        "disabled_median_s": round(med_off, 4),
        "enabled_median_s": round(med_on, 4),
        "enabled_overhead_pct": round(100 * overhead, 1),
    }
    lines = [
        "Serial Figure 3 sweep: tracing disabled vs enabled",
        f"  disabled (default) : {med_off:.4f} s median of {REPS}",
        f"  enabled (--trace)  : {med_on:.4f} s median of {REPS}",
        f"  enabled overhead   : {100 * overhead:+.1f}%",
        "",
        "json: " + json.dumps(payload, sort_keys=True),
    ]
    emit("tracing_overhead", "\n".join(lines))

    # The disabled path must not cost more than the enabled one plus
    # noise: if disabled were secretly recording, it would pace the
    # enabled arm instead of undercutting it.  10 ms absolute slack
    # absorbs scheduler jitter on short sweeps.
    assert med_off <= med_on * 1.25 + 0.010, (
        f"disabled sweep ({med_off:.4f}s) is not measurably cheaper than "
        f"the enabled one ({med_on:.4f}s) — the enabled-guard on a hot "
        "path may have been dropped"
    )
