"""Benchmark: minimal-rewiring planner versus release-then-reconfigure.

Prices the shared defrag scenario suite (the same layouts ``repro
defrag`` and ``BENCH_planner.json`` consume) under all three strategies
and asserts the PR's acceptance contract: the naive plan replays the
legacy loop move-for-move, the minimal plan is strictly cheaper than
naive on every scenario, exact is never worse than greedy, and the
per-scenario savings never drop below the recorded baseline floor.
"""

import json
import pathlib

from repro.analysis.reporting import format_table
from repro.core.defrag import Defragmenter
from repro.planner import (
    MinimalPlanner,
    NaivePlanner,
    build_scenario,
    scenario_names,
)
from repro.telemetry.baseline import load_baseline

REPO_ROOT = pathlib.Path(__file__).parent.parent


def _price_suite():
    naive_planner = NaivePlanner()
    greedy_planner = MinimalPlanner(mode="greedy")
    exact_planner = MinimalPlanner(mode="exact")
    rows = []
    for name in scenario_names():
        chip = build_scenario(name)
        naive = naive_planner.plan_compaction(chip)
        greedy = greedy_planner.plan_compaction(chip)
        exact = exact_planner.plan_compaction(chip)
        legacy = Defragmenter(build_scenario(name)).compact_until_stable()
        rows.append((name, naive, greedy, exact, legacy))
    return rows


def test_planner_cost_suite(emit):
    rows = _price_suite()
    table = []
    payload = {}
    for name, naive, greedy, exact, legacy in rows:
        planned = [
            (m.name, m.old.path[0], m.new.path[0], len(m.new))
            for m in naive.moves
        ]
        executed = [
            (m.name, m.old_start, m.new_start, m.clusters) for m in legacy
        ]
        assert planned == executed, (
            f"{name}: naive plan diverges from the legacy loop"
        )
        assert greedy.cost.total < naive.cost.total, (
            f"{name}: minimal plan not strictly cheaper "
            f"({greedy.cost.total} vs naive {naive.cost.total})"
        )
        assert exact.cost.total <= greedy.cost.total, (
            f"{name}: exact plan worse than greedy "
            f"({exact.cost.total} vs {greedy.cost.total})"
        )
        table.append((
            name,
            len(greedy.moves),
            naive.cost.total,
            greedy.cost.total,
            exact.cost.total,
            greedy.rewires_saved,
        ))
        payload[name] = {
            "naive": naive.cost.total,
            "greedy": greedy.cost.total,
            "exact": exact.cost.total,
            "saved": greedy.rewires_saved,
        }
    report = format_table(
        ["scenario", "moves", "naive", "greedy", "exact", "saved"],
        table,
        title="Planner cost (switch writes + config flits) per scenario",
    )
    emit(
        "planner_cost",
        report + "\njson: " + json.dumps(payload, sort_keys=True),
    )


def test_planner_baseline_floor():
    """The recorded BENCH_planner.json pins every scenario's savings —
    a greedy plan that saves fewer rewires than the baseline regresses
    even before the full guard re-runs the bench."""
    baseline = load_baseline(REPO_ROOT / "BENCH_planner.json")
    greedy_planner = MinimalPlanner(mode="greedy")
    for name in baseline["config"]["scenarios"]:
        floor = baseline["deterministic"][
            f"planner.rewires_saved[scenario={name}]"
        ]
        plan = greedy_planner.plan_compaction(build_scenario(name))
        assert plan.rewires_saved >= floor, (
            f"{name}: saved {plan.rewires_saved} rewires, "
            f"baseline floor is {floor:g}"
        )
