"""Ablation: channel budget of the dynamic CSD network.

DESIGN.md question: what does restricting a dynamic CSD to N/2 channels
(the Figure 3 recommendation) cost vs N channels, and how badly does a
too-small budget (N/4) block chaining?  Also contrasts the unsegmented
static baseline, which burns one channel per communication.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.errors import ChannelAllocationError
from repro.csd.dynamic_csd import DynamicCSDNetwork
from repro.csd.locality import LocalityWorkload
from repro.csd.static_csd import StaticCSDNetwork

N = 64
TRIALS = 5


def _blocked_fraction(n_channels, locality, static=False, seed=11):
    blocked = total = 0
    for t in range(TRIALS):
        workload = LocalityWorkload(N, locality, seed=seed + t)
        net = (
            StaticCSDNetwork(N, n_channels=n_channels)
            if static
            else DynamicCSDNetwork(N, n_channels=n_channels)
        )
        for req in workload.requests():
            total += 1
            try:
                net.connect(req.source, req.sink)
            except ChannelAllocationError:
                blocked += 1
    return blocked / total


def test_channel_budget_sweep(benchmark, emit):
    def sweep():
        rows = []
        for budget_name, n_ch in [("N", N), ("N/2", N // 2), ("N/4", N // 4)]:
            for locality in (1.0, 0.0):
                rows.append(
                    (
                        "dynamic",
                        budget_name,
                        locality,
                        _blocked_fraction(n_ch, locality),
                    )
                )
        rows.append(("static", "N/2", 0.0, _blocked_fraction(N // 2, 0.0, static=True)))
        return rows

    rows = benchmark(sweep)
    by_key = {(r[0], r[1], r[2]): r[3] for r in rows}

    # full provisioning never blocks
    assert by_key[("dynamic", "N", 0.0)] == 0.0
    # N/2 on random datapaths blocks rarely (the Figure 3 recommendation)
    assert by_key[("dynamic", "N/2", 0.0)] < 0.10
    # N/2 on local datapaths is effectively free
    assert by_key[("dynamic", "N/2", 1.0)] < 0.02
    # N/4 visibly hurts random datapaths
    assert by_key[("dynamic", "N/4", 0.0)] > by_key[("dynamic", "N/2", 0.0)]
    # the static baseline at N/2 blocks roughly half of a full datapath
    assert by_key[("static", "N/2", 0.0)] > 0.3

    report = format_table(
        ["network", "channels", "locality", "blocked fraction"],
        [(a, b, c, f"{d:.3f}") for a, b, c, d in rows],
        title=f"Ablation: channel budget vs blocking (N={N}, "
        f"{TRIALS} trials/point)",
    )
    emit("ablation_channel_budget", report)
