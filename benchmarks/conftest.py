"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures and emits
the rows/series both to stdout (visible with ``pytest -s``) and to
``benchmarks/results/<name>.txt`` so paper-vs-measured comparisons are
inspectable after any run.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def emit():
    """Write (and print) one named report."""

    def _emit(name: str, report: str) -> pathlib.Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(report + "\n")
        print(f"\n{report}\n[written to {path}]")
        return path

    return _emit
