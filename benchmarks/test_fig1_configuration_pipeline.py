"""Bench: Figure 1 — the configuration procedure on the pipeline.

Figure 1 shows the request → acknowledge → acquirement → release
sequence between the request registers, the WSRF and a target PE.  The
bench drives both the hit path (objects resident, chained in one
pipeline pass) and the miss path (library load + forced stack shift +
re-request) and reports per-element cycle costs.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.ap.config_stream import ConfigStream
from repro.ap.objects import LogicalObject, Operation
from repro.ap.pipeline import AdaptiveProcessor, Stage
from repro.ap.virtual_hw import ObjectLibrary


def _library():
    objs = [
        LogicalObject(0, Operation.CONST, 1.0),
        LogicalObject(1, Operation.CONST, 2.0),
        LogicalObject(2, Operation.FADD),
        LogicalObject(3, Operation.FMUL),
    ]
    return ObjectLibrary(objs, load_latency=4)


def _stream():
    return ConfigStream.from_pairs([(0, []), (1, []), (2, [0, 1]), (3, [2, 0])])


def _run_cold_and_warm():
    ap = AdaptiveProcessor(capacity=8, library=_library(), trace_stages=True)
    cold = ap.run(_stream())
    warm = ap.run(_stream())
    return ap, cold, warm


def test_fig1_configuration_procedure(benchmark, emit):
    ap, cold, warm = benchmark(_run_cold_and_warm)

    # cold pass: every first reference misses, loads, stack-shifts
    assert cold.misses == 4
    assert cold.stall_cycles > 0
    # warm pass: the datapath is cached -- pure hits, no stalls
    assert warm.misses == 0
    assert warm.stall_cycles == 0
    assert warm.hit_rate == 1.0
    # chaining happened once and persists
    assert cold.connections == 4
    assert set(ap.configured_connections()) == {(0, 2), (1, 2), (2, 3), (0, 3)}

    rows = [
        ("cold (miss path)", cold.elements, cold.misses, cold.stall_cycles,
         cold.total_cycles, f"{cold.hit_rate:.2f}"),
        ("warm (hit path)", warm.elements, warm.misses, warm.stall_cycles,
         warm.total_cycles, f"{warm.hit_rate:.2f}"),
    ]
    report = format_table(
        ["pass", "elements", "misses", "stall cyc", "total cyc", "hit rate"],
        rows,
        title="Figure 1: configuration procedure, hit vs miss path",
    )
    emit("fig1_configuration_pipeline", report)


def test_fig1_stage_sequence(benchmark):
    """The five stages occupy in order for every element."""

    def run():
        ap = AdaptiveProcessor(capacity=8, library=_library(), trace_stages=True)
        ap.run(_stream())
        return ap.events

    events = benchmark(run)
    expected = [
        Stage.POINTER_UPDATE,
        Stage.REQUEST_FETCH,
        Stage.REQUEST_EVALUATION,
        Stage.REQUEST,
    ]
    for idx in range(4):
        per_element = [e.stage for e in events if e.element_index == idx]
        assert per_element[: len(expected)] == expected
        assert per_element[-1] is Stage.ACQUIREMENT
