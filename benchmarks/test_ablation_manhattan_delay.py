"""Ablation: chaining delay in Manhattan distance (abstract, §4).

"We analyzed the cost in terms of the available number of clusters
(adaptive processors with a minimum scale) and delay in
Manhattan-distance of the chip" — this bench places datapaths of
varying code locality onto a fused region and reports the wire-length
distribution of their chains and the implied critical RC delay, using
the same 36 nm wire parameters as Table 4.

The claim quantified: locality in the object code is locality in metal
— local code keeps every chain within one or two clusters, while
scattered code stretches chains across the region and its critical wire
delay grows quadratically (RC).
"""

import pytest

from repro.analysis.placement import analyze_placement
from repro.analysis.reporting import format_table
from repro.costmodel.wire_delay import ITRS2007_GLOBAL_WIRE, wire_length_um
from repro.topology.regions import rectangle_region
from repro.workloads.generators import random_dag

#: One cluster's side at 36 nm: 16 PO + 16 MB is ~32 objects of the
#: Table-1/2 sizes; use the physical-object side × 6 as a round pitch.
CLUSTER_PITCH_UM = 6 * wire_length_um(36.0)


def test_manhattan_delay_vs_locality(benchmark, emit):
    region = rectangle_region((0, 0), 4, 4)
    params = ITRS2007_GLOBAL_WIRE[36.0]

    def sweep():
        rows = []
        for locality in (1.0, 0.5, 0.0):
            stream = random_dag(
                60, locality=locality, seed=47
            ).to_config_stream()
            report = analyze_placement(stream, region, objects_per_cluster=4)
            rows.append(
                (
                    locality,
                    f"{report.mean_distance:.2f}",
                    report.max_distance,
                    f"{report.local_fraction:.2f}",
                    f"{report.critical_delay_ns(params, CLUSTER_PITCH_UM):.2f}",
                )
            )
        return rows

    rows = benchmark(sweep)

    mean_dists = [float(r[1]) for r in rows]
    max_dists = [r[2] for r in rows]
    assert mean_dists[0] < mean_dists[-1]  # local code -> short wires
    assert max_dists[0] <= max_dists[-1]
    # local code keeps chains within a couple of clusters
    assert max_dists[0] <= 2

    report = format_table(
        ["code locality", "mean dist [clusters]", "max dist",
         "intra-cluster frac", "critical delay [ns]"],
        rows,
        title="Ablation: chaining delay in Manhattan distance "
        f"(4x4 region, 36 nm, pitch {CLUSTER_PITCH_UM:.0f} um)",
    )
    emit("ablation_manhattan_delay", report)


def test_bigger_regions_longer_worst_case(benchmark):
    """Scaling a processor up grows its worst-case chaining distance —
    the §2.6.2 'worst case delay' that motivates equalising PE delay."""

    def measure(side):
        region = rectangle_region((0, 0), side, side)
        stream = random_dag(
            4 * side * side, locality=0.0, seed=51
        ).to_config_stream()
        return analyze_placement(
            stream, region, objects_per_cluster=4
        ).max_distance

    dists = benchmark(lambda: {s: measure(s) for s in (2, 4, 6)})
    assert dists[2] < dists[4] < dists[6]
