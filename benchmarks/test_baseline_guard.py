"""Benchmark: the recorded BENCH_*.json baselines must hold.

Re-measures each seeded repo-root baseline (deterministic metrics only —
wall-clock is skipped so a slow shared runner never false-alarms; local
throughput tracking lives in ``python -m repro baseline check`` without
``--skip-wallclock``) and then proves the guard has teeth by feeding it
synthetic regressions: a 20% throughput drop and a 20%+slack p95
recovery-latency inflation must both fail at the default tolerances.
"""

import copy
import json
import pathlib

import pytest

from repro.telemetry.baseline import (
    check_baseline,
    load_baseline,
    measure_bench,
)

REPO_ROOT = pathlib.Path(__file__).parent.parent
BASELINES = ["BENCH_fig3.json", "BENCH_faults.json", "BENCH_megascale.json"]


@pytest.mark.parametrize("name", BASELINES)
def test_seeded_baseline_holds(name, emit):
    baseline = load_baseline(REPO_ROOT / name)
    measured = measure_bench(baseline["bench"], baseline["config"])
    regressions = check_baseline(baseline, measured, skip_wallclock=True)

    payload = {
        "baseline": name,
        "bench": baseline["bench"],
        "metrics": len(baseline["deterministic"]),
        "points_per_s": round(measured["wallclock"]["points_per_s"], 2),
        "regressions": regressions,
    }
    lines = [
        f"Baseline guard: {name} ({baseline['bench']})",
        f"  deterministic metrics : {len(baseline['deterministic'])}",
        f"  measured throughput   : "
        f"{measured['wallclock']['points_per_s']:.2f} points/s "
        "(not guarded on CI)",
        f"  regressions           : {len(regressions)}",
        "",
        "json: " + json.dumps(payload, sort_keys=True),
    ]
    emit(f"baseline_guard_{baseline['bench']}", "\n".join(lines))

    assert regressions == [], "\n".join(regressions)


def test_guard_catches_synthetic_throughput_drop():
    baseline = load_baseline(REPO_ROOT / "BENCH_fig3.json")
    measured = {
        "deterministic": dict(baseline["deterministic"]),
        "wallclock": {
            "elapsed_s": 1.0,
            "points_per_s": baseline["wallclock"]["points_per_s"] * 0.8,
        },
    }
    regressions = check_baseline(baseline, measured)
    assert any("throughput" in r for r in regressions), (
        "a 20% throughput drop must trip the 15% guard"
    )


def test_guard_catches_synthetic_latency_inflation():
    baseline = load_baseline(REPO_ROOT / "BENCH_faults.json")
    measured = {
        "deterministic": dict(baseline["deterministic"]),
        "wallclock": copy.deepcopy(baseline["wallclock"]),
    }
    p95_names = [
        n for n in measured["deterministic"] if "recovery_p95" in n
    ]
    assert p95_names, "faults baseline must carry recovery_p95 metrics"
    for name in p95_names:
        measured["deterministic"][name] = (
            measured["deterministic"][name] * 1.2 + 5.0
        )
    regressions = check_baseline(baseline, measured, skip_wallclock=True)
    assert any("p95 recovery latency" in r for r in regressions), (
        "a 20%+5-cycle p95 inflation must trip the latency guard"
    )
