"""Bench: Figure 7 — four-processor configuration, wormhole routing, and
speculative pipelined execution.

The full Figure 7 flow: the program ``if (x>y) z=x+1 else z=y+2; z=buff``
partitions into four atomic blocks (7(a,b)); four processors are
wormhole-configured (7(c)); execution pipelines through them with data
delivered into inactive processors' memory blocks (7(d)).  Reported:
configuration cost per processor (measured on the cycle-level router
network) and the execution trace for both branch outcomes.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.core.partition import ProgramExecutor
from repro.core.vlsi_processor import VLSIProcessor
from repro.workloads.programs import figure7_program


def _configure_chip():
    chip = VLSIProcessor(8, 8, with_network=True)
    program = figure7_program()
    placement = {}
    # Figure 7(b)'s spatially local in-order placement: one block per
    # 2x2 quadrant-ish region, configured in program order
    for block in program.blocks():
        proc = f"P_{block.name}"
        chip.create_processor(proc, n_clusters=4, strategy="rectangle")
        placement[block.name] = proc
    return chip, program, placement


def test_fig7_configuration_and_execution(benchmark, emit):
    def full_flow():
        chip, program, placement = _configure_chip()
        executor = ProgramExecutor(chip, program, placement)
        then_result = executor.run({100: 5, 101: 3})
        then_trace = [t.block for t in executor.trace]
        else_result = executor.run({100: 2, 101: 9})
        else_trace = [t.block for t in executor.trace]
        return chip, placement, then_result, then_trace, else_result, else_trace

    chip, placement, then_result, then_trace, else_result, else_trace = benchmark(
        full_flow
    )

    # semantics: z = x+1 on the then path, y+2 on the else path
    assert then_result == {1: 6}
    assert else_result == {1: 11}
    # speculative isolation: the untaken branch never executes
    assert then_trace == ["cond", "then", "merge"]
    assert else_trace == ["cond", "else", "merge"]

    rows = [
        (
            name,
            chip.processor(proc).n_clusters,
            chip.processor(proc).config_cycles,
            chip.processor(proc).span(),
        )
        for name, proc in placement.items()
    ]
    report = format_table(
        ["block", "clusters", "config worm cycles", "region span"],
        rows,
        title="Figure 7: four-processor configuration (wormhole-routed) "
        "and pipelined execution",
    )
    emit("fig7_example_execution", report)


def test_fig7_wormhole_reservation_prevents_conflicts(benchmark):
    """Figure 7(c)'s reservation flags: two scaling operations never get
    the same cluster."""
    from repro.errors import AllocationConflictError
    from repro.topology.regions import rectangle_region

    def contend():
        chip = VLSIProcessor(4, 4, with_network=False)
        chip.create_processor("A", region=rectangle_region((0, 0), 2, 2))
        conflicts = 0
        try:
            chip.create_processor("B", region=rectangle_region((1, 1), 2, 2))
        except AllocationConflictError:
            conflicts += 1
        return chip, conflicts

    chip, conflicts = benchmark(contend)
    assert conflicts == 1
    # the failed worm rolled back: B's non-overlapping clusters are free
    assert chip.fabric.cluster((2, 2)).is_free


def test_fig7_pipelined_waves(benchmark):
    """7(d): the same four processors process wave after wave."""

    def waves():
        chip, program, placement = _configure_chip()
        executor = ProgramExecutor(chip, program, placement)
        return [executor.run({100: x, 101: 3})[1] for x in range(6)]

    results = benchmark(waves)
    #  x<=3 -> z=y+2=5 ; x>3 -> z=x+1
    assert results == [5, 5, 5, 5, 5, 6]
