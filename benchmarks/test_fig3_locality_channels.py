"""Bench: Figure 3 — Locality versus Number of Used Channels.

The paper's functional CSD simulation: one-source model, random sink
requests, locality-controlled source offsets, N_object in
{16, 32, 64, 128, 256}.  Claims to reproduce:

* "the figure shows that Nobject channels were not used",
* "Nobject/2 channels are sufficient for the random datapath",
* higher locality uses fewer channels (the left of each curve).
"""

import pytest

from repro.analysis.channel_usage import summarize_series
from repro.analysis.reporting import format_series
from repro.csd.simulator import FIGURE3_NOBJECTS, figure3_series

LOCALITIES = [1.0, 0.8, 0.6, 0.4, 0.2, 0.0]


def test_fig3_series(benchmark, emit):
    series = benchmark(
        figure3_series, localities=LOCALITIES, n_trials=5, seed=42
    )
    assert set(series) == set(FIGURE3_NOBJECTS)

    for n, curve in series.items():
        summary = summarize_series(curve)
        # claim 1: never the full N channels
        assert summary.never_used_full_n, f"N={n} used all channels"
        # claim 2: N/2 sufficient (small fuzz as in the paper's own plot)
        assert summary.half_n_sufficient, (
            f"N={n} needed {summary.max_used} > N/2 channels"
        )
        # claim 3: locality helps — the most local point is far below
        # the fully random one
        assert curve[0].used_channels < curve[-1].used_channels / 2

    printable = {
        f"Nobject={n}": [
            (round(p.locality_knob, 2), p.used_channels) for p in curve
        ]
        for n, curve in series.items()
    }
    report = format_series(
        printable,
        x_label="locality",
        y_label="used_channels",
        title="Figure 3: Locality versus Number of Used Channels "
        "(mean of 5 trials; locality 1.0 = most local)",
    )
    emit("fig3_locality_channels", report)


def test_fig3_curves_stack_by_array_size(benchmark):
    """Bigger arrays sit higher at the random end — the visual stacking
    of the Figure 3 curves."""
    series = benchmark(
        figure3_series, localities=[0.0], n_trials=5, seed=7,
        n_objects_list=(16, 64, 256),
    )
    at_random = [series[n][0].used_channels for n in (16, 64, 256)]
    assert at_random[0] < at_random[1] < at_random[2]
