"""Benchmark: self-profiling must be free when it is off.

Same contract (and same harness shape) as the tracing and observation
overhead guards: runs the engine's Figure 3 sweep with profiling
disabled (the default) and enabled, several interleaved repetitions
each, and records both medians in
``benchmarks/results/profile_overhead.txt``.

With the profiler disabled every guarded stage (route-memo resolution,
cached replay, kernel batches, pool dispatch) reduces to one attribute
read plus returning the shared null stage — no histogram lookup, no
clock read — so the disabled sweep must stay within noise of the
enabled one.  We assert (a) a disabled sweep records no profile data at
all and (b) its median wall time does not exceed the enabled sweep by
more than the noise margin.
"""

import json
import statistics
import time

from repro import telemetry
from repro.engine import run_fig3

N_TRIALS = 10
REPS = 5
LOCALITIES = [1.0, 0.6, 0.2]
N_OBJECTS = 64


def _profile_size() -> int:
    snap = telemetry.snapshot()
    return sum(
        len(values)
        for name, values in snap.get("histograms", {}).items()
        if name.startswith("profile.")
    ) + sum(
        value
        for name, value in snap.get("counters", {}).items()
        if name.startswith("profile.")
    )


def _run_sweep_once(profile: bool) -> float:
    telemetry.reset()
    telemetry.enable_profiling(profile)
    t0 = time.perf_counter()
    run_fig3(
        localities=LOCALITIES,
        n_trials=N_TRIALS,
        seed=42,
        n_objects_list=[N_OBJECTS],
    )
    elapsed = time.perf_counter() - t0
    if profile:
        assert _profile_size() > 0
    else:
        assert _profile_size() == 0, (
            "disabled profiler recorded stage timings — the "
            "zero-overhead guard is broken"
        )
    return elapsed


def test_disabled_profiling_adds_no_measurable_overhead(emit):
    disabled, enabled = [], []
    _run_sweep_once(False)  # warm-up: imports, allocator, caches
    for _ in range(REPS):  # interleave so drift hits both arms equally
        disabled.append(_run_sweep_once(False))
        enabled.append(_run_sweep_once(True))
    telemetry.enable_profiling(False)
    telemetry.reset()

    med_off = statistics.median(disabled)
    med_on = statistics.median(enabled)
    overhead = (med_on - med_off) / med_off if med_off else 0.0

    payload = {
        "n_objects": N_OBJECTS,
        "n_trials": N_TRIALS,
        "localities": LOCALITIES,
        "reps": REPS,
        "disabled_median_s": round(med_off, 4),
        "enabled_median_s": round(med_on, 4),
        "enabled_overhead_pct": round(100 * overhead, 1),
    }
    lines = [
        "Engine Figure 3 sweep: self-profiling disabled vs enabled",
        f"  disabled (default)  : {med_off:.4f} s median of {REPS}",
        f"  enabled (--profile) : {med_on:.4f} s median of {REPS}",
        f"  enabled overhead    : {100 * overhead:+.1f}%",
        "",
        "json: " + json.dumps(payload, sort_keys=True),
    ]
    emit("profile_overhead", "\n".join(lines))

    # The disabled path must not cost more than the enabled one plus
    # noise: if disabled were secretly timing stages, it would pace the
    # enabled arm instead of undercutting it.  10 ms absolute slack
    # absorbs scheduler jitter on short sweeps.
    assert med_off <= med_on * 1.25 + 0.010, (
        f"disabled sweep ({med_off:.4f}s) is not measurably cheaper than "
        f"the enabled one ({med_on:.4f}s) — the enabled-guard on a "
        "profile stage may have been dropped"
    )
