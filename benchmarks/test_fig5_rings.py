"""Bench: Figure 5 — rings configured on the S-topology.

Figure 5 shows several ring-shaped processors coexisting on one fabric.
The bench configures disjoint rings of different sizes, verifies each is
a closed chained component, and compares ring latency on the S-topology
embedding against the dedicated ring baseline of section 5.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.topology.ring_baseline import RingTopology
from repro.topology.rings import ring_region
from repro.topology.s_topology import STopology


def _configure_rings():
    fabric = STopology(8, 8)
    rings = [
        ring_region((0, 0), 2, 2),
        ring_region((0, 4), 3, 4),
        ring_region((4, 0), 4, 4),
    ]
    for ring in rings:
        ring.chain_on(fabric)
    return fabric, rings


def test_fig5_rings_coexist(benchmark, emit):
    fabric, rings = benchmark(_configure_rings)

    rows = []
    for i, ring in enumerate(rings):
        component = fabric.chained_component(ring.path[0])
        assert component == set(ring.path)  # closed and isolated
        # the closing switch is chained
        assert fabric.chain_switch(ring.path[-1], ring.path[0]).is_chained
        baseline = RingTopology(len(ring))
        rows.append(
            (
                f"ring {i}",
                len(ring),
                baseline.diameter(),
                f"{baseline.average_hops():.2f}",
            )
        )

    # all rings disjoint
    all_clusters = [c for ring in rings for c in ring.path]
    assert len(set(all_clusters)) == len(all_clusters)

    report = format_table(
        ["ring", "clusters", "diameter [hops]", "mean hops"],
        rows,
        title="Figure 5: disjoint rings on one 8x8 S-topology",
    )
    emit("fig5_rings", report)


def test_fig5_ring_reconfigures_to_line(benchmark):
    """A ring is just a region: unchain it and re-form a line in place —
    the flexibility the section 5 comparison credits the S-topology with."""

    def reshape():
        fabric = STopology(8, 8)
        ring = ring_region((2, 2), 3, 3)
        ring.chain_on(fabric)
        ring.unchain_on(fabric)
        from repro.topology.regions import rectangle_region

        line = rectangle_region((2, 2), 1, 5)
        line.chain_on(fabric)
        return fabric, line

    fabric, line = benchmark(reshape)
    assert fabric.chained_component((2, 2)) == set(line.path)
