"""Ablation: one-source vs two-source CSD model.

§2.6.2: "Figure 3 shows the evaluation results of a one-source model
(not a two-source model)".  This bench runs the set-aside two-source
model (each sink chains two operands) and quantifies how much more
channel provisioning it needs — and that the locality lever works the
same way.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.csd.simulator import CSDSimulator

SIZES = (32, 64, 128)


def test_two_source_channel_demand(benchmark, emit):
    def sweep():
        rows = []
        for n in SIZES:
            sim = CSDSimulator(n, seed=23)
            for loc in (1.0, 0.0):
                one = sim.run_trial(loc, two_source=False)
                two = sim.run_trial(loc, two_source=True)
                rows.append(
                    (n, loc, one.used_channels, two.used_channels,
                     two.used_channels / max(one.used_channels, 1))
                )
        return rows

    rows = benchmark(sweep)

    for n, loc, one, two, ratio in rows:
        assert two >= one
        if loc == 0.0:
            # random datapaths: demand grows substantially but stays
            # well under the naive 2N bound
            assert 1.2 < ratio < 2.6
            assert two < 1.2 * n
    # the locality lever still works in the two-source model
    by_key = {(n, loc): two for n, loc, _, two, _ in rows}
    for n in SIZES:
        assert by_key[(n, 1.0)] < by_key[(n, 0.0)] / 2

    report = format_table(
        ["N", "locality", "1-src channels", "2-src channels", "ratio"],
        [(n, l, o, t, f"{r:.2f}") for n, l, o, t, r in rows],
        title="Ablation: one-source vs two-source CSD model (§2.6.2)",
    )
    emit("ablation_two_source_model", report)
