"""Ablation: sensitivity of Table 4 to the λ calibration factor.

DESIGN.md back-solves λ ≈ 0.40 × feature size from the paper's AP
counts; the textbook rule is λ = F/2.  This bench quantifies what each
choice does to the AP count and peak GOPS, showing why 0.4 is the only
factor consistent with the published table.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.costmodel.chip_budget import PAPER_TABLE4_APS
from repro.costmodel.performance import table4


def test_lambda_factor_sweep(benchmark, emit):
    def sweep():
        return {
            factor: table4(lambda_factor=factor)
            for factor in (0.35, 0.40, 0.45, 0.50)
        }

    results = benchmark(sweep)

    # 0.40 is the best fit to the published AP counts
    def total_abs_error(rows):
        return sum(
            abs(r.available_aps - PAPER_TABLE4_APS[r.feature_nm]) for r in rows
        )

    errors = {f: total_abs_error(rows) for f, rows in results.items()}
    assert errors[0.40] == min(errors.values())
    # the classic lambda = F/2 undercounts everywhere
    assert all(
        r.available_aps < PAPER_TABLE4_APS[r.feature_nm]
        for r in results[0.50]
    )

    rows = []
    for factor, points in sorted(results.items()):
        for p in points:
            if p.year in (2010, 2012, 2015):
                rows.append(
                    (
                        factor,
                        p.year,
                        p.available_aps,
                        PAPER_TABLE4_APS[p.feature_nm],
                        f"{p.peak_gops:.0f}",
                    )
                )
    report = format_table(
        ["lambda factor", "year", "#APs", "paper #APs", "GOPS"],
        rows,
        title="Ablation: lambda calibration factor vs Table 4 "
        f"(abs AP-count errors: {errors})",
    )
    emit("ablation_lambda_factor", report)
