"""Bench: Figure 2 — the dynamic CSD request/grant/ack circuit.

Figure 2 shows a 4-channel segment between a source and a sink PE: the
source broadcasts a request, the sink's priority encoder grants one
surviving channel, the grant gates the data and returns as the ack.  The
bench drives that exact circuit shape and reports grant decisions under
increasing contention, plus protocol timing.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.errors import ChannelAllocationError
from repro.csd.dynamic_csd import DynamicCSDNetwork


def _contention_ladder():
    """Four overlapping chains on a 4-channel segmented array."""
    net = DynamicCSDNetwork(8, n_channels=4)
    grants = []
    for span in [(0, 7), (1, 6), (2, 5), (3, 4)]:
        conn = net.connect(*span)
        grants.append(conn.channel)
    return net, grants


def test_fig2_priority_grants(benchmark, emit):
    net, grants = benchmark(_contention_ladder)
    # each overlapping chain is granted the next channel, in priority order
    assert grants == [0, 1, 2, 3]
    # a fifth overlapping request finds no surviving channel
    with pytest.raises(ChannelAllocationError):
        net.connect(3, 5)

    rows = [
        (i, f"({s}->{k})", ch)
        for i, ((s, k), ch) in enumerate(zip([(0, 7), (1, 6), (2, 5), (3, 4)], grants))
    ]
    report = format_table(
        ["request", "source->sink", "granted channel"],
        rows,
        title="Figure 2: dynamic CSD grant decisions (4 channels, "
        "overlapping spans)",
    )
    emit("fig2_dynamic_csd_protocol", report)


def test_fig2_release_and_reuse(benchmark):
    """The ack'd grant is stored until the release token re-chains the
    segments; the channel is then immediately reusable."""

    def cycle():
        net = DynamicCSDNetwork(8, n_channels=1)
        for _ in range(100):
            conn = net.connect(0, 7)
            net.disconnect(conn)
        return net

    net = benchmark(cycle)
    assert net.used_channels() == 0


def test_fig2_segmentation_shares_one_channel(benchmark):
    """Disjoint spans coexist on channel 0 — the segmentation property
    the whole CSD idea rests on."""

    def configure():
        net = DynamicCSDNetwork(16, n_channels=4)
        for lo in range(0, 16 - 1, 2):
            net.connect(lo, lo + 1)
        return net

    net = benchmark(configure)
    assert net.used_channels() == 1
