"""Ablation: sequential vs wave-pipelined execution (Figure 7(d)).

"This can be a pipelined execution through multiple processors" — the
bench runs the same wave stream through the Figure 7 program twice:
sequentially (one wave at a time, the conservative reading) and
pipelined (waves overlapped across the four processors), and reports
the speedup and its convergence toward the block-chain depth.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.core.partition import ProgramExecutor
from repro.core.pipelined import PipelinedExecutor
from repro.core.vlsi_processor import VLSIProcessor
from repro.workloads.programs import figure7_program


def _deploy():
    chip = VLSIProcessor(8, 8, with_network=False)
    program = figure7_program()
    placement = {}
    for block in program.blocks():
        chip.create_processor(f"P_{block.name}", n_clusters=1)
        placement[block.name] = f"P_{block.name}"
    return chip, program, placement


def test_pipelined_vs_sequential(benchmark, emit):
    def run():
        rows = []
        for n_waves in (4, 16, 64):
            chip, program, placement = _deploy()
            waves = [{100: x, 101: 3} for x in range(n_waves)]
            sequential = ProgramExecutor(chip, program, placement)
            seq_steps = 0
            seq_results = []
            for wave in waves:
                seq_results.append(sequential.run(wave))
                seq_steps += len(sequential.trace)
            pipe = PipelinedExecutor(chip, program, placement)
            stats = pipe.run(waves)
            assert pipe.results() == seq_results  # identical semantics
            rows.append((n_waves, seq_steps, stats.steps,
                         seq_steps / stats.steps))
        return rows

    rows = benchmark(run)

    speedups = [r[3] for r in rows]
    # overlap always wins, and the win grows with stream length toward
    # the 3-block chain depth (cond -> branch -> merge)
    assert all(s > 1.0 for s in speedups)
    assert speedups[0] < speedups[-1]
    assert speedups[-1] > 1.4

    report = format_table(
        ["waves", "sequential steps", "pipelined steps", "speedup"],
        [(n, s, p, f"{x:.2f}x") for n, s, p, x in rows],
        title="Ablation: sequential vs wave-pipelined Figure 7 execution",
    )
    emit("ablation_pipelined_waves", report)
