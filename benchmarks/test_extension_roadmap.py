"""Extension: the paper's model run past its 2015 horizon.

The introduction's premise — "Thousands of compute and memory resources
will be implementable on-chip in the near future" — is checked by
driving the paper's own Table 4 model through the nodes that actually
shipped after publication (16/10/7/5 nm).  At 5 nm the 1 cm² die holds
on the order of a thousand minimum APs (tens of thousands of objects),
vindicating the premise.  The wire delay stays pinned near 1.3–1.6 ns
(the calibrated RC model: wires shrink with λ but resistance climbs)
while the resource count grows 25×, so clock-limited global
communication buys relatively less and less — the scaling argument for
the paper's locality-first architecture.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.costmodel.performance import table4
from repro.costmodel.technology import extended_roadmap


def test_extended_roadmap(benchmark, emit):
    rows = benchmark(table4, nodes=extended_roadmap())

    assert len(rows) == 10  # 6 paper nodes + 4 extension nodes
    by_year = {r.year: r for r in rows}
    # the premise: thousands-of-resources territory
    assert by_year[2023].available_aps > 500
    assert by_year[2023].available_aps * 32 > 10_000  # objects on chip
    # monotone growth continues
    counts = [r.available_aps for r in rows]
    assert all(a <= b for a, b in zip(counts, counts[1:]))

    table_rows = [
        (
            r.year,
            f"{r.feature_nm:.0f}",
            r.available_aps,
            r.available_aps * 32,
            f"{r.wire_delay_ns:.2f}",
            f"{r.peak_gops:.0f}",
            "paper" if r.year <= 2015 else "extension",
        )
        for r in rows
    ]
    report = format_table(
        ["Year", "nm", "#APs", "objects", "delay[ns]", "GOPS", ""],
        table_rows,
        title="Extension: Table 4's model through the post-2015 roadmap",
    )
    emit("extension_roadmap", report)


def test_locality_decomposition_of_figure3_workloads(benchmark, emit):
    """§2.7's decomposition measured on the Figure 3 workloads: channel
    demand is driven by spatial locality; order contributes a small
    packing spread on top."""
    from repro.analysis.channel_usage import (
        locality_decomposition,
        order_sensitivity,
    )
    from repro.csd.locality import LocalityWorkload

    def sweep():
        rows = []
        for knob in (1.0, 0.5, 0.0):
            reqs = LocalityWorkload(64, knob, seed=61).requests()
            d = locality_decomposition(reqs, 64)
            lo, hi = order_sensitivity(reqs, 64, n_shuffles=10, seed=3)
            rows.append(
                (knob, f"{d['spatial_locality']:.3f}",
                 f"{d['temporal_locality']:.3f}", lo, hi)
            )
        return rows

    rows = benchmark(sweep)
    spatial = [float(r[1]) for r in rows]
    assert spatial[0] > spatial[1] > spatial[2]
    for _, _, _, lo, hi in rows:
        assert lo <= hi <= 64

    report = format_table(
        ["knob", "spatial locality", "temporal locality",
         "channels (best order)", "(worst order)"],
        rows,
        title="Extension: §2.7 channel-demand decomposition (N=64)",
    )
    emit("extension_locality_decomposition", report)
