"""Benchmark: vector-path sampling must be free when observation is off.

``test_observe_overhead`` guards the *live* sampling sites; this bench
guards the fast-path ones the observatory grew: grant logging in the
engine's resolvers and the :class:`VectorSampler` replay.  It runs the
engine's Figure 3 sweep on the vector kernel with observation disabled
(the default) and enabled, several interleaved repetitions each, and
records both medians in ``benchmarks/results/sampling_overhead.txt``.

With the observer disabled the replay path checks one attribute and
skips the sampler entirely — no instrument lookup, no difference-array
walk — so the disabled sweep must stay within noise of the enabled one.
We assert (a) a disabled sweep records no observation data at all and
(b) its median wall time does not exceed the enabled sweep by more than
the noise margin.
"""

import json
import statistics
import time

from repro import telemetry
from repro.engine import run_fig3

N_TRIALS = 10
REPS = 5
LOCALITIES = [1.0, 0.6, 0.2]
N_OBJECTS = 256


def _observation_size() -> int:
    snap = telemetry.snapshot()
    return (
        sum(g["updates"] for g in snap["gauges"].values())
        + sum(len(s["samples"]) for s in snap["series"].values())
        + sum(len(h["cells"]) for h in snap["heatmaps"].values())
    )


def _run_sweep_once(observe: bool) -> float:
    telemetry.reset()
    telemetry.enable_observation(observe)
    t0 = time.perf_counter()
    run_fig3(
        localities=LOCALITIES,
        n_trials=N_TRIALS,
        seed=42,
        n_objects_list=[N_OBJECTS],
        kernel="vector",
    )
    elapsed = time.perf_counter() - t0
    if observe:
        assert _observation_size() > 0
    else:
        assert _observation_size() == 0, (
            "disabled observer recorded samples on the vector path — "
            "the zero-overhead guard is broken"
        )
    return elapsed


def test_disabled_sampling_adds_no_measurable_overhead(emit):
    disabled, enabled = [], []
    _run_sweep_once(False)  # warm-up: imports, allocator, caches
    for _ in range(REPS):  # interleave so drift hits both arms equally
        disabled.append(_run_sweep_once(False))
        enabled.append(_run_sweep_once(True))
    telemetry.enable_observation(False)
    telemetry.reset()

    med_off = statistics.median(disabled)
    med_on = statistics.median(enabled)
    overhead = (med_on - med_off) / med_off if med_off else 0.0

    payload = {
        "n_objects": N_OBJECTS,
        "n_trials": N_TRIALS,
        "localities": LOCALITIES,
        "reps": REPS,
        "kernel": "vector",
        "disabled_median_s": round(med_off, 4),
        "enabled_median_s": round(med_on, 4),
        "enabled_overhead_pct": round(100 * overhead, 1),
    }
    lines = [
        "Engine Figure 3 sweep (vector kernel): sampling disabled vs enabled",
        f"  disabled (default)  : {med_off:.4f} s median of {REPS}",
        f"  enabled (--observe) : {med_on:.4f} s median of {REPS}",
        f"  enabled overhead    : {100 * overhead:+.1f}%",
        "",
        "json: " + json.dumps(payload, sort_keys=True),
    ]
    emit("sampling_overhead", "\n".join(lines))

    # The disabled path must not cost more than the enabled one plus
    # noise: if disabled were secretly replaying samples, it would pace
    # the enabled arm instead of undercutting it.  10 ms absolute slack
    # absorbs scheduler jitter on short sweeps.
    assert med_off <= med_on * 1.25 + 0.010, (
        f"disabled sweep ({med_off:.4f}s) is not measurably cheaper than "
        f"the enabled one ({med_on:.4f}s) — the enabled-guard on the "
        "replay sampling site may have been dropped"
    )
