"""Ablation: S-topology vs the section-5 comparators (ring, mesh).

Quantifies the qualitative §5 claims:

* ring latency "is increased by the number of cores" — linear diameter;
* mesh diameter grows as sqrt(N) with "abundant bisection bandwidth",
  but needs host-managed placement;
* a ring embeds directly into the S-topology (Figure 5), so ring-based
  designs carry over without giving up the grid's scaling.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.topology.mesh import MeshTopology
from repro.topology.metrics import diameter
from repro.topology.ring_baseline import RingTopology
from repro.topology.rings import ring_region
from repro.topology.s_topology import STopology

SIZES = [16, 64, 256]


def test_topology_scaling(benchmark, emit):
    def sweep():
        rows = []
        for n in SIZES:
            side = int(n ** 0.5)
            ring = RingTopology(n)
            mesh = MeshTopology(side, side)
            rows.append(
                (
                    n,
                    ring.diameter(),
                    mesh.diameter(),
                    ring.bisection_width(),
                    mesh.bisection_width(),
                    mesh.host_placement_cost(n // 4),
                )
            )
        return rows

    rows = benchmark(sweep)

    # ring diameter linear; mesh ~ 2*sqrt(N)
    ring_diams = [r[1] for r in rows]
    mesh_diams = [r[2] for r in rows]
    assert ring_diams[2] == 4 * ring_diams[1] == 16 * ring_diams[0]
    assert mesh_diams[2] < ring_diams[2] / 4
    # mesh bisection grows, ring's stays 2
    assert all(r[3] == 2 for r in rows)
    assert rows[2][4] > rows[0][4]

    report = format_table(
        [
            "cores", "ring diam", "mesh diam",
            "ring bisect", "mesh bisect", "mesh host cost",
        ],
        rows,
        title="Ablation: ring vs mesh scaling (section 5 comparators)",
    )
    emit("ablation_topology_baselines", report)


def test_ring_embeds_in_s_topology(benchmark):
    """Section 5: 'the ring topology can be implemented on the
    S-topology' — and placement there is fabric-managed (stack-top),
    not host-managed."""

    def embed():
        fabric = STopology(16, 16)
        ring = ring_region((0, 0), 16, 16)  # 60-cluster perimeter ring
        ring.chain_on(fabric)
        return fabric, ring

    fabric, ring = benchmark(embed)
    assert fabric.chained_component((0, 0)) == set(ring.path)
    # the embedded ring has the same linear hop structure as a native one
    native = RingTopology(len(ring))
    assert native.diameter() == len(ring) // 2
