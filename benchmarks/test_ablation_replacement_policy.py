"""Ablation: what the stack's free LRU buys (§2.4).

"Because a stack shift sorts the objects in the array, a replacement,
based on an LRU algorithm, is easily implemented" — the stack structure
gives the AP exact LRU at zero extra hardware.  This bench quantifies
the benefit over FIFO and random replacement on temporal-locality
traces, and shows the one regime where LRU loses (the looping
pathology), so the design choice is presented with its trade-off.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.ap.cache_model import compare_policies
from repro.workloads.traces import geometric_reuse_trace, looping_trace

CAPACITY = 8


def test_replacement_policy_comparison(benchmark, emit):
    def sweep():
        rows = []
        for label, trace in [
            ("temporal p=0.9", geometric_reuse_trace(3000, 64, 0.9, seed=4)),
            ("temporal p=0.6", geometric_reuse_trace(3000, 64, 0.6, seed=4)),
            ("looping N=C+1", looping_trace(CAPACITY + 1, 100)),
        ]:
            rates = compare_policies(trace, CAPACITY, seed=7)
            rows.append((label, rates["lru"], rates["fifo"], rates["random"]))
        return rows

    rows = benchmark(sweep)
    by_label = {r[0]: r for r in rows}

    # temporal locality: LRU >= FIFO and random, with a real margin at
    # high reuse
    for label in ("temporal p=0.9", "temporal p=0.6"):
        _, lru, fifo, random_ = by_label[label]
        assert lru >= fifo
        assert lru >= random_
    assert by_label["temporal p=0.9"][1] > by_label["temporal p=0.9"][3] + 0.02
    # the honest trade-off: looping one past capacity zeroes LRU
    assert by_label["looping N=C+1"][1] == 0.0
    assert by_label["looping N=C+1"][3] > 0.0

    report = format_table(
        ["trace", "LRU", "FIFO", "random"],
        [(l, f"{a:.3f}", f"{b:.3f}", f"{c:.3f}") for l, a, b, c in rows],
        title=f"Ablation: replacement policy at capacity C={CAPACITY} "
        "(the stack gives LRU for free, §2.4)",
    )
    emit("ablation_replacement_policy", report)
