"""Benchmark: serial vs parallel Figure 3 sweep (the ``workers=`` engine).

Runs the full ``figure3_series(n_trials=10)`` twice — serial, then fanned
out over a 4-worker process pool — asserts the outputs are bit-identical,
and records both wall times plus the merged telemetry counters in
``benchmarks/results/fig3_parallel_sweep.txt``.

The ≥2x speedup assertion only fires on hosts with at least 4 CPUs: on a
single-core runner the pool cannot beat the serial loop, but the
bit-identity contract holds everywhere.
"""

import json
import os
import time

from repro import telemetry
from repro.csd.simulator import figure3_series

WORKERS = 4
N_TRIALS = 10


def test_fig3_parallel_sweep_identical_and_timed(emit):
    cpus = os.cpu_count() or 1

    telemetry.reset()
    t0 = time.perf_counter()
    serial = figure3_series(n_trials=N_TRIALS)
    serial_s = time.perf_counter() - t0
    serial_counters = telemetry.snapshot()["counters"]

    telemetry.reset()
    t0 = time.perf_counter()
    parallel = figure3_series(n_trials=N_TRIALS, workers=WORKERS)
    parallel_s = time.perf_counter() - t0
    parallel_counters = telemetry.snapshot()["counters"]

    assert serial == parallel, "workers= path diverged from the serial sweep"
    # worker telemetry is merged back, so the counters agree too
    assert serial_counters == parallel_counters

    speedup = serial_s / parallel_s if parallel_s else float("inf")
    payload = {
        "cpus": cpus,
        "workers": WORKERS,
        "n_trials": N_TRIALS,
        "serial_seconds": round(serial_s, 3),
        "parallel_seconds": round(parallel_s, 3),
        "speedup": round(speedup, 2),
        "identical": serial == parallel,
        "counters": serial_counters,
    }
    lines = [
        "Figure 3 sweep: serial vs parallel (workers=4, n_trials=10)",
        f"  host CPUs       : {cpus}",
        f"  serial          : {serial_s:.3f} s",
        f"  parallel (x{WORKERS})   : {parallel_s:.3f} s",
        f"  speedup         : {speedup:.2f}x",
        "  bit-identical   : yes",
        "",
        "json: " + json.dumps(payload, sort_keys=True),
    ]
    emit("fig3_parallel_sweep", "\n".join(lines))

    if cpus >= 4:
        assert speedup >= 2.0, (
            f"expected >=2x speedup on a {cpus}-core host, got {speedup:.2f}x"
        )
