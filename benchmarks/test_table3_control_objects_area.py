"""Bench: regenerate Table 3 — Control Objects Area Requirement.

Paper total: 75.2e6 λ² — under 0.5 % of an AP, supporting the claim that
the scaling control plane is "very low" cost.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.costmodel.areas import (
    PAPER_TABLE3_TOTAL,
    ap_area,
    control_objects_budget,
)


def test_table3_rows(benchmark, emit):
    budget = benchmark(control_objects_budget)
    assert budget.total_lambda2 == pytest.approx(PAPER_TABLE3_TOTAL, rel=0.01)
    overhead = budget.total_lambda2 / ap_area()
    assert overhead < 0.005

    rows = [
        (name, f"{proc:.2f}", f"{area:.3e}")
        for name, proc, area in budget.rows()
    ]
    rows.append(("Total", "", f"{budget.total_lambda2:.3e}"))
    rows.append(("(fraction of one AP)", "", f"{overhead:.4%}"))
    report = format_table(
        ["Module", "Process [um]", "Area [lambda^2]"],
        rows,
        title="Table 3: Control Objects Area Requirement "
        f"(paper total {PAPER_TABLE3_TOTAL:.3e})",
    )
    emit("table3_control_objects_area", report)
