"""Bench: Figure 6 — router/switch architecture and the state diagram.

Figure 6 shows (b) the unidirectional stack-shift switch, (c) the
bidirectional chain switch, (d) the 3-D die-stack switch, and (e) the
release/inactive/active/sleep state diagram.  The bench exercises each:
switch programming semantics, a linear array continued across two
stacked dies, and a full lifecycle walk with protection checks.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.core.states import ProcessorState, ProcessorStateMachine
from repro.errors import StateTransitionError
from repro.topology.die_stack import DieStack
from repro.topology.switches import BidirectionalSwitch, UnidirectionalSwitch

A, B = (0, 0), (0, 1)


def test_fig6_switch_semantics(benchmark, emit):
    def program_switches():
        uni = UnidirectionalSwitch((A, B))
        bi = BidirectionalSwitch((A, B))
        uni.chain()
        bi.chain()
        return uni, bi

    uni, bi = benchmark(program_switches)
    rows = [
        ("unidirectional fwd", uni.passes(A, B)),
        ("unidirectional bwd", uni.passes(B, A)),
        ("bidirectional fwd", bi.passes(A, B)),
        ("bidirectional bwd", bi.passes(B, A)),
    ]
    assert [r[1] for r in rows] == [True, False, True, True]
    report = format_table(
        ["path", "passes"],
        rows,
        title="Figure 6(b,c): programmable switch directionality",
    )
    emit("fig6_switches", report)


def test_fig6_die_stack(benchmark):
    """Figure 6(d): a linear array continues onto the stacked die."""

    def build():
        stack = DieStack(4, 4)
        path = [(0, 0, 0), (0, 0, 1), (0, 0, 2), (1, 0, 2), (1, 0, 3)]
        stack.chain_3d_path(path)
        return stack

    stack = benchmark(build)
    assert stack.via(0, (0, 2)).is_chained
    assert stack.dies[1].chain_switch((0, 2), (0, 3)).is_chained


def test_fig6_state_diagram(benchmark, emit):
    """Every edge of Figure 6(e), plus protection semantics per state."""

    def walk():
        sm = ProcessorStateMachine()
        sm.configure()   # release -> inactive
        sm.activate()    # inactive -> active
        sm.sleep()       # active -> sleep (processor-level sync point)
        sm.wake()        # sleep -> active
        sm.deactivate()  # active -> inactive (memory open again)
        sm.activate()
        sm.release()     # active -> release
        return sm

    sm = benchmark(walk)
    assert sm.state is ProcessorState.RELEASE
    assert len(sm.history) == 8

    # protection semantics per state
    probe = ProcessorStateMachine()
    rows = [("release", probe.is_protected, probe.accepts_external_writes)]
    probe.configure()
    rows.append(("inactive", probe.is_protected, probe.accepts_external_writes))
    probe.activate()
    rows.append(("active", probe.is_protected, probe.accepts_external_writes))
    probe.sleep()
    rows.append(("sleep", probe.is_protected, probe.accepts_external_writes))
    assert rows == [
        ("release", False, False),
        ("inactive", False, True),
        ("active", True, False),
        ("sleep", True, False),
    ]
    report = format_table(
        ["state", "protected", "accepts external writes"],
        rows,
        title="Figure 6(e): processor states and protection",
    )
    emit("fig6_states", report)

    # an illegal edge really is rejected
    with pytest.raises(StateTransitionError):
        ProcessorStateMachine().transition(ProcessorState.ACTIVE)
