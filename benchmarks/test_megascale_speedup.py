"""Benchmark: the vector CSD kernel's cold-path speedup at N=256.

This is the megascale kernel's acceptance criterion: resolving the
seeded N_object=256 Figure-3 request sequences through
:class:`repro.megascale.kernel.VectorCSDKernel` must be at least 50x
faster than the live :class:`repro.csd.dynamic_csd.DynamicCSDNetwork`,
and — non-negotiably — produce the identical grant sequence for every
attempt of every trial.  The kernel buys throughput, never different
numbers.

Results land in ``benchmarks/results/megascale_speedup.txt``.
"""

from repro.megascale.bench import measure_kernel_speedup

N_OBJECTS = 256
SEED = 42
MIN_SPEEDUP = 50.0


def test_vector_kernel_is_at_least_50x_faster(emit):
    result = measure_kernel_speedup(n_objects=N_OBJECTS, seed=SEED)

    lines = [
        f"Vector kernel cold-path speedup (Figure 3, N={N_OBJECTS})",
        f"  attempts: {result['attempts']}   "
        f"({len(result['localities'])} localities x "
        f"{result['trials_per_locality']} trials)",
        f"  live:   {result['live_s'] * 1e3:8.1f} ms",
        f"  vector: {result['kernel_s'] * 1e3:8.1f} ms",
        f"  speedup: {result['kernel_speedup']:.1f}x   "
        f"(floor {MIN_SPEEDUP:g}x)",
        f"  identical grants: {result['identical']}",
    ]
    emit("megascale_speedup", "\n".join(lines))

    assert result["identical"], (
        "vector kernel grants diverged from the live network"
    )
    assert result["kernel_speedup"] >= MIN_SPEEDUP, (
        f"vector kernel only {result['kernel_speedup']:.2f}x faster than "
        f"the live network (floor {MIN_SPEEDUP}x)"
    )
