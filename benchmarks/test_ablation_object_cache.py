"""Ablation: the object cache / CACHE model (§2.4-2.5).

"To make a hit always occur, the stack distance has to be less than or
equal to C, where C is the capacity of the cache, namely the array size
for the adaptive processor."

This bench measures warm hit rate versus array capacity for three trace
shapes (temporal-locality, looping, scan) via the one-pass Mattson
analysis, then cross-checks the analytical prediction against the
*executed* pipeline on a real configuration stream — the model and the
machine must agree on what misses.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.analysis.stack_distance import profile_trace
from repro.ap.pipeline import AdaptiveProcessor
from repro.workloads.generators import random_dag
from repro.workloads.traces import geometric_reuse_trace, looping_trace, scan_trace

CAPACITIES = (4, 8, 16, 32, 64)


def test_hit_rate_vs_capacity(benchmark, emit):
    def profile_all():
        return {
            "temporal (p=0.8)": profile_trace(
                geometric_reuse_trace(2000, 64, p_reuse=0.8, seed=17),
                capacities=CAPACITIES,
            ),
            "looping N=16": profile_trace(
                looping_trace(16, 50), capacities=CAPACITIES
            ),
            "scan": profile_trace(scan_trace(500), capacities=CAPACITIES),
        }

    profiles = benchmark(profile_all)

    loop = profiles["looping N=16"].hit_rates
    assert loop[8] == 0.0  # capacity below the loop: LRU pathology
    assert loop[16] > 0.9  # capacity at the loop: everything warm hits
    assert profiles["scan"].hit_rates[64] == 0.0
    temporal = profiles["temporal (p=0.8)"].hit_rates
    assert all(
        temporal[a] <= temporal[b]
        for a, b in zip(CAPACITIES, CAPACITIES[1:])
    )

    rows = [
        (name, *(f"{p.hit_rates[c]:.2f}" for c in CAPACITIES))
        for name, p in profiles.items()
    ]
    report = format_table(
        ["trace", *(f"C={c}" for c in CAPACITIES)],
        rows,
        title="Ablation: warm hit rate vs array capacity "
        "(Mattson one-pass, §2.4)",
    )
    emit("ablation_object_cache", report)


def test_model_agrees_with_executed_pipeline(benchmark):
    """The Mattson prediction and the running pipeline must count the
    same cold misses on a real configuration stream."""

    def run():
        app = random_dag(40, locality=0.6, seed=29)
        stream = app.to_config_stream()
        ap = AdaptiveProcessor(capacity=64, library=app.to_library())
        stats = ap.run(stream)
        profile = profile_trace(stream.reference_trace(), capacities=(64,))
        return stats, profile

    stats, profile = benchmark(run)
    # capacity 64 > working set: the only pipeline misses are cold ones
    assert stats.misses == profile.cold_misses
    # the pipeline deduplicates repeated IDs within one element (a binary
    # op with equal operands), so compare on its own request count
    assert stats.hits == stats.object_requests - profile.cold_misses
