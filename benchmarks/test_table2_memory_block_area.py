"""Bench: regenerate Table 2 — Memory Block Area Requirement.

Paper total: 9.75e8 λ², roughly twice the physical object, dominated by
the 64 KB SRAM.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.costmodel.areas import (
    PAPER_TABLE2_TOTAL,
    memory_block_budget,
    physical_object_budget,
)


def test_table2_rows(benchmark, emit):
    budget = benchmark(memory_block_budget)
    assert budget.total_lambda2 == pytest.approx(PAPER_TABLE2_TOTAL, rel=0.01)
    # the paper's "approximately twice the area of the physical object"
    ratio = budget.total_lambda2 / physical_object_budget().total_lambda2
    assert 1.7 < ratio < 2.0

    rows = [
        (name, f"{proc:.2f}", f"{area:.3e}")
        for name, proc, area in budget.rows()
    ]
    rows.append(("Total", "", f"{budget.total_lambda2:.3e}"))
    rows.append(("(ratio to physical object)", "", f"{ratio:.2f}x"))
    report = format_table(
        ["Module", "Process [um]", "Area [lambda^2]"],
        rows,
        title="Table 2: Memory Block Area Requirement "
        f"(paper total {PAPER_TABLE2_TOTAL:.3e})",
    )
    emit("table2_memory_block_area", report)
