"""Benchmark: the sweep engine's warm-over-cold speedup at N=256.

This is the engine's acceptance criterion: re-running the N_object=256
Figure 3 sweep on a warm :class:`repro.engine.SweepEngine` must be at
least 2x faster than the cold run, because every trial replays from the
trial cache instead of re-drawing the workload and re-resolving every
grant.  Both runs (and the legacy serial sweep) must agree exactly —
the engine buys throughput, never different numbers.

Results land in ``benchmarks/results/engine_speedup.txt``.
"""

import time

from repro import telemetry
from repro.csd.simulator import figure3_series
from repro.engine import SweepEngine, run_fig3

N_OBJECTS = [256]
LOCALITIES = [1.0, 0.5, 0.0]
N_TRIALS = 5
SEED = 42
MIN_SPEEDUP = 2.0


def test_warm_engine_is_at_least_2x_faster(emit):
    kwargs = dict(
        localities=LOCALITIES, n_trials=N_TRIALS, seed=SEED,
        n_objects_list=N_OBJECTS,
    )
    engine = SweepEngine()
    telemetry.reset()

    t0 = time.perf_counter()
    cold = run_fig3(engine=engine, **kwargs)
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = run_fig3(engine=engine, **kwargs)
    warm_s = max(time.perf_counter() - t0, 1e-9)

    legacy = figure3_series(**kwargs)
    assert warm == cold == legacy, "engine output diverged from legacy"

    speedup = cold_s / warm_s
    stats = engine.stats()
    lines = [
        "Engine warm-vs-cold speedup (Figure 3, N=256)",
        f"  cold: {cold_s * 1e3:8.1f} ms   "
        f"(live resolve, {stats['trial_cache']['misses']} trial misses)",
        f"  warm: {warm_s * 1e3:8.1f} ms   "
        f"({stats['trial_cache']['hits']} trial hits)",
        f"  speedup: {speedup:.1f}x   (floor {MIN_SPEEDUP:g}x)",
        f"  trials cached={engine.trials_cached} live={engine.trials_live}",
    ]
    emit("engine_speedup", "\n".join(lines))
    assert speedup >= MIN_SPEEDUP, (
        f"warm engine only {speedup:.2f}x faster than cold "
        f"(floor {MIN_SPEEDUP}x)"
    )
