"""Bench: Figure 4 — the S-topology, its cluster, and the folded layout.

Figure 4(a) shows an 8×8 S-topology of replicated clusters, (b) the
cluster pattern, (c) the linear network folded onto the plane.  The
bench builds the fabric, verifies the three section-3.1 topology
properties (fractal structure, one replicated pattern, regular switch
points), and measures fold quality (every consecutive stack position
grid-adjacent) and build cost.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.topology.folding import fold_path_is_adjacent
from repro.topology.metrics import diameter
from repro.topology.s_topology import STopology


def test_fig4_fabric_properties(benchmark, emit):
    fabric = benchmark(STopology, 8, 8)

    # property 1: hierarchical/fractal — sub-grids are isomorphic
    assert fabric.is_subgrid_isomorphic(2, 2)
    assert fabric.is_subgrid_isomorphic(4, 4)
    # property 2: a single replicated cluster pattern
    resources = {("c", c.resources.compute_objects, c.resources.memory_objects)
                 for c in fabric.clusters()}
    assert len(resources) == 1
    # property 3: regular switch points — one chain switch per grid edge
    chain, shift = fabric.switch_count()
    assert chain == 2 * 8 * 7
    assert shift == 2 * chain

    # Figure 4(c): the fold keeps consecutive stack positions adjacent
    order = fabric.linear_order()
    assert fold_path_is_adjacent(order)
    assert len(order) == 64

    rows = [
        ("clusters", len(fabric)),
        ("chain switches", chain),
        ("shift switches", shift),
        ("fold length (stack positions)", len(order)),
        ("fold adjacency violations", 0),
        ("fabric diameter (Manhattan)", diameter(c.coord for c in fabric.clusters())),
        ("objects per cluster", fabric.resources.total_objects),
    ]
    report = format_table(
        ["metric", "value"],
        rows,
        title="Figure 4: 8x8 S-topology build + fold validation",
    )
    emit("fig4_s_topology", report)


def test_fig4_fold_scales(benchmark):
    """Folding stays valid (and cheap) as the fabric grows."""

    def build_and_check(n):
        fabric = STopology(n, n)
        assert fold_path_is_adjacent(fabric.linear_order())
        return fabric

    fabric = benchmark(build_and_check, 16)
    assert len(fabric) == 256
