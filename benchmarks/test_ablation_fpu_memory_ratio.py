"""Ablation: the FPU/memory resource mix (§4.1).

"We can coordinate the number of FPUs and memories, and more GOPS is
available if we optimize for more FPUs and less memory blocks."

Sweeps the AP composition at the 2012 node and reports AP count, total
compute objects and peak GOPS per mix, confirming the paper's direction:
trading memory blocks for physical objects raises peak GOPS (at the cost
of on-chip state).
"""

import pytest

from repro.analysis.reporting import format_table
from repro.costmodel.areas import APComposition
from repro.costmodel.chip_budget import ChipBudget
from repro.costmodel.performance import peak_gops
from repro.costmodel.technology import node_for_year
from repro.costmodel.wire_delay import global_wire_delay_ns

MIXES = [
    ("paper 16:16", APComposition(16, 16)),
    ("fpu-heavy 24:8", APComposition(24, 8)),
    ("fpu-max 32:4", APComposition(32, 4)),
    ("memory-heavy 8:24", APComposition(8, 24)),
]


def test_fpu_memory_mix(benchmark, emit):
    node = node_for_year(2012)
    delay = global_wire_delay_ns(node.feature_nm)

    def sweep():
        out = []
        for name, comp in MIXES:
            budget = ChipBudget(composition=comp)
            n_aps = budget.aps(node)
            out.append(
                (
                    name,
                    n_aps,
                    n_aps * comp.n_physical_objects,
                    peak_gops(n_aps, delay, comp),
                )
            )
        return out

    rows = benchmark(sweep)
    by_name = {r[0]: r for r in rows}

    # the paper's claim: more FPUs / less memory -> more GOPS
    assert by_name["fpu-heavy 24:8"][3] > by_name["paper 16:16"][3]
    assert by_name["fpu-max 32:4"][3] > by_name["fpu-heavy 24:8"][3]
    # and the converse
    assert by_name["memory-heavy 8:24"][3] < by_name["paper 16:16"][3]

    report = format_table(
        ["mix (PO:MB)", "#APs", "total FPUs", "peak GOPS"],
        [(n, a, f, f"{g:.0f}") for n, a, f, g in rows],
        title="Ablation: FPU/memory ratio at the 2012 node "
        f"(wire delay {delay:.2f} ns)",
    )
    emit("ablation_fpu_memory_ratio", report)
