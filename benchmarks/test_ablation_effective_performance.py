"""Ablation: peak vs effective performance (§2's motivating gap).

"The larger scale of a many-core processor will easily result in a
larger gap between the peak and effective performances, probably
causing a delay of many cycles for the managing and scheduling of
resources."

The bench configures streaming chains of varying depth on a 64-object
AP (management cost = measured pipeline stall cycles), then streams
records through them and converts cycle counts to effective GOPS at the
2012 node's clock.  Two effects are quantified:

* **utilisation**: effective/peak tracks how much of the array the
  datapath occupies;
* **amortisation**: counting the configuration cycles, short streams
  pay a visible management tax that long streams amortise away.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.ap.pipeline import AdaptiveProcessor
from repro.ap.streaming import StreamingExecutor
from repro.costmodel.performance import effective_gops
from repro.costmodel.wire_delay import global_wire_delay_ns
from repro.workloads.generators import streaming_chain

CAPACITY = 64


def _measure(depth: int, n_records: int):
    app = streaming_chain(depth)
    ap = AdaptiveProcessor(
        capacity=CAPACITY,
        library=app.to_library(),
        n_channels=CAPACITY,
        wsrf_capacity=4 * CAPACITY,
    )
    config = ap.run(app.to_config_stream())
    datapath = app.to_datapath()
    executor = StreamingExecutor(datapath, capacity=CAPACITY)
    run = executor.run([{0: float(i)} for i in range(n_records)])
    # each record exercises every operator stage once
    useful_ops = n_records * depth
    return config, run, useful_ops


def test_peak_vs_effective(benchmark, emit):
    delay = global_wire_delay_ns(36.0)

    def sweep():
        rows = []
        for depth in (8, 16, 32, 48):
            config, run, ops = _measure(depth, n_records=200)
            streaming = effective_gops(
                ops, run.stats.total_cycles, delay, n_objects=CAPACITY
            )
            with_config = effective_gops(
                ops,
                run.stats.total_cycles + config.total_cycles,
                delay,
                n_objects=CAPACITY,
            )
            rows.append(
                (depth, config.total_cycles, streaming["efficiency"],
                 with_config["efficiency"])
            )
        return rows

    rows = benchmark(sweep)

    effs = [r[2] for r in rows]
    # utilisation: deeper datapaths fill more of the array
    assert all(a < b for a, b in zip(effs, effs[1:]))
    assert effs[-1] > 0.6  # 48 of 64 objects busy
    # management tax: configuration cycles always cost something
    assert all(r[3] < r[2] for r in rows)

    report = format_table(
        ["datapath depth", "config cycles", "streaming efficiency",
         "incl. config"],
        [(d, c, f"{e:.3f}", f"{w:.3f}") for d, c, e, w in rows],
        title="Ablation: peak vs effective performance on a 64-object AP "
        "(200 records, 36 nm clock)",
    )
    emit("ablation_effective_performance", report)


def test_configuration_cost_amortises(benchmark):
    """Longer streams shrink the gap between with/without-config
    efficiency — the management delay §2 worries about is a fixed cost."""
    delay = global_wire_delay_ns(36.0)

    def tax(n_records):
        config, run, ops = _measure(16, n_records)
        pure = effective_gops(ops, run.stats.total_cycles, delay, CAPACITY)
        full = effective_gops(
            ops, run.stats.total_cycles + config.total_cycles, delay, CAPACITY
        )
        # relative management tax: the fraction of achievable performance
        # lost to configuration
        return 1.0 - full["efficiency"] / pure["efficiency"]

    taxes = benchmark(lambda: {n: tax(n) for n in (10, 100, 1000)})
    assert taxes[10] > taxes[100] > taxes[1000]
    assert taxes[1000] < 0.12
    assert taxes[10] > 0.5  # short streams are dominated by management


def test_defragmentation_recovers_allocatability(benchmark, emit):
    """§5's management claim made concrete: after churn fragments the
    fabric, one self-managed defrag pass restores large allocations."""
    from repro.core.defrag import Defragmenter
    from repro.core.vlsi_processor import VLSIProcessor
    from repro.errors import RegionError

    def run():
        chip = VLSIProcessor(8, 8, with_network=False)
        for i in range(16):
            chip.create_processor(f"S{i}", n_clusters=4)
        for i in range(0, 16, 2):
            chip.destroy_processor(f"S{i}")
        defrag = Defragmenter(chip)
        frag_before = defrag.fragmentation()
        blocked = False
        try:
            chip.create_processor("BIG", n_clusters=32)
        except RegionError:
            blocked = True
        moves = defrag.compact_until_stable()
        frag_after = defrag.fragmentation()
        chip.create_processor("BIG", n_clusters=32)
        return frag_before, frag_after, len(moves), blocked

    frag_before, frag_after, n_moves, blocked = benchmark(run)
    assert blocked
    assert frag_before > 0.5
    assert frag_after == 0.0

    report = format_table(
        ["metric", "value"],
        [
            ("fragmentation before", f"{frag_before:.2f}"),
            ("fragmentation after", f"{frag_after:.2f}"),
            ("processors moved", n_moves),
            ("32-cluster allocation", "blocked -> fits"),
        ],
        title="Ablation: self-managed defragmentation (section 5)",
    )
    emit("ablation_defragmentation", report)
