"""Ablation: virtual-channel flow control on the scaling network.

The paper cites Dally's virtual-channel paper [18].  This bench builds
the textbook head-of-line blocking case and measures what VCs buy:

* worm C (long) holds router (0,1)'s SOUTH output;
* worm A wants that same SOUTH output and stalls behind C;
* worm B, arriving behind A on the same physical link, only wants the
  *free* EAST output.

With one VC, B is stuck behind A in the shared input queue while EAST
sits idle (head-of-line blocking).  With two VCs, B travels on its own
virtual channel and streams past.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.noc.flit import make_packet
from repro.noc.network import RouterNetwork


def _hol_scenario(n_vcs: int):
    """Returns (latency of worm B, makespan)."""
    net = RouterNetwork(2, 4, n_vcs=n_vcs)
    # C: long worm occupying (0,1) -> (1,1) SOUTH
    c = make_packet((0, 1), (1, 1), payloads=list(range(14)), vc=0)
    # A: wants the same SOUTH output; will stall behind C
    a = make_packet((0, 0), (1, 1), payloads=list(range(4)), vc=0)
    # B: wants the free EAST output, arrives behind A
    b = make_packet(
        (0, 0), (0, 3), payloads=list(range(4)), vc=min(1, n_vcs - 1)
    )
    net.inject(c)
    net.inject(a)
    net.inject(b)
    net.run_until_drained()
    b_latency = net.record_for(b.packet_id).latency
    makespan = max(r.delivered_at for r in net.delivered)
    return b_latency, makespan


def test_virtual_channels_break_hol_blocking(benchmark, emit):
    def sweep():
        return {n_vcs: _hol_scenario(n_vcs) for n_vcs in (1, 2)}

    results = benchmark(sweep)
    (b_1vc, makespan_1vc) = results[1]
    (b_2vc, makespan_2vc) = results[2]

    # the victim worm gets out substantially earlier with VCs
    assert b_2vc < b_1vc - 3
    # and overall completion does not regress
    assert makespan_2vc <= makespan_1vc

    rows = [
        (1, b_1vc, makespan_1vc),
        (2, b_2vc, makespan_2vc),
    ]
    report = format_table(
        ["virtual channels", "victim-worm latency", "makespan"],
        rows,
        title="Ablation: VC flow control vs head-of-line blocking "
        "(ref [18]; victim wants a free output behind a stalled worm)",
    )
    emit("ablation_virtual_channels", report)


def test_vcs_do_not_change_uncontended_latency(benchmark):
    """A lone worm is equally fast regardless of VC count."""

    def run():
        out = {}
        for n_vcs in (1, 4):
            net = RouterNetwork(1, 10, n_vcs=n_vcs)
            p = make_packet((0, 0), (0, 9), payloads=list(range(4)))
            net.inject(p)
            net.run_until_drained()
            out[n_vcs] = net.record_for(p.packet_id).latency
        return out

    latencies = benchmark(run)
    assert latencies[1] == latencies[4]


def test_bandwidth_bound_traffic_unaffected(benchmark):
    """When the bottleneck is raw link bandwidth (not blocking), VCs
    neither help nor meaningfully hurt — the flip side of the HoL case."""

    def run(n_vcs):
        net = RouterNetwork(1, 8, n_vcs=n_vcs)
        for i in range(4):
            net.inject(
                make_packet(
                    (0, 0), (0, 7), payloads=list(range(6)), vc=i % n_vcs
                )
            )
        net.run_until_drained()
        return max(r.delivered_at for r in net.delivered)

    spans = benchmark(lambda: {v: run(v) for v in (1, 2)})
    assert abs(spans[1] - spans[2]) <= 4
