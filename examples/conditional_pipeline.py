#!/usr/bin/env python3
"""Figure 7 end-to-end: guard control flow with processor boundaries.

The paper's example program::

    if (x > y)  z = x + 1;
    else        z = y + 2;
    z = buff

is partitioned into four atomic basic blocks, each mapped to its own
small processor.  Control flow never flushes a datapath: the condition
processor simply writes its operand into whichever branch processor is
taken (memory-block delivery into the INACTIVE processor, section 3.4)
and activates it.  The untaken branch never runs.

Run:  python examples/conditional_pipeline.py
"""

from repro.core.partition import ProgramExecutor
from repro.core.vlsi_processor import VLSIProcessor
from repro.workloads.programs import figure7_program


def main() -> None:
    chip = VLSIProcessor(rows=8, cols=8)
    program = figure7_program()

    # Figure 7(b): in-order configuration gives a spatially local placement
    placement = {}
    for block in program.blocks():
        name = f"P_{block.name}"
        inst = chip.create_processor(name, n_clusters=4, strategy="rectangle")
        placement[block.name] = name
        print(f"configured {name:<8} on {inst.region.path[0]}..."
              f"{inst.region.path[-1]}  "
              f"(worm: {inst.config_cycles} cycles)")
    print("\n" + chip.render())

    executor = ProgramExecutor(chip, program, placement)

    print("\n== wave 1: x=5, y=3 (condition true) ==")
    result = executor.run({100: 5, 101: 3})
    for step in executor.trace:
        print(f"  step {step.step}: {step.block:<6} on {step.processor:<8} "
              f"in={step.inputs} out={step.outputs}")
    print(f"  z = {result[1]}")

    print("\n== wave 2: x=2, y=9 (condition false) ==")
    result = executor.run({100: 2, 101: 9})
    for step in executor.trace:
        print(f"  step {step.step}: {step.block:<6} on {step.processor:<8} "
              f"in={step.inputs} out={step.outputs}")
    print(f"  z = {result[1]}")

    # Figure 7(d): pipelined waves through the same configured processors
    print("\n== pipelined waves ==")
    for x in range(6):
        z = executor.run({100: x, 101: 3})[1]
        taken = executor.trace[1].block
        print(f"  x={x} y=3 -> branch {taken!r:<7} z={z}")

    # every processor ends INACTIVE, ready for more data, memory open
    states = {p: chip.processor(p).state.state.value for p in placement.values()}
    print(f"\nfinal states: {states}")


if __name__ == "__main__":
    main()
