#!/usr/bin/env python3
"""Defect tolerance: failing APs drop out, the rest re-fuse (section 1).

The paper's scenario: four APs share a chip; one fails.  The VLSI
processor removes the failing AP, remaps it if space allows, and the
survivors can be fused into a medium-scale processor or split into
small ones — the chip degrades, it does not die.

Run:  python examples/defect_tolerance.py
"""

from repro.core.defects import DefectInjector
from repro.core.scaling import ScalingController
from repro.core.vlsi_processor import VLSIProcessor
from repro.topology.regions import path_region


def main() -> None:
    chip = VLSIProcessor(rows=4, cols=8, with_network=False)
    scaler = ScalingController(chip)
    injector = DefectInjector(chip, seed=2026)

    # four 2-cluster APs in a row
    for i in range(4):
        chip.create_processor(
            f"AP{i}", region=path_region([(0, 2 * i), (0, 2 * i + 1)])
        )
    print("== four APs ==")
    print(chip.render())

    # a defect strikes AP1's first cluster
    victim = chip.processor("AP1").region.path[0]
    print(f"\n!! defect at cluster {victim}")
    report = injector.inject_at(victim)
    print(f"affected processor: {report.affected_processor}, "
          f"remapped: {report.remapped}"
          + (f" -> {report.new_path}" if report.new_path else ""))
    print(chip.render())

    # the survivors re-organise: AP2 + AP3 fuse into a medium-scale
    # processor...
    fused = scaler.fuse("AP2", "AP3", fused_name="MED")
    print(f"\nfused AP2+AP3 into {fused.name!r} "
          f"({fused.n_clusters} clusters)")
    print(chip.render())

    # ... or split back into two small-scale processors
    head, tail = scaler.split("MED", 2, "S1", "S2")
    print(f"\nsplit {('MED')!r} into {head.name!r} + {tail.name!r}")
    print(chip.render())

    # attrition study: keep injecting random defects and watch capacity
    print("\n== attrition ==")
    print(f"{'defects':>8}  {'healthy clusters':>16}  {'live processors':>15}")
    for round_ in range(1, 7):
        injector.inject_random(4)
        print(f"{injector.defective_count():>8}  "
              f"{injector.surviving_capacity():>16}  "
              f"{len(chip.processors):>15}")
    print("\nfinal fabric (X = defective):")
    print(chip.render())


if __name__ == "__main__":
    main()
