#!/usr/bin/env python3
"""Quickstart: the VLSI processor in five minutes.

Walks the whole stack once:

1. build a chip (an 8x8 S-topology of clusters with routers),
2. fuse clusters into an adaptive processor,
3. configure an application datapath through the AP pipeline
   (requests, hits/misses, chaining over the dynamic CSD network),
4. execute it,
5. ask the cost model what this chip would do across process nodes.

Run:  python examples/quickstart.py
"""

from repro.ap.pipeline import AdaptiveProcessor
from repro.core.vlsi_processor import VLSIProcessor
from repro.costmodel.performance import table4
from repro.workloads.generators import saxpy_graph


def main() -> None:
    # 1. a chip: 8x8 clusters, each a minimum AP (16 compute + 16 memory
    #    objects), joined by programmable switches and wormhole routers
    chip = VLSIProcessor(rows=8, cols=8)
    print("== fabric ==")
    print(chip.render())

    # 2. gather four clusters into one processor (wormhole-configured;
    #    reservation flags guarantee no conflict with other scalings)
    proc = chip.create_processor("P", n_clusters=4, strategy="rectangle")
    print(f"\nconfigured {proc.name!r}: {proc.n_clusters} clusters, "
          f"capacity C={proc.capacity(chip.fabric.resources)} objects, "
          f"config worm took {proc.config_cycles} router cycles")
    print(chip.render())

    # 3. an application: z = a*x + y as a dataflow graph, lowered to the
    #    global configuration data stream + object library
    app = saxpy_graph()
    stream = app.to_config_stream()
    library = app.to_library()
    ap = AdaptiveProcessor(
        capacity=proc.capacity(chip.fabric.resources), library=library
    )
    stats = ap.run(stream)
    print(f"\n== configuring saxpy on {proc.name!r} ==")
    print(f"elements={stats.elements} hits={stats.hits} misses={stats.misses} "
          f"cycles={stats.total_cycles} channels={stats.channels_used}")

    # re-running the stream over the warm object cache: pure hits
    warm = ap.run(stream)
    print(f"warm re-run: hit rate {warm.hit_rate:.0%}, "
          f"{warm.total_cycles} cycles (no stalls)")

    # 4. execute the configured datapath
    datapath = app.to_datapath()
    values = datapath.execute(inputs={1: 3.0, 2: 1.0})  # x=3, y=1 (a=2)
    print(f"\nsaxpy(a=2, x=3, y=1) = {values[4]}")

    # 5. the cost model: what does a 1 cm^2 chip of these APs deliver?
    print("\n== Table 4 (paper section 4) ==")
    for row in table4():
        print(f"  {row.year}  {row.feature_nm:>4.0f} nm  "
              f"{row.available_aps:>3} APs  "
              f"{row.wire_delay_ns:.2f} ns  {row.peak_gops:>5.0f} GOPS")

    chip.destroy_processor("P")
    print(f"\nreleased; {chip.free_clusters()} clusters back in the pool")


if __name__ == "__main__":
    main()
