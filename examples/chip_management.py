#!/usr/bin/env python3
"""Chip management: allocation strategies, fragmentation, and defrag.

Section 5 contrasts the mesh — where "a host system has to manage the
placement, routing, replacement, and defragmentation" — with the
self-managed VLSI processor.  This example exercises that management
plane: allocation strategy trade-offs, fragmentation under churn, and a
compaction pass that recovers a large contiguous region.

Run:  python examples/chip_management.py
"""

import numpy as np

from repro.core.defrag import Defragmenter
from repro.core.vlsi_processor import VLSIProcessor
from repro.errors import RegionError
from repro.topology.metrics import diameter


def main() -> None:
    # -- allocation strategies ----------------------------------------------
    print("== allocation strategies ==")
    for strategy in ("serpentine", "rectangle"):
        chip = VLSIProcessor(8, 8, with_network=False)
        proc = chip.create_processor("P", n_clusters=8, strategy=strategy)
        span = proc.span()
        print(f"  {strategy:<11} 8 clusters: span {span} hops "
              f"(region {proc.region.path[0]}..{proc.region.path[-1]})")
    print("  (rectangles keep the worst-case chaining distance low;")
    print("   serpentine runs follow the stack fold)")

    # -- churn and fragmentation ---------------------------------------------
    print("\n== churn ==")
    chip = VLSIProcessor(8, 8, with_network=False)
    defrag = Defragmenter(chip)
    rng = np.random.default_rng(7)
    created = 0
    for step in range(120):
        names = list(chip.processors)
        if names and rng.random() < 0.45:
            chip.destroy_processor(names[int(rng.integers(len(names)))])
        else:
            try:
                created += 1
                chip.create_processor(f"p{created}", n_clusters=int(rng.integers(1, 6)))
            except RegionError:
                pass  # no room right now
    print(f"after 120 operations: {len(chip.processors)} processors, "
          f"{chip.free_clusters()} free clusters, "
          f"fragmentation {defrag.fragmentation():.2f}")
    print(chip.render())

    # -- defragmentation ----------------------------------------------------
    print("\n== defragmentation ==")
    want = max(1, chip.free_clusters() - 2)
    try:
        chip.create_processor("BIG", n_clusters=want)
        print(f"a {want}-cluster processor fit without compaction")
        chip.destroy_processor("BIG")
    except RegionError:
        print(f"a {want}-cluster allocation is blocked by fragmentation")
    moves = defrag.compact_until_stable()
    print(f"compaction moved {len(moves)} processors; "
          f"fragmentation now {defrag.fragmentation():.2f}")
    print(chip.render())
    try:
        chip.create_processor("BIG", n_clusters=want)
        print(f"after compaction the {want}-cluster processor fits:")
        print(chip.render())
    except RegionError:
        print("still blocked (active processors pin their clusters)")

    # -- utilisation accounting --------------------------------------------
    print(f"\nutilization: {chip.utilization():.0%} of "
          f"{len(chip.fabric)} clusters")


if __name__ == "__main__":
    main()
