#!/usr/bin/env python3
"""Technology-scaling study: the section-4 cost model as a design tool.

Regenerates Table 4, then uses the same model to answer the questions a
processor architect would ask next:

* how sensitive is the result to the λ design rule? (DESIGN.md
  back-solves λ = 0.4·F from the paper's AP counts)
* what does trading memory blocks for FPUs buy? (§4.1's knob)
* what happens on a GPU-sized 3 cm² die? (§4.1's comparison)

Run:  python examples/technology_scaling_study.py
"""

from repro.analysis.reporting import format_table
from repro.costmodel.areas import APComposition, ap_area
from repro.costmodel.chip_budget import ChipBudget, PAPER_TABLE4_APS
from repro.costmodel.performance import gpu_area_comparison, peak_gops, table4
from repro.costmodel.technology import node_for_year
from repro.costmodel.wire_delay import global_wire_delay_ns, wire_length_um


def main() -> None:
    # -- Table 4 ------------------------------------------------------------
    rows = [
        (p.year, f"{p.feature_nm:.0f}", p.available_aps,
         PAPER_TABLE4_APS[p.feature_nm], f"{p.wire_delay_ns:.2f}",
         f"{p.peak_gops:.0f}")
        for p in table4()
    ]
    print(format_table(
        ["year", "nm", "#APs", "paper", "delay ns", "GOPS"],
        rows, title="Table 4 regenerated (1 cm^2, AP = 16 PO + 16 MB)"))

    # -- where the numbers come from ---------------------------------------
    print(f"\none AP = {ap_area():.3e} lambda^2; the critical global wire "
          f"at 36 nm is {wire_length_um(36.0):.0f} um "
          f"-> {global_wire_delay_ns(36.0):.2f} ns")

    # -- lambda sensitivity ---------------------------------------------------
    lam_rows = []
    for factor in (0.35, 0.40, 0.45, 0.50):
        pts = table4(lambda_factor=factor)
        err = sum(abs(p.available_aps - PAPER_TABLE4_APS[p.feature_nm])
                  for p in pts)
        lam_rows.append((factor, pts[0].available_aps, pts[-1].available_aps, err))
    print("\n" + format_table(
        ["lambda/F", "#APs@45nm", "#APs@25nm", "total |error| vs paper"],
        lam_rows, title="Lambda design-rule sensitivity"))

    # -- FPU vs memory mix (section 4.1) -----------------------------------
    node = node_for_year(2012)
    delay = global_wire_delay_ns(node.feature_nm)
    mix_rows = []
    for label, comp in [
        ("16:16 (paper)", APComposition(16, 16)),
        ("24:8 fpu-heavy", APComposition(24, 8)),
        ("32:4 fpu-max", APComposition(32, 4)),
        ("8:24 mem-heavy", APComposition(8, 24)),
    ]:
        n = ChipBudget(composition=comp).aps(node)
        mix_rows.append(
            (label, n, n * comp.n_physical_objects,
             f"{peak_gops(n, delay, comp):.0f}")
        )
    print("\n" + format_table(
        ["mix PO:MB", "#APs", "FPUs", "GOPS"],
        mix_rows, title="FPU/memory trade-off at 36 nm (section 4.1)"))

    # -- GPU-area comparison -------------------------------------------------
    cmp = gpu_area_comparison(36.0)
    print(f"\nGPU-area comparison at 36 nm: {cmp['vlsi_1cm2_fpus']} FPUs on "
          f"1 cm^2 vs {cmp['vlsi_3cm2_fpus']} on a 3 cm^2 (GPU-sized) die "
          f"({cmp['fpu_ratio']:.1f}x) -> {cmp['gops_3cm2']:.0f} GOPS")


if __name__ == "__main__":
    main()
