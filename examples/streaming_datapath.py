#!/usr/bin/env python3
"""Streaming on the adaptive processor, and why scaling exists.

Section 2.5's rule: a *streaming* datapath must fit the array capacity C
outright — streaming forbids swapping out part of the datapath, so when
an application's datapath outgrows its processor, the processor itself
must up-scale (gather more clusters).

This example builds an FIR filter too big for a 1-cluster AP, watches
the capacity rule reject it, up-scales the processor, and streams a
signal through.

Run:  python examples/streaming_datapath.py
"""

from repro.core.scaling import ScalingController
from repro.core.vlsi_processor import VLSIProcessor
from repro.errors import CapacityError
from repro.ap.streaming import StreamingExecutor
from repro.workloads.generators import fir_filter_graph


def main() -> None:
    chip = VLSIProcessor(rows=8, cols=8, with_network=False)
    scaler = ScalingController(chip)

    # a 6-tap FIR filter: 6 delay inputs + 6 coefficients + 6 multiplies
    # + 5 accumulates = 23 objects
    taps = [0.05, 0.2, 0.25, 0.25, 0.2, 0.05]
    fir = fir_filter_graph(taps)
    datapath = fir.to_datapath()
    print(f"FIR({len(taps)} taps): {len(datapath)} objects, "
          f"depth {datapath.depth()}")

    # a minimum AP has C = 16 compute objects -- too small to stream this
    proc = chip.create_processor("DSP", n_clusters=1)
    capacity = proc.capacity(chip.fabric.resources)
    print(f"\n'DSP' starts at {proc.n_clusters} cluster (C={capacity})")
    try:
        StreamingExecutor(datapath, capacity=capacity)
    except CapacityError as exc:
        print(f"capacity rule rejects streaming: {exc}")

    # up-scale: chain one more cluster onto the tail (section 3.3)
    scaler.up_scale("DSP", extra_clusters=1)
    capacity = chip.processor("DSP").capacity(chip.fabric.resources)
    print(f"\nup-scaled 'DSP' to {chip.processor('DSP').n_clusters} "
          f"clusters (C={capacity})")

    executor = StreamingExecutor(datapath, capacity=capacity)

    # stream a step signal through the filter's delay line
    signal = [0.0] * 4 + [1.0] * 12
    records = []
    for n in range(len(signal)):
        window = {
            k: (signal[n - k] if n - k >= 0 else 0.0)
            for k in range(len(taps))
        }
        records.append(window)
    run = executor.run(records)

    out_id = executor.output_ids[0]
    print("\nstep response:")
    for n, out in enumerate(run.outputs):
        bar = "#" * int(out[out_id] * 40)
        print(f"  n={n:>2}  y={out[out_id]:.3f}  {bar}")

    print(f"\npipeline: fill {run.stats.datapath_depth} cycles, "
          f"{run.stats.records} records in {run.stats.total_cycles} cycles "
          f"-> throughput {run.stats.throughput:.2f} results/cycle")

    # done: down-scale back to the minimum and release
    scaler.down_scale("DSP", 1)
    print(f"\ndown-scaled to {chip.processor('DSP').n_clusters} cluster; "
          f"{chip.free_clusters()} clusters free")


if __name__ == "__main__":
    main()
