#!/usr/bin/env python3
"""Object code, dependency distance, and the memory system.

Section 2.4: "The dependency distance can be observed by an object code
showing the object IDs."  This example writes a small kernel *as object
code*, inspects its dependency/stack distances, sizes the AP it needs,
and walks the memory-system path: spill/fill into a memory block, the
hardware-loop address generator, and a cross-AP chaining over fused CSD
segments.

Run:  python examples/object_code_study.py
"""

from repro.analysis.stack_distance import (
    dependency_vs_stack_distance,
    profile_stream,
)
from repro.ap.memory_block import MemoryBlock
from repro.ap.pipeline import AdaptiveProcessor
from repro.ap.wsrf import WSRF
from repro.csd.chained import ChainedCSD
from repro.workloads.objectcode import emit_object_code, parse_object_code

KERNEL = """
# y = (x^2 + 1) * (x - 3)
0 = input           # x
1 = const 1.0
2 = const 3.0
3 = fmul 0 0        # x^2
4 = fadd 3 1        # x^2 + 1
5 = fsub 0 2        # x - 3
6 = fmul 4 5        # product
"""


def main() -> None:
    graph = parse_object_code(KERNEL)
    print("== object code (normalised) ==")
    print(emit_object_code(graph))

    # the observable the paper points at: dependency distances in the code
    stream = graph.to_config_stream()
    print(f"\ndependency distances: {stream.dependency_distances()}")
    metrics = dependency_vs_stack_distance(stream)
    print(f"mean dependency distance: {metrics['mean_dependency_distance']:.2f} "
          f"(stream elements); mean stack distance: "
          f"{metrics['mean_stack_distance']:.2f} (objects)")

    # size the AP: the profile says what capacity always hits
    profile = profile_stream(stream, capacities=(2, 4, 8, 16))
    print("\nwarm hit rate by capacity:",
          {c: f"{r:.2f}" for c, r in profile.hit_rates.items()})

    # configure and execute on a minimum AP
    ap = AdaptiveProcessor(capacity=16, library=graph.to_library())
    stats = ap.run(stream)
    print(f"\nconfigured: {stats.elements} elements, "
          f"{stats.misses} loads, {stats.channels_used} channels, "
          f"{stats.total_cycles} cycles")
    x = 5.0
    result = graph.execute(inputs={0: x})
    print(f"kernel({x}) = {result[6]}  (expected {(x * x + 1) * (x - 3)})")

    # the memory system underneath: fill a vector, stream it through
    print("\n== memory block (Table 2) ==")
    mb = MemoryBlock()
    xs = list(range(8))
    mb.fill(0, xs)
    mb.program_sequencer(vector_length=len(xs), loop_count=1)
    outs = []
    for addr in mb.address_stream(base=0):
        xv = float(mb.read(addr))
        outs.append(graph.execute(inputs={0: xv})[6])
    print(f"streamed {len(outs)} records through the kernel: "
          f"{[round(v, 1) for v in outs]}")
    print(f"SRAM traffic: {mb.reads} reads, {mb.writes} writes; "
          f"sequencer: {mb.instruction_register!r}")

    # scaling the interconnect: two fused APs, one chaining across them
    print("\n== chained CSD across two fused APs (section 2.6.1) ==")
    fused = ChainedCSD([16, 16], n_channels=8)
    wsrfs = [WSRF(), WSRF()]
    wsrfs[1].acquire(6, position=3)  # the kernel's sink lives in AP 1
    fused.attach_wsrfs(wsrfs)
    hit = fused.parallel_search(6)
    print(f"parallel WSRF search for object 6 -> segment {hit[0]}, "
          f"position {hit[1]}")
    conn = fused.connect((0, 14), (1, 3))
    print(f"cross-AP chaining occupies segments {sorted(conn.legs)} "
          f"(channels {[c for c, _ in conn.legs.values()]})")
    print(f"per-segment channel usage: {fused.used_channels_per_segment()}")


if __name__ == "__main__":
    main()
