"""Unit tests for streaming execution and the capacity rule (section 2.5)."""

import pytest

from repro.errors import CapacityError
from repro.ap.datapath import Datapath
from repro.ap.objects import LogicalObject, Operation
from repro.ap.streaming import StreamingExecutor


def pipeline_datapath(stages=3):
    """in -> NEG -> NEG -> ... (identity for even stage counts)."""
    dp = Datapath()
    dp.add(LogicalObject(0, Operation.CONST, 0))
    for i in range(1, stages + 1):
        dp.add(LogicalObject(i, Operation.NEG), sources=[i - 1])
    return dp


class TestCapacityRule:
    def test_oversized_datapath_rejected(self):
        dp = pipeline_datapath(stages=7)  # 8 objects
        with pytest.raises(CapacityError):
            StreamingExecutor(dp, capacity=4)

    def test_exact_fit_allowed(self):
        dp = pipeline_datapath(stages=3)  # 4 objects
        StreamingExecutor(dp, capacity=4)

    def test_capacity_validated(self):
        with pytest.raises(CapacityError):
            StreamingExecutor(Datapath(), capacity=0)


class TestStreamingRun:
    def test_outputs_per_record(self):
        dp = pipeline_datapath(stages=2)  # NEG(NEG(x)) = x
        ex = StreamingExecutor(dp, capacity=8)
        run = ex.run([{0: v} for v in (1, 2, 3)])
        assert [o[2] for o in run.outputs] == [1, 2, 3]

    def test_default_outputs_are_sinks(self):
        dp = pipeline_datapath(stages=2)
        ex = StreamingExecutor(dp, capacity=8)
        assert ex.output_ids == [2]

    def test_explicit_outputs(self):
        dp = pipeline_datapath(stages=2)
        ex = StreamingExecutor(dp, capacity=8, output_ids=[1, 2])
        run = ex.run([{0: 5}])
        assert run.outputs[0] == {1: -5, 2: 5}

    def test_empty_stream(self):
        ex = StreamingExecutor(pipeline_datapath(1), capacity=8)
        run = ex.run([])
        assert run.outputs == []
        assert run.stats.total_cycles == pipeline_datapath(1).depth()


class TestThroughput:
    def test_throughput_approaches_one(self):
        dp = pipeline_datapath(stages=3)
        ex = StreamingExecutor(dp, capacity=8)
        short = ex.run([{0: i} for i in range(4)]).stats.throughput
        long = ex.run([{0: i} for i in range(400)]).stats.throughput
        assert long > short
        assert long > 0.95

    def test_deeper_pipeline_longer_fill(self):
        shallow = StreamingExecutor(pipeline_datapath(2), capacity=16)
        deep = StreamingExecutor(pipeline_datapath(10), capacity=16)
        records = [{0: i} for i in range(5)]
        assert deep.run(records).stats.total_cycles > shallow.run(records).stats.total_cycles

    def test_stats_fields(self):
        ex = StreamingExecutor(pipeline_datapath(2), capacity=8)
        stats = ex.run([{0: 1}, {0: 2}]).stats
        assert stats.records == 2
        assert stats.datapath_depth == 3
        assert stats.total_cycles == 3 + (2 - 1) + 1  # fill + extra records + drain
